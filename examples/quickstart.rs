//! Quickstart: the complete pipeline in one page.
//!
//! Generates the synthetic three-zone Shenzhen dataset, injects DDoS
//! anomalies, trains the LSTM-autoencoder filter, mitigates the attacks,
//! and trains the federated LSTM forecaster — then prints the paper-style
//! performance tables.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use evfad_core::forecast::{Scale, StudyConfig};
use evfad_core::Framework;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small preset keeps this example under a minute; swap in
    // `Scale::Paper` (or `StudyConfig::paper(seed)`) for the full protocol.
    let config = StudyConfig::at_scale(Scale::Small, 42);
    println!(
        "Running the four-scenario study: {} hourly points per zone, LSTM({}) forecaster,\n\
         {} federated rounds x {} local epochs, {:.0}% DDoS-attacked hours.\n",
        config.dataset.timestamps,
        config.lstm_units,
        config.rounds,
        config.epochs_per_round,
        config.attack.attack_fraction * 100.0,
    );

    let report = Framework::new(config).run_study()?;

    print!("{}", report.table1());
    println!();
    print!("{}", report.table2());
    println!();
    print!("{}", report.table3());
    println!();
    println!("{}", report.headline_text());
    Ok(())
}
