//! Explore the synthetic Shenzhen dataset.
//!
//! Verifies that the generated data has the statistical structure the
//! paper's proprietary dataset is described to have — daily periodicity,
//! weekly modulation, zone heterogeneity, and zone 108's bursty noise —
//! using the workspace's own analysis tools (decomposition, ACF), and
//! round-trips a zone through CSV.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example data_exploration
//! ```

use evfad_core::data::{csv, DatasetConfig, ShenzhenGenerator};
use evfad_core::timeseries::analysis::{autocorrelation, decompose, dominant_period};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = ShenzhenGenerator::new(DatasetConfig::default()).generate_all();

    println!(
        "{:<8} {:>8} {:>8} {:>10} {:>10} {:>12} {:>10}",
        "zone", "mean", "std", "acf@24h", "acf@168h", "seasonal%", "period"
    );
    for client in &dataset {
        let v = &client.demand;
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let std = (v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64).sqrt();
        let acf = autocorrelation(v, 24 * 7)?;
        let decomp = decompose(v, 24)?;
        println!(
            "{:<8} {:>8.2} {:>8.2} {:>10.3} {:>10.3} {:>12.1} {:>10}",
            client.zone.label(),
            mean,
            std,
            acf[24],
            acf[168],
            decomp.seasonal_strength() * 100.0,
            dominant_period(v, 30)?,
        );
    }

    // Weekday/weekend contrast per zone (the federated-vs-centralized
    // conflict documented in DESIGN.md).
    println!("\nweekend-to-weekday demand ratio:");
    for client in &dataset {
        let (mut we, mut wd, mut nwe, mut nwd) = (0.0, 0.0, 0.0, 0.0);
        for (t, &v) in client.demand.iter().enumerate() {
            if evfad_core::data::is_weekend(t) {
                we += v;
                nwe += 1.0;
            } else {
                wd += v;
                nwd += 1.0;
            }
        }
        println!(
            "  zone {}: {:.2}",
            client.zone.label(),
            (we / nwe) / (wd / nwd)
        );
    }

    // CSV round trip.
    let text = csv::to_csv(&dataset[0]);
    let restored = csv::from_csv(&text, dataset[0].zone)?;
    println!(
        "\nCSV round trip: {} rows, {:.1} KiB, lossless = {}",
        restored.demand.len(),
        text.len() as f64 / 1024.0,
        restored.demand == dataset[0].demand
    );
    Ok(())
}
