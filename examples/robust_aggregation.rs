//! Byzantine-robust aggregation under a poisoned client.
//!
//! The paper's threat model attacks the *data* plane; the natural
//! escalation is an adversary that compromises a *client* and submits a
//! poisoned weight update. This example shows plain FedAvg absorbing the
//! poison while coordinate-wise median and Krum shrug it off, and
//! demonstrates the differential-privacy knob on client updates.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example robust_aggregation
//! ```

use evfad_core::data::{DatasetConfig, ShenzhenGenerator};
use evfad_core::federated::privacy::{privatize, DpConfig};
use evfad_core::federated::{Aggregator, LocalUpdate};
use evfad_core::forecast::experiment::build_forecaster;
use evfad_core::forecast::pipeline::PreparedClient;
use evfad_core::nn::TrainConfig;
use evfad_core::tensor::Matrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let clients = ShenzhenGenerator::new(DatasetConfig::small(960, 5)).generate_all();
    let prepared: Vec<PreparedClient> = clients
        .iter()
        .map(|c| PreparedClient::prepare(c.zone.label(), &c.demand, 24, 0.8))
        .collect::<Result<_, _>>()?;

    // Train four honest local models (the fourth gives Krum its n >= f+3).
    let cfg = TrainConfig {
        epochs: 6,
        ..TrainConfig::default()
    };
    let mut updates: Vec<LocalUpdate> = Vec::new();
    for (i, p) in prepared.iter().enumerate() {
        let mut model = build_forecaster(12, 0.005, 3);
        model.fit(&p.train, &cfg)?;
        updates.push(LocalUpdate {
            client_id: p.label.clone(),
            weights: model.weights(),
            sample_count: p.train.len(),
            train_loss: 0.0,
            duration: std::time::Duration::ZERO,
            simulated_extra_seconds: 0.0,
        });
        if i == 0 {
            // A twin of client 0 so the honest majority is 4 vs 1.
            let mut twin = updates[0].clone();
            twin.client_id = "102-twin".into();
            updates.push(twin);
        }
    }

    // The poisoned client: weights blown up by a large factor.
    let mut poison = updates[1].clone();
    poison.client_id = "compromised".into();
    for w in &mut poison.weights {
        *w = w.scale(50.0);
    }
    updates.push(poison);

    println!("{:<14} {:>14} {:>12}", "aggregator", "mean R2", "verdict");
    for agg in [
        Aggregator::FedAvg,
        Aggregator::Median,
        Aggregator::TrimmedMean { trim: 1 },
        Aggregator::Krum { byzantine: 1 },
    ] {
        let global = agg.aggregate(&updates)?;
        let mut model = build_forecaster(12, 0.005, 3);
        model.set_weights(&global)?;
        let mean_r2: f64 = prepared
            .iter()
            .map(|p| p.evaluate_raw(&mut model).map(|e| e.r2).unwrap_or(f64::NAN))
            .sum::<f64>()
            / prepared.len() as f64;
        println!(
            "{:<14} {:>14.4} {:>12}",
            agg.name(),
            mean_r2,
            if mean_r2 > 0.0 {
                "survives"
            } else {
                "poisoned"
            }
        );
    }

    // Differential privacy: how much noise costs in weight distortion.
    let global: Vec<Matrix> = updates[0].weights.clone();
    println!("\nDP noise on one client update (clip = 1.0):");
    for mult in [0.0, 0.05, 0.2, 1.0] {
        let dp = DpConfig {
            clip_norm: 1.0,
            noise_multiplier: mult,
        };
        let noised = privatize(&updates[1].weights, &global, dp, 9);
        let distortion: f64 = noised
            .iter()
            .zip(&updates[1].weights)
            .map(|(a, b)| (a - b).frobenius_norm())
            .sum();
        println!("  noise_multiplier={mult:<5} weight distortion (L2) = {distortion:.4}");
    }
    Ok(())
}
