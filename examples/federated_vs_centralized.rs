//! Federated vs centralized, including the communication story.
//!
//! Reproduces the paper's architectural comparison (§III-D) on filtered
//! data and additionally quantifies what the paper only argues
//! qualitatively: the byte cost of exchanging model weights versus shipping
//! every client's raw data to a central server.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example federated_vs_centralized
//! ```

use evfad_core::data::{DatasetConfig, ShenzhenGenerator};
use evfad_core::federated::transport::{series_size_bytes, update_size_bytes};
use evfad_core::federated::{FederatedConfig, FederatedSimulation};
use evfad_core::forecast::experiment::build_forecaster;
use evfad_core::forecast::pipeline::PreparedClient;
use evfad_core::nn::TrainConfig;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let clients = ShenzhenGenerator::new(DatasetConfig::small(1440, 11)).generate_all();
    let prepared: Vec<PreparedClient> = clients
        .iter()
        .map(|c| PreparedClient::prepare(c.zone.label(), &c.demand, 24, 0.8))
        .collect::<Result<_, _>>()?;

    // --- Federated: parallel clients, FedAvg, personalised read-out. ---
    let fed_cfg = FederatedConfig {
        rounds: 3,
        epochs_per_round: 3,
        parallel: true,
        ..FederatedConfig::default()
    };
    let mut sim = FederatedSimulation::new(build_forecaster(16, 0.005, 1), fed_cfg);
    for p in &prepared {
        sim.add_client(p.label.clone(), p.train.clone());
    }
    let started = Instant::now();
    let outcome = sim.run()?;
    let fed_time = started.elapsed();

    // --- Centralized: one model over the pooled windows, serial. ---
    let mut central = build_forecaster(16, 0.005, 2);
    let pooled: Vec<_> = prepared
        .iter()
        .flat_map(|p| p.train.iter().cloned())
        .collect();
    let started = Instant::now();
    central.fit(
        &pooled,
        &TrainConfig {
            epochs: 9,
            ..TrainConfig::default()
        },
    )?;
    let central_time = started.elapsed();

    println!(
        "{:<14} {:>10} {:>10} {:>8}",
        "client", "fed R2", "central R2", "winner"
    );
    for (i, p) in prepared.iter().enumerate() {
        let fed = p.evaluate_raw(sim.clients_mut()[i].model_mut())?;
        let cen = p.evaluate_raw(&mut central)?;
        println!(
            "{:<14} {:>10.4} {:>10.4} {:>8}",
            p.label,
            fed.r2,
            cen.r2,
            if fed.r2 > cen.r2 { "fed" } else { "central" }
        );
    }
    println!(
        "\ntraining time: federated {:.2}s (parallel clients) vs centralized {:.2}s (pooled serial)",
        fed_time.as_secs_f64(),
        central_time.as_secs_f64()
    );

    // --- Communication cost. ---
    let weights_bytes = update_size_bytes(&outcome.global_weights);
    let raw_bytes: usize = clients.iter().map(|c| series_size_bytes(&c.demand)).sum();
    println!(
        "\ncommunication: {} federated messages totalling {:.1} KiB \
         (one update = {:.1} KiB);\ncentralizing the raw season instead would ship {:.1} KiB \
         of private charging data.",
        outcome.traffic.messages,
        outcome.traffic.bytes as f64 / 1024.0,
        weights_bytes as f64 / 1024.0,
        raw_bytes as f64 / 1024.0
    );
    Ok(())
}
