//! Attack-vector deep dive for one charging zone, plus a weight-level
//! attack on the federation itself.
//!
//! The paper's detector targets sustained volume spikes; its future-work
//! section asks how it fares against subtler vectors. This example trains
//! one anomaly filter on zone 102 and confronts it with five attack types —
//! the paper's DDoS spikes plus false-data injection, temporal disruption,
//! ramp, and pulse attacks — reporting detection quality and how much of
//! the damage interpolation-based mitigation recovers.
//!
//! A second section moves the adversary *inside* the federation: a
//! compromised client ships corrupted model updates (sign-flipped weights)
//! through the fault-injection layer, and the aggregation rules face it
//! head-on. FedAvg absorbs the poison; the Byzantine-robust rules do not.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example attack_resilience
//! ```

use evfad_core::anomaly::{AnomalyFilter, DetectionReport, FilterConfig};
use evfad_core::attack::vectors::{inject_vector, AttackVector};
use evfad_core::attack::{AttackOutcome, DdosConfig, DdosInjector};
use evfad_core::data::{DatasetConfig, ShenzhenGenerator, Zone};
use evfad_core::federated::{
    Aggregator, CompressionMode, Corruption, FaultKind, FaultPlan, FederatedConfig,
    FederatedSimulation, RoundSelector,
};
use evfad_core::forecast::experiment::build_forecaster;
use evfad_core::forecast::pipeline::PreparedClient;
use evfad_core::timeseries::MinMaxScaler;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let client = ShenzhenGenerator::new(DatasetConfig::small(1440, 42)).generate_zone(Zone::Z102);
    let clean = &client.demand;
    let boundary = (clean.len() as f64 * 0.8) as usize;

    // Train the filter once, on the clean training split (scaled).
    let scaler = MinMaxScaler::fit(&clean[..boundary])?;
    let mut filter = AnomalyFilter::new(FilterConfig::fast(24));
    filter.fit(&scaler.transform(&clean[..boundary]))?;
    println!(
        "Filter trained on {} normal hours; threshold = {:.6}\n",
        boundary,
        filter.threshold().unwrap_or(f64::NAN)
    );

    let ddos: AttackOutcome = DdosInjector::new(DdosConfig::default()).inject(clean, 7);
    let vectors: Vec<(String, AttackOutcome)> = vec![
        ("ddos_volume_spikes".to_string(), ddos),
        (
            AttackVector::FalseDataInjection { bias: 1.25 }
                .name()
                .to_string(),
            inject_vector(
                clean,
                AttackVector::FalseDataInjection { bias: 1.25 },
                0.15,
                8,
            ),
        ),
        (
            AttackVector::TemporalDisruption.name().to_string(),
            inject_vector(clean, AttackVector::TemporalDisruption, 0.15, 9),
        ),
        (
            AttackVector::Ramp { peak: 3.0 }.name().to_string(),
            inject_vector(clean, AttackVector::Ramp { peak: 3.0 }, 0.15, 10),
        ),
        (
            AttackVector::Pulse { magnitude: 3.0 }.name().to_string(),
            inject_vector(clean, AttackVector::Pulse { magnitude: 3.0 }, 0.15, 11),
        ),
    ];

    println!(
        "{:<24} {:>9} {:>7} {:>6} {:>7} {:>10}",
        "attack vector", "precision", "recall", "F1", "FPR%", "recovery%"
    );
    for (name, outcome) in &vectors {
        let detection = filter.try_detect(&scaler.transform(&outcome.series))?;
        let report = DetectionReport::from_flags(&outcome.labels, &detection.flags);
        let filtered = filter.filter_anomalies(&outcome.series, &detection.flags)?;
        // Damage = L1 distance to the clean series; recovery = share removed.
        let damage = |s: &[f64]| -> f64 { s.iter().zip(clean).map(|(a, c)| (a - c).abs()).sum() };
        let before = damage(&outcome.series);
        let after = damage(&filtered);
        let recovery = if before > 0.0 {
            (before - after) / before * 100.0
        } else {
            0.0
        };
        println!(
            "{:<24} {:>9.3} {:>7.3} {:>6.3} {:>7.2} {:>10.1}",
            name,
            report.precision(),
            report.recall(),
            report.f1(),
            report.false_positive_rate() * 100.0,
            recovery
        );
    }
    println!(
        "\nAs the paper anticipates (SIII-G), the reconstruction-error detector is strong on\n\
         volume spikes and ramps but weaker on distribution-preserving vectors like\n\
         temporal disruption and small-bias false-data injection."
    );

    weight_level_attack()?;
    comms_ablation()?;
    Ok(())
}

/// A compromised client sign-flips every update it ships. The fault layer
/// injects the corruption deterministically; each aggregation rule then
/// faces the identical poisoned round sequence.
fn weight_level_attack() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== Weight-level attack: one Byzantine client, four aggregation rules ==\n");
    let prepared: Vec<PreparedClient> = ShenzhenGenerator::new(DatasetConfig::small(480, 42))
        .generate_all()
        .iter()
        .map(|c| PreparedClient::prepare(c.zone.label(), &c.demand, 24, 0.8))
        .collect::<Result<_, _>>()?;
    let traitor = prepared[1].label.clone();
    let run = |aggregator: Aggregator, poisoned: bool| -> Result<_, Box<dyn std::error::Error>> {
        let faults = poisoned.then(|| {
            FaultPlan::new(7).with_rule(
                traitor.clone(),
                RoundSelector::Every,
                FaultKind::Corrupt {
                    corruption: Corruption::SignFlip,
                },
            )
        });
        let cfg = FederatedConfig {
            rounds: 2,
            epochs_per_round: 2,
            aggregator,
            faults,
            ..FederatedConfig::default()
        };
        let mut sim = FederatedSimulation::new(build_forecaster(6, 0.01, 1), cfg);
        for p in &prepared {
            sim.add_client(p.label.clone(), p.train.clone());
        }
        let outcome = sim.run()?;
        let mut global = sim.model_with_weights(&outcome.global_weights)?;
        // Average MAE over the honest clients' test windows.
        let honest: Vec<f64> = prepared
            .iter()
            .filter(|p| p.label != traitor)
            .map(|p| p.evaluate_raw(&mut global).map(|e| e.mae))
            .collect::<Result<_, _>>()?;
        Ok(honest.iter().sum::<f64>() / honest.len() as f64)
    };
    println!(
        "{:<16} {:>12} {:>14} {:>10}",
        "aggregator", "clean MAE", "poisoned MAE", "drift%"
    );
    for (name, aggregator) in [
        ("fedavg", Aggregator::FedAvg),
        ("median", Aggregator::Median),
        ("trimmed_mean", Aggregator::TrimmedMean { trim: 1 }),
        // Krum with f = 1 needs n >= f + 3 = 4 clients; with the paper's
        // 3 zones use f = 0, which still selects the update closest to
        // its peers and therefore shuns the sign-flipped outlier.
        ("krum", Aggregator::Krum { byzantine: 0 }),
    ] {
        let clean = run(aggregator, false)?;
        let poisoned = run(aggregator, true)?;
        println!(
            "{:<16} {:>12.3} {:>14.3} {:>10.1}",
            name,
            clean,
            poisoned,
            (poisoned - clean) / clean * 100.0
        );
    }
    println!(
        "\nThe sign-flipped client drags the FedAvg global model away from the honest\n\
         optimum, while the robust rules (median / trimmed mean / Krum) keep the\n\
         poisoned run close to the clean one — the paper's resilience argument,\n\
         demonstrated at the weight level rather than the data level."
    );
    Ok(())
}

/// Uplink-compression ablation: the same federation run under each
/// [`CompressionMode`], reporting wire traffic per round against the final
/// forecast quality. Quantization buys ~8x on the uplink for a negligible
/// accuracy cost; top-k trades accuracy for bandwidth more aggressively.
fn comms_ablation() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== Comms ablation: uplink compression vs forecast quality ==\n");
    let prepared: Vec<PreparedClient> = ShenzhenGenerator::new(DatasetConfig::small(480, 42))
        .generate_all()
        .iter()
        .map(|c| PreparedClient::prepare(c.zone.label(), &c.demand, 24, 0.8))
        .collect::<Result<_, _>>()?;
    println!(
        "{:<12} {:>14} {:>14} {:>8} {:>10}",
        "mode", "uplink B/round", "downlink B/rnd", "ratio", "final MAE"
    );
    for mode in [
        CompressionMode::None,
        CompressionMode::Quant8,
        CompressionMode::TopKDelta { k: 16 },
    ] {
        let cfg = FederatedConfig {
            rounds: 3,
            epochs_per_round: 2,
            compression: mode,
            ..FederatedConfig::default()
        };
        let mut sim = FederatedSimulation::new(build_forecaster(6, 0.01, 1), cfg);
        for p in &prepared {
            sim.add_client(p.label.clone(), p.train.clone());
        }
        let outcome = sim.run()?;
        let rounds = outcome.rounds.len() as f64;
        let uplink: usize = outcome.rounds.iter().map(|r| r.uplink_bytes).sum();
        let downlink: usize = outcome.rounds.iter().map(|r| r.downlink_bytes).sum();
        let ratio: f64 = outcome
            .rounds
            .iter()
            .map(|r| r.compression_ratio)
            .sum::<f64>()
            / rounds;
        let mut global = sim.model_with_weights(&outcome.global_weights)?;
        let maes: Vec<f64> = prepared
            .iter()
            .map(|p| p.evaluate_raw(&mut global).map(|e| e.mae))
            .collect::<Result<_, _>>()?;
        println!(
            "{:<12} {:>14.0} {:>14.0} {:>7.2}x {:>10.3}",
            mode.to_string(),
            uplink as f64 / rounds,
            downlink as f64 / rounds,
            ratio,
            maes.iter().sum::<f64>() / maes.len() as f64
        );
    }
    println!(
        "\nEvery byte above is metered off the binary wire encoding itself — the loop\n\
         never touches JSON — so the traffic column is exactly what a deployment\n\
         of this protocol would put on the network."
    );
    Ok(())
}
