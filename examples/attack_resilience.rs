//! Attack-vector deep dive for one charging zone.
//!
//! The paper's detector targets sustained volume spikes; its future-work
//! section asks how it fares against subtler vectors. This example trains
//! one anomaly filter on zone 102 and confronts it with five attack types —
//! the paper's DDoS spikes plus false-data injection, temporal disruption,
//! ramp, and pulse attacks — reporting detection quality and how much of
//! the damage interpolation-based mitigation recovers.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example attack_resilience
//! ```

use evfad_core::anomaly::{AnomalyFilter, DetectionReport, FilterConfig};
use evfad_core::attack::vectors::{inject_vector, AttackVector};
use evfad_core::attack::{AttackOutcome, DdosConfig, DdosInjector};
use evfad_core::data::{DatasetConfig, ShenzhenGenerator, Zone};
use evfad_core::timeseries::MinMaxScaler;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let client = ShenzhenGenerator::new(DatasetConfig::small(1440, 42)).generate_zone(Zone::Z102);
    let clean = &client.demand;
    let boundary = (clean.len() as f64 * 0.8) as usize;

    // Train the filter once, on the clean training split (scaled).
    let scaler = MinMaxScaler::fit(&clean[..boundary])?;
    let mut filter = AnomalyFilter::new(FilterConfig::fast(24));
    filter.fit(&scaler.transform(&clean[..boundary]))?;
    println!(
        "Filter trained on {} normal hours; threshold = {:.6}\n",
        boundary,
        filter.threshold().unwrap_or(f64::NAN)
    );

    let ddos: AttackOutcome = DdosInjector::new(DdosConfig::default()).inject(clean, 7);
    let vectors: Vec<(String, AttackOutcome)> = vec![
        ("ddos_volume_spikes".to_string(), ddos),
        (
            AttackVector::FalseDataInjection { bias: 1.25 }
                .name()
                .to_string(),
            inject_vector(
                clean,
                AttackVector::FalseDataInjection { bias: 1.25 },
                0.15,
                8,
            ),
        ),
        (
            AttackVector::TemporalDisruption.name().to_string(),
            inject_vector(clean, AttackVector::TemporalDisruption, 0.15, 9),
        ),
        (
            AttackVector::Ramp { peak: 3.0 }.name().to_string(),
            inject_vector(clean, AttackVector::Ramp { peak: 3.0 }, 0.15, 10),
        ),
        (
            AttackVector::Pulse { magnitude: 3.0 }.name().to_string(),
            inject_vector(clean, AttackVector::Pulse { magnitude: 3.0 }, 0.15, 11),
        ),
    ];

    println!(
        "{:<24} {:>9} {:>7} {:>6} {:>7} {:>10}",
        "attack vector", "precision", "recall", "F1", "FPR%", "recovery%"
    );
    for (name, outcome) in &vectors {
        let detection = filter.try_detect(&scaler.transform(&outcome.series))?;
        let report = DetectionReport::from_flags(&outcome.labels, &detection.flags);
        let filtered = filter.filter_anomalies(&outcome.series, &detection.flags)?;
        // Damage = L1 distance to the clean series; recovery = share removed.
        let damage = |s: &[f64]| -> f64 { s.iter().zip(clean).map(|(a, c)| (a - c).abs()).sum() };
        let before = damage(&outcome.series);
        let after = damage(&filtered);
        let recovery = if before > 0.0 {
            (before - after) / before * 100.0
        } else {
            0.0
        };
        println!(
            "{:<24} {:>9.3} {:>7.3} {:>6.3} {:>7.2} {:>10.1}",
            name,
            report.precision(),
            report.recall(),
            report.f1(),
            report.false_positive_rate() * 100.0,
            recovery
        );
    }
    println!(
        "\nAs the paper anticipates (SIII-G), the reconstruction-error detector is strong on\n\
         volume spikes and ramps but weaker on distribution-preserving vectors like\n\
         temporal disruption and small-bias false-data injection."
    );
    Ok(())
}
