//! Federated client: a local model plus a local dataset.

use crate::error::FederatedError;
use evfad_nn::{Loss, Sample, Sequential, TrainConfig};
use evfad_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// A weight update produced by one round of local training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalUpdate {
    /// Client identifier.
    pub client_id: String,
    /// The client's post-training weights.
    pub weights: Vec<Matrix>,
    /// Number of local training samples (FedAvg weighting).
    pub sample_count: usize,
    /// Final local training loss.
    pub train_loss: f64,
    /// Wall-clock time spent training.
    #[serde(skip, default)]
    pub duration: Duration,
    /// Simulated extra seconds the update spent in transit — straggler
    /// delay and retry backoff injected by the fault layer
    /// ([`crate::faults`]). Deterministic (unlike `duration`) and counted
    /// by [`FederatedOutcome::simulated_distributed_seconds`].
    ///
    /// [`FederatedOutcome::simulated_distributed_seconds`]:
    ///   crate::FederatedOutcome::simulated_distributed_seconds
    #[serde(default)]
    pub simulated_extra_seconds: f64,
}

/// One participant in the federation.
///
/// Holds the local dataset (which never leaves the client — only
/// [`LocalUpdate`]s do) and a local copy of the shared architecture.
///
/// # Examples
///
/// ```
/// use evfad_federated::FedClient;
/// use evfad_nn::{forecaster_model, Sample, TrainConfig};
/// use evfad_tensor::Matrix;
///
/// let samples: Vec<Sample> = (0..16)
///     .map(|i| Sample::new(
///         Matrix::column_vector(&[(i as f64).sin(), ((i + 1) as f64).sin()]),
///         Matrix::from_vec(1, 1, vec![((i + 2) as f64).sin()]),
///     ))
///     .collect();
/// let mut client = FedClient::new("zone-102", forecaster_model(4, 1), samples);
/// let cfg = TrainConfig { epochs: 1, ..TrainConfig::default() };
/// let update = client.train_local(&cfg)?;
/// assert_eq!(update.sample_count, 16);
/// # Ok::<(), evfad_federated::FederatedError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FedClient {
    id: String,
    model: Sequential,
    samples: Vec<Sample>,
}

impl FedClient {
    /// Creates a client with a local model copy and its private dataset.
    pub fn new(id: impl Into<String>, model: Sequential, samples: Vec<Sample>) -> Self {
        Self {
            id: id.into(),
            model,
            samples,
        }
    }

    /// Client identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Number of local samples.
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }

    /// Borrow of the local model.
    pub fn model(&self) -> &Sequential {
        &self.model
    }

    /// Mutable borrow of the local model (used for personalised read-out).
    pub fn model_mut(&mut self) -> &mut Sequential {
        &mut self.model
    }

    /// Installs the global weights received from the server.
    ///
    /// # Errors
    ///
    /// [`FederatedError::IncompatibleUpdate`] if the shapes do not match.
    pub fn receive_global(&mut self, weights: &[Matrix]) -> Result<(), FederatedError> {
        self.model
            .set_weights(weights)
            .map_err(|_| FederatedError::IncompatibleUpdate {
                client: self.id.clone(),
            })
    }

    /// Runs local training and returns the resulting update.
    ///
    /// # Errors
    ///
    /// [`FederatedError::ClientTraining`] if the fit fails (e.g. an empty
    /// local dataset).
    pub fn train_local(&mut self, cfg: &TrainConfig) -> Result<LocalUpdate, FederatedError> {
        let start = Instant::now();
        let history =
            self.model
                .fit(&self.samples, cfg)
                .map_err(|e| FederatedError::ClientTraining {
                    client: self.id.clone(),
                    message: e.to_string(),
                })?;
        Ok(LocalUpdate {
            client_id: self.id.clone(),
            weights: self.model.weights(),
            sample_count: self.samples.len(),
            train_loss: history.final_train_loss().unwrap_or(f64::NAN),
            duration: start.elapsed(),
            simulated_extra_seconds: 0.0,
        })
    }

    /// Local-model loss on an arbitrary sample set.
    pub fn evaluate(&mut self, samples: &[Sample], loss: Loss) -> f64 {
        self.model.evaluate(samples, loss)
    }

    /// Pulls the local weights toward `global` by factor `mu` in `[0, 1]`:
    /// `w ← (1 - mu)·w + mu·g`.
    ///
    /// # Panics
    ///
    /// Panics if `global` does not match the model's parameter shapes.
    pub fn apply_proximal(&mut self, global: &[Matrix], mu: f64) {
        let mut pulled = self.model.weights();
        assert_eq!(pulled.len(), global.len(), "proximal weight count mismatch");
        for (w, g) in pulled.iter_mut().zip(global) {
            *w = w.zip_map(g, |wv, gv| (1.0 - mu) * wv + mu * gv);
        }
        self.model
            .set_weights(&pulled)
            .expect("shapes validated by zip_map");
    }

    /// FedProx-style local training: between epochs the local weights are
    /// pulled toward the round's global weights, limiting client drift on
    /// heterogeneous data (Li et al., MLSys 2020). With `mu = 0` this is
    /// exactly [`FedClient::train_local`] run epoch-by-epoch.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FedClient::train_local`].
    pub fn train_local_proximal(
        &mut self,
        cfg: &TrainConfig,
        global: &[Matrix],
        mu: f64,
    ) -> Result<LocalUpdate, FederatedError> {
        let start = Instant::now();
        let per_epoch = TrainConfig {
            epochs: 1,
            ..cfg.clone()
        };
        let mut train_loss = f64::NAN;
        for _ in 0..cfg.epochs {
            let history = self.model.fit(&self.samples, &per_epoch).map_err(|e| {
                FederatedError::ClientTraining {
                    client: self.id.clone(),
                    message: e.to_string(),
                }
            })?;
            train_loss = history.final_train_loss().unwrap_or(f64::NAN);
            if mu > 0.0 {
                self.apply_proximal(global, mu);
            }
        }
        Ok(LocalUpdate {
            client_id: self.id.clone(),
            weights: self.model.weights(),
            sample_count: self.samples.len(),
            train_loss,
            duration: start.elapsed(),
            simulated_extra_seconds: 0.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evfad_nn::forecaster_model;

    fn samples(n: usize, phase: f64) -> Vec<Sample> {
        (0..n)
            .map(|i| {
                let xs: Vec<f64> = (0..4)
                    .map(|t| ((i + t) as f64 * 0.7 + phase).sin())
                    .collect();
                Sample::new(
                    Matrix::column_vector(&xs),
                    Matrix::from_vec(1, 1, vec![((i + 4) as f64 * 0.7 + phase).sin()]),
                )
            })
            .collect()
    }

    #[test]
    fn update_carries_metadata() {
        let mut c = FedClient::new("c1", forecaster_model(3, 1), samples(10, 0.0));
        let cfg = TrainConfig {
            epochs: 1,
            ..TrainConfig::default()
        };
        let u = c.train_local(&cfg).expect("train");
        assert_eq!(u.client_id, "c1");
        assert_eq!(u.sample_count, 10);
        assert!(u.train_loss.is_finite());
        assert_eq!(u.weights.len(), c.model().weights().len());
    }

    #[test]
    fn receive_global_overwrites_weights() {
        let donor = forecaster_model(3, 99);
        let mut c = FedClient::new("c1", forecaster_model(3, 1), samples(8, 0.0));
        c.receive_global(&donor.weights()).expect("compatible");
        assert_eq!(c.model().weights(), donor.weights());
    }

    #[test]
    fn receive_global_rejects_incompatible() {
        let mut c = FedClient::new("c1", forecaster_model(3, 1), samples(8, 0.0));
        let err = c.receive_global(&[Matrix::zeros(1, 1)]).unwrap_err();
        assert!(matches!(err, FederatedError::IncompatibleUpdate { .. }));
    }

    #[test]
    fn empty_dataset_fails_training() {
        let mut c = FedClient::new("empty", forecaster_model(3, 1), Vec::new());
        let err = c.train_local(&TrainConfig::default()).unwrap_err();
        assert!(matches!(err, FederatedError::ClientTraining { .. }));
    }

    #[test]
    fn training_reduces_local_loss() {
        let data = samples(48, 0.3);
        let mut c = FedClient::new("c1", forecaster_model(6, 2), data.clone());
        let before = c.evaluate(&data, Loss::Mse);
        let cfg = TrainConfig {
            epochs: 15,
            ..TrainConfig::default()
        };
        c.train_local(&cfg).expect("train");
        let after = c.evaluate(&data, Loss::Mse);
        assert!(after < before, "before={before} after={after}");
    }
}

#[cfg(test)]
mod proximal_tests {
    use super::*;
    use evfad_nn::forecaster_model;

    fn samples(n: usize) -> Vec<Sample> {
        (0..n)
            .map(|i| {
                let xs: Vec<f64> = (0..4).map(|t| ((i + t) as f64 * 0.7).sin()).collect();
                Sample::new(
                    Matrix::column_vector(&xs),
                    Matrix::from_vec(1, 1, vec![((i + 4) as f64 * 0.7).sin()]),
                )
            })
            .collect()
    }

    #[test]
    fn proximal_pull_interpolates_weights() {
        let global = forecaster_model(3, 50).weights();
        let mut c = FedClient::new("c", forecaster_model(3, 1), samples(8));
        let before = c.model().weights();
        c.apply_proximal(&global, 0.5);
        let after = c.model().weights();
        for ((b, g), a) in before.iter().zip(&global).zip(&after) {
            for ((bv, gv), av) in b.as_slice().iter().zip(g.as_slice()).zip(a.as_slice()) {
                assert!((av - 0.5 * (bv + gv)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn proximal_mu_one_snaps_to_global() {
        let global = forecaster_model(3, 50).weights();
        let mut c = FedClient::new("c", forecaster_model(3, 1), samples(8));
        c.apply_proximal(&global, 1.0);
        assert_eq!(c.model().weights(), global);
    }

    #[test]
    fn train_local_proximal_with_zero_mu_matches_epochwise_training() {
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 4,
            ..TrainConfig::default()
        };
        let global = forecaster_model(3, 9).weights();
        let mut a = FedClient::new("a", forecaster_model(3, 9), samples(8));
        let ua = a.train_local_proximal(&cfg, &global, 0.0).expect("train");
        // Same client trained epoch-by-epoch manually.
        let mut b = FedClient::new("b", forecaster_model(3, 9), samples(8));
        let per_epoch = TrainConfig {
            epochs: 1,
            ..cfg.clone()
        };
        b.train_local(&per_epoch).expect("e1");
        let ub = b.train_local(&per_epoch).expect("e2");
        for (x, y) in ua.weights.iter().zip(&ub.weights) {
            for (p, q) in x.as_slice().iter().zip(y.as_slice()) {
                assert!((p - q).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn proximal_training_limits_drift_from_global() {
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 4,
            ..TrainConfig::default()
        };
        let global = forecaster_model(3, 9).weights();
        let drift = |w: &[Matrix]| -> f64 {
            w.iter()
                .zip(&global)
                .map(|(a, b)| (a - b).frobenius_norm())
                .sum()
        };
        let mut free = FedClient::new("free", forecaster_model(3, 9), samples(16));
        free.receive_global(&global).unwrap();
        let u_free = free.train_local_proximal(&cfg, &global, 0.0).unwrap();
        let mut prox = FedClient::new("prox", forecaster_model(3, 9), samples(16));
        prox.receive_global(&global).unwrap();
        let u_prox = prox.train_local_proximal(&cfg, &global, 0.5).unwrap();
        assert!(
            drift(&u_prox.weights) < drift(&u_free.weights),
            "proximal training should stay closer to the global model"
        );
    }
}
