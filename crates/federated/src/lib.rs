//! Federated learning stack: clients, server, aggregation, privacy.
//!
//! Implements the paper's federated LSTM training loop (§II-C2): identical
//! local models trained independently on local datasets, coordinated by
//! Federated Averaging over model weights only — raw data never leaves a
//! client. Per the paper's hyper-parameters the default schedule is
//! `FEDERATED_ROUNDS = 5` rounds of `EPOCHS_PER_ROUND = 10` local epochs.
//!
//! Beyond the paper, the crate provides the robustness/privacy machinery a
//! production deployment would need (and which the benches ablate):
//!
//! * [`Aggregator`] — FedAvg plus Byzantine-robust rules (coordinate-wise
//!   median, trimmed mean, Krum), NaN-tolerant against weight-level
//!   corruption;
//! * [`faults`] — seeded, bit-reproducible fault injection (drop-out,
//!   stragglers with a server-side round timeout, update corruption,
//!   transient failures with retry/backoff) driven by a [`FaultPlan`];
//! * [`privacy`] — clipped Gaussian noise on client updates;
//! * [`transport`] — update-size and retry accounting for the
//!   communication story;
//! * parallel client training on threads (the mechanism behind the paper's
//!   18.1 % training-time advantage over centralized training).
//!
//! # Examples
//!
//! ```
//! use evfad_federated::{Aggregator, FederatedConfig, FederatedSimulation};
//! use evfad_nn::{forecaster_model, Sample};
//! use evfad_tensor::Matrix;
//!
//! // Two clients with tiny local datasets.
//! let make_samples = |phase: f64| -> Vec<Sample> {
//!     (0..24)
//!         .map(|i| {
//!             let xs: Vec<f64> = (0..6).map(|t| ((i + t) as f64 * 0.5 + phase).sin()).collect();
//!             Sample::new(
//!                 Matrix::column_vector(&xs),
//!                 Matrix::from_vec(1, 1, vec![((i + 6) as f64 * 0.5 + phase).sin()]),
//!             )
//!         })
//!         .collect()
//! };
//! let template = forecaster_model(4, 0);
//! let cfg = FederatedConfig { rounds: 2, epochs_per_round: 1, ..FederatedConfig::default() };
//! let mut sim = FederatedSimulation::new(template, cfg);
//! sim.add_client("a", make_samples(0.0));
//! sim.add_client("b", make_samples(1.0));
//! let outcome = sim.run()?;
//! assert_eq!(outcome.rounds.len(), 2);
//! # Ok::<(), evfad_federated::FederatedError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
mod client;
pub mod compression;
mod engine;
mod error;
pub mod faults;
pub mod framing;
pub mod privacy;
pub mod scale;
pub mod scheduler;
mod server;
mod simulation;
pub mod socket;
pub mod streaming;
pub mod transport;
pub mod wire;

pub use aggregate::Aggregator;
pub use client::{FedClient, LocalUpdate};
pub use compression::{CodecScratch, CompressionMode};
pub use error::FederatedError;
pub use faults::{
    Corruption, FaultEvent, FaultInjector, FaultKind, FaultOutcome, FaultPlan, FaultRule,
    RoundSelector,
};
pub use scheduler::Scheduler;
pub use simulation::{
    FederatedConfig, FederatedOutcome, FederatedSimulation, OutcomeDigest, RoundDigest, RoundStats,
};
pub use socket::{SocketClient, SocketServer, SocketServerConfig, SocketTransport};
pub use streaming::StreamingAggregator;
