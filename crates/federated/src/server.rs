//! Server-side round machinery, factored out of the simulation loop so the
//! same components drive both the in-process [`crate::FederatedSimulation`]
//! and the large-population [`crate::scale`] engine:
//!
//! * [`FaultGate`] — deterministic admission (pre-training drop-out) and
//!   disposition (straggler timeout, corruption, transient retry) of
//!   updates under a [`FaultPlan`];
//! * [`meter_uplinks`] — exact wire-byte metering of every payload that
//!   crosses the channel, retries and discarded uploads included, through
//!   a caller-owned [`CodecScratch`](crate::compression::CodecScratch) so
//!   warm rounds encode without allocating;
//! * [`aggregate_round`] — the aggregation entry point, which routes
//!   FedAvg through the O(model) [`crate::streaming`] path (bitwise
//!   identical to the batch fold by construction) and the robust rules
//!   through the batch path.

use crate::aggregate::Aggregator;
use crate::client::LocalUpdate;
use crate::compression::{CodecScratch, CompressionMode};
use crate::error::FederatedError;
use crate::faults::{FaultEvent, FaultInjector, FaultKind, FaultOutcome, FaultPlan};
use crate::transport::MeteredChannel;
use crate::wire;
use evfad_tensor::Matrix;

/// What the server does with a trained update after consulting the fault
/// model: aggregate it, or discard it while still paying for its bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Disposition {
    /// Aggregate the update; it crossed the channel `attempts` times
    /// (1 plus any recovered transient failures).
    Keep { attempts: usize },
    /// Discard the update (timed-out straggler, exhausted retries); its
    /// `attempts` sends are still metered.
    Waste { attempts: usize },
}

/// Deterministic fault admission and disposition for one run.
///
/// Wraps the optional [`FaultPlan`] + [`FaultInjector`] pair and owns the
/// plan-level knobs (`min_participants`, round timeout, retry budget) so
/// round loops never re-derive them. All decisions are pure functions of
/// `(plan seed, round, client id)` — identical across thread counts and
/// across the simulation/scale engines. The scale engine's parallel edge
/// fan-out shares one gate by `&` across worker threads, so the gate must
/// stay `Sync`: no interior mutability, no cached per-call state (the
/// `gate_is_sync_for_the_parallel_fan_out` test pins this at compile
/// time).
#[derive(Debug)]
pub(crate) struct FaultGate {
    injector: Option<FaultInjector>,
    /// Fewest aggregated updates a round may proceed with.
    pub(crate) min_participants: usize,
    round_timeout: Option<f64>,
    retry_budget: usize,
}

impl FaultGate {
    pub(crate) fn new(plan: Option<FaultPlan>) -> Self {
        let (min_participants, round_timeout, retry_budget) = match &plan {
            Some(p) => (p.min_participants, p.round_timeout_seconds, p.retry_budget),
            None => (1, None, 0),
        };
        Self {
            injector: plan.map(FaultInjector::new),
            min_participants,
            round_timeout,
            retry_budget,
        }
    }

    /// The fault (if any) the plan injects for `client_id` in `round`.
    /// Pure: safe to call from a pre-pass and again from the round loop.
    pub(crate) fn fault_for(&self, round: usize, client_id: &str) -> Option<FaultKind> {
        self.injector
            .as_ref()
            .and_then(|inj| inj.fault_for(round, client_id))
    }

    /// Pre-training admission: `None` when the client drops out this round
    /// (the event is recorded; the client never trains), otherwise the
    /// fault to apply post-training via [`FaultGate::dispose`].
    pub(crate) fn admit(
        &self,
        round: usize,
        client_id: &str,
        events: &mut Vec<FaultEvent>,
    ) -> Option<Option<FaultKind>> {
        let fault = self.fault_for(round, client_id);
        if matches!(fault, Some(FaultKind::DropOut)) {
            events.push(FaultEvent {
                round,
                client_id: client_id.to_string(),
                fault: FaultKind::DropOut,
                outcome: FaultOutcome::Dropped,
            });
            None
        } else {
            Some(fault)
        }
    }

    /// The Keep/Waste decision [`FaultGate::dispose`] will make for
    /// `fault`, without touching an update or recording an event. Pure —
    /// lets a pre-pass size streaming aggregators (expected update counts,
    /// sample totals) before any payload exists. `dispose` must agree with
    /// this for every fault kind (pinned by a test below).
    pub(crate) fn decide(&self, fault: Option<FaultKind>) -> Disposition {
        match fault {
            None | Some(FaultKind::Corrupt { .. }) => Disposition::Keep { attempts: 1 },
            Some(FaultKind::DropOut) => unreachable!("drop-outs filtered at admission"),
            Some(FaultKind::Straggler { delay_seconds }) => match self.round_timeout {
                Some(timeout) if delay_seconds > timeout => Disposition::Waste { attempts: 1 },
                _ => Disposition::Keep { attempts: 1 },
            },
            Some(FaultKind::Transient { failures }) => {
                if failures <= self.retry_budget {
                    Disposition::Keep {
                        attempts: failures + 1,
                    }
                } else {
                    Disposition::Waste {
                        attempts: self.retry_budget + 1,
                    }
                }
            }
        }
    }

    /// Applies `fault` to a trained update — in place for corruption and
    /// simulated delay — records the event, and decides whether the server
    /// aggregates or discards it. `timeout_wait_seconds` accumulates the
    /// server-side wait for stragglers cut off by the round timeout.
    ///
    /// `apply_payload_faults` controls whether payload-visible mutations
    /// (update corruption) are applied here. The simulated path passes
    /// `true`; the socket path passes `false` because the *client* applies
    /// the corruption before encoding its uplink — the bytes on the wire
    /// are already corrupt, and re-applying a non-idempotent corruption
    /// (sign flip, scaling) server-side would double it. Accounting-only
    /// effects (simulated delay, retry backoff, events, Keep/Waste) happen
    /// either way.
    pub(crate) fn dispose(
        &self,
        round: usize,
        fault: Option<FaultKind>,
        update: &mut LocalUpdate,
        events: &mut Vec<FaultEvent>,
        timeout_wait_seconds: &mut f64,
        apply_payload_faults: bool,
    ) -> Disposition {
        let fault = match fault {
            None => return Disposition::Keep { attempts: 1 },
            Some(FaultKind::DropOut) => unreachable!("drop-outs filtered before training"),
            Some(f) => f,
        };
        let event = |outcome: FaultOutcome| FaultEvent {
            round,
            client_id: update.client_id.clone(),
            fault,
            outcome,
        };
        match fault {
            FaultKind::DropOut => unreachable!(),
            FaultKind::Straggler { delay_seconds } => match self.round_timeout {
                Some(timeout) if delay_seconds > timeout => {
                    *timeout_wait_seconds = timeout_wait_seconds.max(timeout);
                    events.push(event(FaultOutcome::TimedOut {
                        delay_seconds,
                        timeout_seconds: timeout,
                    }));
                    // The late update still arrives eventually and still
                    // costs bandwidth; it is just ignored.
                    Disposition::Waste { attempts: 1 }
                }
                _ => {
                    update.simulated_extra_seconds += delay_seconds;
                    events.push(event(FaultOutcome::Delayed { delay_seconds }));
                    Disposition::Keep { attempts: 1 }
                }
            },
            FaultKind::Corrupt { corruption } => {
                if apply_payload_faults {
                    corruption.apply(&mut update.weights);
                }
                events.push(event(FaultOutcome::Corrupted));
                Disposition::Keep { attempts: 1 }
            }
            FaultKind::Transient { failures } => {
                if failures <= self.retry_budget {
                    let backoff = self
                        .injector
                        .as_ref()
                        .expect("transient fault implies a plan")
                        .plan()
                        .backoff_total_seconds(failures);
                    update.simulated_extra_seconds += backoff;
                    events.push(event(FaultOutcome::Recovered {
                        failed_attempts: failures,
                        backoff_seconds: backoff,
                    }));
                    Disposition::Keep {
                        attempts: failures + 1,
                    }
                } else {
                    let attempts = self.retry_budget + 1;
                    events.push(event(FaultOutcome::RetriesExhausted {
                        failed_attempts: attempts,
                    }));
                    Disposition::Waste { attempts }
                }
            }
        }
    }
}

/// Uplink traffic for one round, as metered by [`meter_uplinks`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct UplinkStats {
    /// Wire bytes that actually crossed the channel, retries included.
    pub(crate) bytes: usize,
    /// Full-precision bytes the same payloads would have cost.
    pub(crate) raw_bytes: usize,
}

impl UplinkStats {
    /// Full-precision bytes over actual bytes (1.0 when nothing crossed).
    pub(crate) fn compression_ratio(&self) -> f64 {
        if self.bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.bytes as f64
        }
    }
}

/// Encodes, meters, and (for lossy modes) decodes every uplink of a round:
/// kept updates have their weights replaced by the server-side decode so
/// metering, faults, and aggregation all see the same bytes; wasted
/// updates (timed-out stragglers, exhausted retries) are metered only.
///
/// `kept_wire` / the third tuple field of `wasted` carry the *actual*
/// payload byte length for updates that crossed a real wire (the socket
/// path): those weights are already the server-side decode of the received
/// payload, so re-encoding here would not be an identity for the lossy
/// modes (re-quantizing dequantized values moves the grid). `None` means
/// the in-process path: encode into `scratch`, meter the arithmetic,
/// substitute the decode in place — the round loop owns one scratch for
/// the whole run, so warm rounds encode and decode every update without a
/// single codec allocation. Frame and envelope overhead is deliberately
/// excluded from the metered bytes on both paths; the digest counts
/// protocol payload, which is what `wire::encoded_size` arithmetic
/// predicts.
#[allow(clippy::too_many_arguments)] // one call site; three of these are parallel slices
pub(crate) fn meter_uplinks(
    channel: &MeteredChannel,
    mode: CompressionMode,
    global: &[Matrix],
    kept: &mut [LocalUpdate],
    kept_attempts: &[usize],
    kept_wire: &[Option<usize>],
    wasted: &[(LocalUpdate, usize, Option<usize>)],
    scratch: &mut CodecScratch,
) -> UplinkStats {
    let mut stats = UplinkStats::default();
    for ((update, attempts), wire_len) in kept.iter_mut().zip(kept_attempts).zip(kept_wire) {
        stats.raw_bytes += wire::encoded_size(&update.weights) * attempts;
        let payload_bytes = match wire_len {
            Some(len) => *len,
            None => {
                let len = scratch.encoded_len(mode, &update.weights, global);
                scratch.decode_into(mode, global, &mut update.weights);
                len
            }
        };
        channel.record_attempts_bytes(payload_bytes, *attempts);
        stats.bytes += payload_bytes * attempts;
    }
    for (update, attempts, wire_len) in wasted {
        let payload_bytes = match wire_len {
            Some(len) => *len,
            None => scratch.encoded_len(mode, &update.weights, global),
        };
        channel.record_attempts_bytes(payload_bytes, *attempts);
        stats.bytes += payload_bytes * attempts;
        stats.raw_bytes += wire::encoded_size(&update.weights) * attempts;
    }
    stats
}

/// Aggregates one round's surviving updates.
///
/// FedAvg is routed through [`crate::streaming::StreamingAggregator`] —
/// the streaming fold replays the batch fold term by term (same weights,
/// same order), so the result is **bitwise identical** to
/// [`Aggregator::aggregate`] while holding O(model) state; the golden
/// fixture pins this. The robust rules keep the batch path here: median
/// and Krum fundamentally need all updates, and streaming trimmed mean
/// re-associates the sum (≈1 ulp) so it serves the scale engine, not the
/// bit-reproducible simulation.
pub(crate) fn aggregate_round(
    aggregator: Aggregator,
    kept: &[LocalUpdate],
) -> Result<Vec<Matrix>, FederatedError> {
    if matches!(aggregator, Aggregator::FedAvg) && !kept.is_empty() {
        let total: f64 = kept.iter().map(|u| u.sample_count as f64).sum();
        if let Some(mut streaming) = aggregator.streaming(total, kept.len()) {
            for update in kept {
                streaming.ingest(update)?;
            }
            return streaming.finish();
        }
    }
    aggregator.aggregate(kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::RoundSelector;
    use std::time::Duration;

    #[test]
    fn gate_is_sync_for_the_parallel_fan_out() {
        // The scale engine hands `&FaultGate` to every edge-fold worker;
        // losing `Sync` (e.g. by caching decisions in a `Cell`) would
        // break that at a distance.
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<FaultGate>();
    }

    fn update(id: &str, count: usize, v: f64) -> LocalUpdate {
        LocalUpdate {
            client_id: id.to_string(),
            weights: vec![Matrix::from_vec(1, 3, vec![v, v * 2.0, v * -0.5])],
            sample_count: count,
            train_loss: 0.1,
            duration: Duration::ZERO,
            simulated_extra_seconds: 0.0,
        }
    }

    #[test]
    fn aggregate_round_fedavg_is_bitwise_identical_to_batch() {
        let kept = vec![
            update("a", 31, 0.1234567),
            update("b", 7, -2.25),
            update("c", 113, 9.75e-3),
        ];
        let via_server = aggregate_round(Aggregator::FedAvg, &kept).expect("streaming route");
        let via_batch = Aggregator::FedAvg.aggregate(&kept).expect("batch");
        assert_eq!(via_server, via_batch, "must match to the bit");
    }

    #[test]
    fn aggregate_round_robust_rules_use_the_batch_path() {
        let kept = vec![
            update("a", 1, 1.0),
            update("b", 1, 2.0),
            update("c", 1, 3.0),
            update("d", 1, 4.0),
        ];
        for agg in [
            Aggregator::Median,
            Aggregator::TrimmedMean { trim: 1 },
            Aggregator::Krum { byzantine: 1 },
        ] {
            let via_server = aggregate_round(agg, &kept).expect("server route");
            let via_batch = agg.aggregate(&kept).expect("batch");
            assert_eq!(via_server, via_batch);
        }
    }

    #[test]
    fn aggregate_round_propagates_no_clients() {
        assert!(matches!(
            aggregate_round(Aggregator::FedAvg, &[]),
            Err(FederatedError::NoClients)
        ));
    }

    #[test]
    fn gate_without_plan_keeps_everything() {
        let gate = FaultGate::new(None);
        assert_eq!(gate.min_participants, 1);
        let mut events = Vec::new();
        assert_eq!(gate.admit(0, "a", &mut events), Some(None));
        let mut u = update("a", 1, 1.0);
        let mut wait = 0.0;
        let d = gate.dispose(0, None, &mut u, &mut events, &mut wait, true);
        assert_eq!(d, Disposition::Keep { attempts: 1 });
        assert!(events.is_empty());
        assert_eq!(wait, 0.0);
    }

    #[test]
    fn gate_times_out_stragglers_past_the_deadline() {
        let plan = FaultPlan::new(3).with_timeout(10.0).with_rule(
            "slow",
            RoundSelector::Every,
            FaultKind::Straggler {
                delay_seconds: 50.0,
            },
        );
        let gate = FaultGate::new(Some(plan));
        let mut events = Vec::new();
        let fault = gate.admit(0, "slow", &mut events).expect("not a drop-out");
        let mut u = update("slow", 1, 1.0);
        let mut wait = 0.0;
        let d = gate.dispose(0, fault, &mut u, &mut events, &mut wait, true);
        assert_eq!(d, Disposition::Waste { attempts: 1 });
        assert_eq!(wait, 10.0);
        assert!(matches!(
            events[0].outcome,
            FaultOutcome::TimedOut { delay_seconds, timeout_seconds }
                if delay_seconds == 50.0 && timeout_seconds == 10.0
        ));
    }

    #[test]
    fn gate_records_drop_outs_at_admission() {
        let plan = FaultPlan::new(3).with_rule("gone", RoundSelector::Every, FaultKind::DropOut);
        let gate = FaultGate::new(Some(plan));
        let mut events = Vec::new();
        assert_eq!(gate.admit(0, "gone", &mut events), None);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].outcome, FaultOutcome::Dropped);
        assert_eq!(gate.admit(0, "here", &mut events), Some(None));
    }

    #[test]
    fn decide_agrees_with_dispose_for_every_fault_kind() {
        use crate::faults::Corruption;
        let plan = FaultPlan::new(1).with_timeout(10.0).with_retry(2, 1.0);
        let gate = FaultGate::new(Some(plan));
        let cases = [
            None,
            Some(FaultKind::Straggler { delay_seconds: 5.0 }),
            Some(FaultKind::Straggler {
                delay_seconds: 50.0,
            }),
            Some(FaultKind::Corrupt {
                corruption: Corruption::NanFlood,
            }),
            Some(FaultKind::Transient { failures: 2 }),
            Some(FaultKind::Transient { failures: 3 }),
        ];
        for fault in cases {
            let mut u = update("x", 1, 1.0);
            let mut events = Vec::new();
            let mut wait = 0.0;
            let disposed = gate.dispose(0, fault, &mut u, &mut events, &mut wait, true);
            assert_eq!(gate.decide(fault), disposed, "fault {fault:?}");
        }
    }

    #[test]
    fn gate_meters_exhausted_retries_as_waste() {
        let plan = FaultPlan::new(3).with_retry(1, 1.0).with_rule(
            "flaky",
            RoundSelector::Every,
            FaultKind::Transient { failures: 5 },
        );
        let gate = FaultGate::new(Some(plan));
        let mut events = Vec::new();
        let fault = gate.admit(0, "flaky", &mut events).expect("active");
        let mut u = update("flaky", 1, 1.0);
        let mut wait = 0.0;
        let d = gate.dispose(0, fault, &mut u, &mut events, &mut wait, true);
        assert_eq!(d, Disposition::Waste { attempts: 2 });
        assert!(matches!(
            events[0].outcome,
            FaultOutcome::RetriesExhausted { failed_attempts: 2 }
        ));
    }
}
