//! Binary wire format for weight exchange.
//!
//! JSON (see [`transport`](crate::transport)) is convenient for inspection
//! but ~3x larger than necessary. This module defines the compact format a
//! real deployment would put on the network: a magic/version header, then
//! each tensor as `rows: u32, cols: u32, data: f64-LE…`. Combined with
//! [`compression`](crate::compression) it completes the communication
//! story of the paper's §II-C2 ("only model parameters were exchanged").

use bytes::{Buf, BufMut, Bytes, BytesMut};
use evfad_tensor::Matrix;

/// Format magic (`"EVFD"`).
pub const MAGIC: [u8; 4] = *b"EVFD";

/// Current format version.
pub const VERSION: u16 = 1;

/// Error produced when decoding a weight payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Payload does not start with the expected magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Payload ended before the declared content.
    Truncated,
    /// A declared tensor shape is implausibly large (corrupt header).
    OversizedTensor {
        /// Declared rows.
        rows: u32,
        /// Declared cols.
        cols: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "payload is not an EVFD weight blob"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::OversizedTensor { rows, cols } => {
                write!(f, "tensor of {rows}x{cols} exceeds sanity bounds")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Maximum accepted elements per tensor (64 MiB of f64) — a sanity bound
/// against corrupt headers, far above any model in this workspace.
const MAX_TENSOR_ELEMENTS: u64 = 8 * 1024 * 1024;

/// Encodes a weight vector into the binary wire format.
///
/// # Examples
///
/// ```
/// use evfad_federated::wire;
/// use evfad_tensor::Matrix;
///
/// let weights = vec![Matrix::identity(3)];
/// let blob = wire::encode_weights(&weights);
/// let back = wire::decode_weights(&blob)?;
/// assert_eq!(back, weights);
/// # Ok::<(), evfad_federated::wire::WireError>(())
/// ```
pub fn encode_weights(weights: &[Matrix]) -> Bytes {
    let payload: usize = weights.iter().map(|m| 8 + m.len() * 8).sum();
    let mut buf = BytesMut::with_capacity(4 + 2 + 4 + payload);
    buf.put_slice(&MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(weights.len() as u32);
    for m in weights {
        buf.put_u32_le(m.rows() as u32);
        buf.put_u32_le(m.cols() as u32);
        for &v in m.as_slice() {
            buf.put_f64_le(v);
        }
    }
    buf.freeze()
}

/// Decodes a payload produced by [`encode_weights`].
///
/// # Errors
///
/// Returns [`WireError`] on a malformed or truncated payload.
pub fn decode_weights(mut payload: &[u8]) -> Result<Vec<Matrix>, WireError> {
    if payload.remaining() < 10 {
        return Err(WireError::Truncated);
    }
    let mut magic = [0u8; 4];
    payload.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = payload.get_u16_le();
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let count = payload.get_u32_le() as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if payload.remaining() < 8 {
            return Err(WireError::Truncated);
        }
        let rows = payload.get_u32_le();
        let cols = payload.get_u32_le();
        let elements = rows as u64 * cols as u64;
        if elements > MAX_TENSOR_ELEMENTS {
            return Err(WireError::OversizedTensor { rows, cols });
        }
        if (payload.remaining() as u64) < elements * 8 {
            return Err(WireError::Truncated);
        }
        let mut data = Vec::with_capacity(elements as usize);
        for _ in 0..elements {
            data.push(payload.get_f64_le());
        }
        out.push(Matrix::from_vec(rows as usize, cols as usize, data));
    }
    Ok(out)
}

/// Size in bytes [`encode_weights`] will produce for these weights.
pub fn encoded_size(weights: &[Matrix]) -> usize {
    10 + weights.iter().map(|m| 8 + m.len() * 8).sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_weights() -> Vec<Matrix> {
        vec![
            Matrix::from_fn(5, 7, |i, j| (i as f64) - 0.37 * j as f64),
            Matrix::row_vector(&[1.0, -2.5, f64::MIN_POSITIVE, 1e300]),
        ]
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let w = sample_weights();
        let blob = encode_weights(&w);
        assert_eq!(decode_weights(&blob).unwrap(), w);
    }

    #[test]
    fn encoded_size_matches() {
        let w = sample_weights();
        assert_eq!(encode_weights(&w).len(), encoded_size(&w));
    }

    #[test]
    fn rejects_bad_magic() {
        let mut blob = encode_weights(&sample_weights()).to_vec();
        blob[0] = b'X';
        assert_eq!(decode_weights(&blob), Err(WireError::BadMagic));
    }

    #[test]
    fn rejects_bad_version() {
        let mut blob = encode_weights(&sample_weights()).to_vec();
        blob[4] = 99;
        assert!(matches!(
            decode_weights(&blob),
            Err(WireError::BadVersion(_))
        ));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let blob = encode_weights(&sample_weights());
        for cut in [0, 5, 9, 12, 20, blob.len() - 1] {
            assert!(
                matches!(decode_weights(&blob[..cut]), Err(WireError::Truncated)),
                "cut at {cut} not detected"
            );
        }
    }

    #[test]
    fn rejects_oversized_header() {
        let mut buf = bytes::BytesMut::new();
        buf.put_slice(&MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u32_le(1);
        buf.put_u32_le(u32::MAX);
        buf.put_u32_le(u32::MAX);
        assert!(matches!(
            decode_weights(&buf),
            Err(WireError::OversizedTensor { .. })
        ));
    }

    #[test]
    fn empty_weight_list_round_trips() {
        let blob = encode_weights(&[]);
        assert_eq!(decode_weights(&blob).unwrap(), Vec::<Matrix>::new());
    }

    #[test]
    fn binary_is_smaller_than_json() {
        let w = vec![Matrix::from_fn(51, 200, |i, j| (i * j) as f64 * 1e-4)];
        let binary = encode_weights(&w).len();
        let json = serde_json::to_vec(&w).unwrap().len();
        assert!(binary < json, "binary {binary} vs json {json}");
    }

    #[test]
    fn model_weights_survive_the_wire() {
        use evfad_nn::forecaster_model;
        let mut model = forecaster_model(8, 3);
        let blob = encode_weights(&model.weights());
        let restored = decode_weights(&blob).unwrap();
        model.set_weights(&restored).expect("same shapes");
    }
}
