//! Binary wire format for weight exchange.
//!
//! JSON (see [`transport`](crate::transport)) is convenient for inspection
//! but ~3x larger than necessary. This module defines the compact format a
//! real deployment would put on the network: a magic/version header, then
//! each tensor as `rows: u32, cols: u32, data: f64-LE…`. Combined with
//! [`compression`](crate::compression) it completes the communication
//! story of the paper's §II-C2 ("only model parameters were exchanged").

use crate::faults::{Corruption, FaultEvent, FaultKind, FaultOutcome};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use evfad_tensor::Matrix;

/// Format magic for weight payloads (`"EVFD"`).
pub const MAGIC: [u8; 4] = *b"EVFD";

/// Format magic for fault-log payloads (`"EVFL"`).
pub const FAULT_MAGIC: [u8; 4] = *b"EVFL";

/// Current format version.
pub const VERSION: u16 = 1;

/// Error produced when decoding a weight payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Payload does not start with the expected magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Payload ended before the declared content.
    Truncated,
    /// A declared tensor shape is implausibly large (corrupt header).
    OversizedTensor {
        /// Declared rows.
        rows: u32,
        /// Declared cols.
        cols: u32,
    },
    /// An enum discriminant byte not defined by this format version.
    UnknownTag(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "payload is not an EVFD weight blob"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::OversizedTensor { rows, cols } => {
                write!(f, "tensor of {rows}x{cols} exceeds sanity bounds")
            }
            WireError::UnknownTag(tag) => write!(f, "unknown discriminant byte {tag:#04x}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Maximum accepted elements per tensor (64 MiB of f64) — a sanity bound
/// against corrupt headers, far above any model in this workspace.
const MAX_TENSOR_ELEMENTS: u64 = 8 * 1024 * 1024;

/// Encodes a weight vector into the binary wire format.
///
/// # Examples
///
/// ```
/// use evfad_federated::wire;
/// use evfad_tensor::Matrix;
///
/// let weights = vec![Matrix::identity(3)];
/// let blob = wire::encode_weights(&weights);
/// let back = wire::decode_weights(&blob)?;
/// assert_eq!(back, weights);
/// # Ok::<(), evfad_federated::wire::WireError>(())
/// ```
pub fn encode_weights(weights: &[Matrix]) -> Bytes {
    let payload: usize = weights.iter().map(|m| 8 + m.len() * 8).sum();
    let mut buf = BytesMut::with_capacity(4 + 2 + 4 + payload);
    buf.put_slice(&MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(weights.len() as u32);
    for m in weights {
        buf.put_u32_le(m.rows() as u32);
        buf.put_u32_le(m.cols() as u32);
        for &v in m.as_slice() {
            buf.put_f64_le(v);
        }
    }
    buf.freeze()
}

/// Decodes a payload produced by [`encode_weights`].
///
/// # Errors
///
/// Returns [`WireError`] on a malformed or truncated payload.
pub fn decode_weights(mut payload: &[u8]) -> Result<Vec<Matrix>, WireError> {
    if payload.remaining() < 10 {
        return Err(WireError::Truncated);
    }
    let mut magic = [0u8; 4];
    payload.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = payload.get_u16_le();
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let count = payload.get_u32_le() as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if payload.remaining() < 8 {
            return Err(WireError::Truncated);
        }
        let rows = payload.get_u32_le();
        let cols = payload.get_u32_le();
        let elements = rows as u64 * cols as u64;
        if elements > MAX_TENSOR_ELEMENTS {
            return Err(WireError::OversizedTensor { rows, cols });
        }
        if (payload.remaining() as u64) < elements * 8 {
            return Err(WireError::Truncated);
        }
        let mut data = Vec::with_capacity(elements as usize);
        for _ in 0..elements {
            data.push(payload.get_f64_le());
        }
        out.push(Matrix::from_vec(rows as usize, cols as usize, data));
    }
    Ok(out)
}

/// Size in bytes [`encode_weights`] will produce for these weights.
pub fn encoded_size(weights: &[Matrix]) -> usize {
    10 + weights.iter().map(|m| 8 + m.len() * 8).sum::<usize>()
}

/// FNV-1a checksum of the binary wire encoding of `weights`.
///
/// Bit-exact by construction ([`encode_weights`] stores raw f64 little-
/// endian bytes), so two weight vectors share a checksum iff every
/// coordinate is bit-identical — the property the golden regression
/// fixture (`tests/fixtures/golden_outcome.json`) pins across PRs.
pub fn weights_checksum(weights: &[Matrix]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in encode_weights(weights).iter() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Maximum accepted events per fault log (sanity bound, far above any
/// simulation in this workspace: rounds × clients × rules).
const MAX_FAULT_EVENTS: u32 = 1 << 24;

// Fault-kind discriminants.
const TAG_DROP_OUT: u8 = 0;
const TAG_STRAGGLER: u8 = 1;
const TAG_CORRUPT: u8 = 2;
const TAG_TRANSIENT: u8 = 3;
// Corruption discriminants.
const TAG_NAN_FLOOD: u8 = 0;
const TAG_SIGN_FLIP: u8 = 1;
const TAG_SCALE: u8 = 2;
// Fault-outcome discriminants.
const TAG_DROPPED: u8 = 0;
const TAG_DELAYED: u8 = 1;
const TAG_TIMED_OUT: u8 = 2;
const TAG_CORRUPTED: u8 = 3;
const TAG_RECOVERED: u8 = 4;
const TAG_EXHAUSTED: u8 = 5;

/// Encodes a fault log into the binary wire format — the telemetry a real
/// deployment would ship alongside round stats so operators can audit
/// which clients misbehaved when.
///
/// # Examples
///
/// ```
/// use evfad_federated::faults::{FaultEvent, FaultKind, FaultOutcome};
/// use evfad_federated::wire;
///
/// let log = vec![FaultEvent {
///     round: 2,
///     client_id: "z105".into(),
///     fault: FaultKind::DropOut,
///     outcome: FaultOutcome::Dropped,
/// }];
/// let blob = wire::encode_fault_log(&log);
/// assert_eq!(wire::decode_fault_log(&blob)?, log);
/// # Ok::<(), evfad_federated::wire::WireError>(())
/// ```
pub fn encode_fault_log(events: &[FaultEvent]) -> Bytes {
    let mut buf = BytesMut::with_capacity(10 + events.len() * 32);
    buf.put_slice(&FAULT_MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(events.len() as u32);
    for e in events {
        buf.put_u32_le(e.round as u32);
        buf.put_u16_le(e.client_id.len() as u16);
        buf.put_slice(e.client_id.as_bytes());
        match e.fault {
            FaultKind::DropOut => buf.put_u8(TAG_DROP_OUT),
            FaultKind::Straggler { delay_seconds } => {
                buf.put_u8(TAG_STRAGGLER);
                buf.put_f64_le(delay_seconds);
            }
            FaultKind::Corrupt { corruption } => {
                buf.put_u8(TAG_CORRUPT);
                match corruption {
                    Corruption::NanFlood => buf.put_u8(TAG_NAN_FLOOD),
                    Corruption::SignFlip => buf.put_u8(TAG_SIGN_FLIP),
                    Corruption::Scale { factor } => {
                        buf.put_u8(TAG_SCALE);
                        buf.put_f64_le(factor);
                    }
                }
            }
            FaultKind::Transient { failures } => {
                buf.put_u8(TAG_TRANSIENT);
                buf.put_u32_le(failures as u32);
            }
        }
        match e.outcome {
            FaultOutcome::Dropped => buf.put_u8(TAG_DROPPED),
            FaultOutcome::Delayed { delay_seconds } => {
                buf.put_u8(TAG_DELAYED);
                buf.put_f64_le(delay_seconds);
            }
            FaultOutcome::TimedOut {
                delay_seconds,
                timeout_seconds,
            } => {
                buf.put_u8(TAG_TIMED_OUT);
                buf.put_f64_le(delay_seconds);
                buf.put_f64_le(timeout_seconds);
            }
            FaultOutcome::Corrupted => buf.put_u8(TAG_CORRUPTED),
            FaultOutcome::Recovered {
                failed_attempts,
                backoff_seconds,
            } => {
                buf.put_u8(TAG_RECOVERED);
                buf.put_u32_le(failed_attempts as u32);
                buf.put_f64_le(backoff_seconds);
            }
            FaultOutcome::RetriesExhausted { failed_attempts } => {
                buf.put_u8(TAG_EXHAUSTED);
                buf.put_u32_le(failed_attempts as u32);
            }
        }
    }
    buf.freeze()
}

/// Decodes a payload produced by [`encode_fault_log`].
///
/// # Errors
///
/// Returns [`WireError`] on a malformed, truncated, or unknown-tag
/// payload.
pub fn decode_fault_log(mut payload: &[u8]) -> Result<Vec<FaultEvent>, WireError> {
    if payload.remaining() < 10 {
        return Err(WireError::Truncated);
    }
    let mut magic = [0u8; 4];
    payload.copy_to_slice(&mut magic);
    if magic != FAULT_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = payload.get_u16_le();
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let count = payload.get_u32_le();
    if count > MAX_FAULT_EVENTS {
        return Err(WireError::Truncated);
    }
    fn need(payload: &[u8], n: usize) -> Result<(), WireError> {
        if payload.remaining() < n {
            Err(WireError::Truncated)
        } else {
            Ok(())
        }
    }
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        need(payload, 6)?;
        let round = payload.get_u32_le() as usize;
        let id_len = payload.get_u16_le() as usize;
        need(payload, id_len)?;
        let mut id_bytes = vec![0u8; id_len];
        payload.copy_to_slice(&mut id_bytes);
        let client_id = String::from_utf8(id_bytes).map_err(|_| WireError::BadMagic)?;
        need(payload, 1)?;
        let fault = match payload.get_u8() {
            TAG_DROP_OUT => FaultKind::DropOut,
            TAG_STRAGGLER => {
                need(payload, 8)?;
                FaultKind::Straggler {
                    delay_seconds: payload.get_f64_le(),
                }
            }
            TAG_CORRUPT => {
                need(payload, 1)?;
                let corruption = match payload.get_u8() {
                    TAG_NAN_FLOOD => Corruption::NanFlood,
                    TAG_SIGN_FLIP => Corruption::SignFlip,
                    TAG_SCALE => {
                        need(payload, 8)?;
                        Corruption::Scale {
                            factor: payload.get_f64_le(),
                        }
                    }
                    tag => return Err(WireError::UnknownTag(tag)),
                };
                FaultKind::Corrupt { corruption }
            }
            TAG_TRANSIENT => {
                need(payload, 4)?;
                FaultKind::Transient {
                    failures: payload.get_u32_le() as usize,
                }
            }
            tag => return Err(WireError::UnknownTag(tag)),
        };
        need(payload, 1)?;
        let outcome = match payload.get_u8() {
            TAG_DROPPED => FaultOutcome::Dropped,
            TAG_DELAYED => {
                need(payload, 8)?;
                FaultOutcome::Delayed {
                    delay_seconds: payload.get_f64_le(),
                }
            }
            TAG_TIMED_OUT => {
                need(payload, 16)?;
                FaultOutcome::TimedOut {
                    delay_seconds: payload.get_f64_le(),
                    timeout_seconds: payload.get_f64_le(),
                }
            }
            TAG_CORRUPTED => FaultOutcome::Corrupted,
            TAG_RECOVERED => {
                need(payload, 12)?;
                FaultOutcome::Recovered {
                    failed_attempts: payload.get_u32_le() as usize,
                    backoff_seconds: payload.get_f64_le(),
                }
            }
            TAG_EXHAUSTED => {
                need(payload, 4)?;
                FaultOutcome::RetriesExhausted {
                    failed_attempts: payload.get_u32_le() as usize,
                }
            }
            tag => return Err(WireError::UnknownTag(tag)),
        };
        out.push(FaultEvent {
            round,
            client_id,
            fault,
            outcome,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_weights() -> Vec<Matrix> {
        vec![
            Matrix::from_fn(5, 7, |i, j| (i as f64) - 0.37 * j as f64),
            Matrix::row_vector(&[1.0, -2.5, f64::MIN_POSITIVE, 1e300]),
        ]
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let w = sample_weights();
        let blob = encode_weights(&w);
        assert_eq!(decode_weights(&blob).unwrap(), w);
    }

    #[test]
    fn encoded_size_matches() {
        let w = sample_weights();
        assert_eq!(encode_weights(&w).len(), encoded_size(&w));
    }

    #[test]
    fn rejects_bad_magic() {
        let mut blob = encode_weights(&sample_weights()).to_vec();
        blob[0] = b'X';
        assert_eq!(decode_weights(&blob), Err(WireError::BadMagic));
    }

    #[test]
    fn rejects_bad_version() {
        let mut blob = encode_weights(&sample_weights()).to_vec();
        blob[4] = 99;
        assert!(matches!(
            decode_weights(&blob),
            Err(WireError::BadVersion(_))
        ));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let blob = encode_weights(&sample_weights());
        for cut in [0, 5, 9, 12, 20, blob.len() - 1] {
            assert!(
                matches!(decode_weights(&blob[..cut]), Err(WireError::Truncated)),
                "cut at {cut} not detected"
            );
        }
    }

    #[test]
    fn rejects_oversized_header() {
        let mut buf = bytes::BytesMut::new();
        buf.put_slice(&MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u32_le(1);
        buf.put_u32_le(u32::MAX);
        buf.put_u32_le(u32::MAX);
        assert!(matches!(
            decode_weights(&buf),
            Err(WireError::OversizedTensor { .. })
        ));
    }

    #[test]
    fn empty_weight_list_round_trips() {
        let blob = encode_weights(&[]);
        assert_eq!(decode_weights(&blob).unwrap(), Vec::<Matrix>::new());
    }

    #[test]
    fn binary_is_smaller_than_json() {
        let w = vec![Matrix::from_fn(51, 200, |i, j| (i * j) as f64 * 1e-4)];
        let binary = encode_weights(&w).len();
        let json = serde_json::to_vec(&w).unwrap().len();
        assert!(binary < json, "binary {binary} vs json {json}");
    }

    fn sample_fault_log() -> Vec<FaultEvent> {
        vec![
            FaultEvent {
                round: 0,
                client_id: "z102".into(),
                fault: FaultKind::DropOut,
                outcome: FaultOutcome::Dropped,
            },
            FaultEvent {
                round: 1,
                client_id: "z105".into(),
                fault: FaultKind::Straggler {
                    delay_seconds: 42.5,
                },
                outcome: FaultOutcome::TimedOut {
                    delay_seconds: 42.5,
                    timeout_seconds: 30.0,
                },
            },
            FaultEvent {
                round: 1,
                client_id: "z108".into(),
                fault: FaultKind::Corrupt {
                    corruption: Corruption::Scale { factor: -2.25 },
                },
                outcome: FaultOutcome::Corrupted,
            },
            FaultEvent {
                round: 2,
                client_id: "z111".into(),
                fault: FaultKind::Transient { failures: 2 },
                outcome: FaultOutcome::Recovered {
                    failed_attempts: 2,
                    backoff_seconds: 3.0,
                },
            },
            FaultEvent {
                round: 3,
                client_id: "z114".into(),
                fault: FaultKind::Transient { failures: 9 },
                outcome: FaultOutcome::RetriesExhausted { failed_attempts: 3 },
            },
            FaultEvent {
                round: 4,
                client_id: "z117".into(),
                fault: FaultKind::Corrupt {
                    corruption: Corruption::NanFlood,
                },
                outcome: FaultOutcome::Delayed { delay_seconds: 1.5 },
            },
        ]
    }

    #[test]
    fn fault_log_round_trips() {
        let log = sample_fault_log();
        let blob = encode_fault_log(&log);
        assert_eq!(decode_fault_log(&blob).unwrap(), log);
    }

    #[test]
    fn empty_fault_log_round_trips() {
        let blob = encode_fault_log(&[]);
        assert_eq!(decode_fault_log(&blob).unwrap(), Vec::<FaultEvent>::new());
    }

    #[test]
    fn fault_log_rejects_weight_magic_and_vice_versa() {
        let weights = encode_weights(&sample_weights());
        assert_eq!(decode_fault_log(&weights), Err(WireError::BadMagic));
        let log = encode_fault_log(&sample_fault_log());
        assert_eq!(decode_weights(&log), Err(WireError::BadMagic));
    }

    #[test]
    fn fault_log_rejects_truncation_everywhere() {
        let blob = encode_fault_log(&sample_fault_log());
        for cut in 0..blob.len() {
            let err = decode_fault_log(&blob[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated | WireError::UnknownTag(_)),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn fault_log_rejects_unknown_tags() {
        let mut blob = encode_fault_log(&sample_fault_log()[..1]).to_vec();
        let tag_at = blob.len() - 2; // fault tag of the single DropOut event
        blob[tag_at] = 250;
        assert_eq!(decode_fault_log(&blob), Err(WireError::UnknownTag(250)));
    }

    #[test]
    fn checksum_is_sensitive_to_single_bit_flips() {
        let w = sample_weights();
        let base = weights_checksum(&w);
        assert_eq!(base, weights_checksum(&w), "deterministic");
        let mut flipped = w.clone();
        let v = flipped[0].as_slice()[0];
        flipped[0].as_mut_slice()[0] = f64::from_bits(v.to_bits() ^ 1);
        assert_ne!(base, weights_checksum(&flipped));
    }

    #[test]
    fn model_weights_survive_the_wire() {
        use evfad_nn::forecaster_model;
        let mut model = forecaster_model(8, 3);
        let blob = encode_weights(&model.weights());
        let restored = decode_weights(&blob).unwrap();
        model.set_weights(&restored).expect("same shapes");
    }
}
