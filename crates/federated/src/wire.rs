//! Binary wire format for weight exchange — what actually crosses the
//! simulated channel.
//!
//! JSON is ~3x larger than necessary and costs a full serialisation just
//! to measure; this module defines the compact format a real deployment
//! would put on the network, and since PR 5 it is the format the round
//! loop *meters*: a magic/version header, then each tensor as
//! `rows: u32, cols: u32, data: f64-LE…` (`EVFD`), plus compressed uplink
//! records for 8-bit-quantized tensors (`EVQ8`) and sparse top-k deltas
//! (`EVSK`) — see [`compression`](crate::compression). Every format has an
//! exact O(1) size function, so metering never serialises. Together they
//! complete the communication story of the paper's §II-C2 ("only model
//! parameters were exchanged").

use crate::aggregate::Aggregator;
use crate::compression::{
    CompressionMode, QuantizedTensor, QuantizedUpdate, SparseDelta, SparseTensor,
};
use crate::faults::{
    Corruption, FaultEvent, FaultKind, FaultOutcome, FaultPlan, FaultRule, RoundSelector,
};
use crate::privacy::DpConfig;
use crate::simulation::FederatedConfig;
use bytes::{Buf, BufMut, Bytes};
use evfad_tensor::quant::QuantRange;
use evfad_tensor::Matrix;

pub use bytes::BytesMut;

/// Format magic for weight payloads (`"EVFD"`).
pub const MAGIC: [u8; 4] = *b"EVFD";

/// Format magic for 8-bit-quantized update payloads (`"EVQ8"`).
pub const QUANT_MAGIC: [u8; 4] = *b"EVQ8";

/// Format magic for sparse top-k delta payloads (`"EVSK"`).
pub const SPARSE_MAGIC: [u8; 4] = *b"EVSK";

/// Format magic for fault-log payloads (`"EVFL"`).
pub const FAULT_MAGIC: [u8; 4] = *b"EVFL";

/// Current format version.
pub const VERSION: u16 = 1;

/// Error produced when decoding a weight payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Payload does not start with the expected magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Payload ended before the declared content. `needed` is the minimum
    /// number of *additional* bytes required for the decoder to make
    /// progress (complete the element it was reading) — a streaming caller
    /// can read at least that much more and retry. Always ≥ 1.
    Truncated {
        /// Additional bytes needed to make decoding progress.
        needed: usize,
    },
    /// A declared tensor shape is implausibly large (corrupt header).
    OversizedTensor {
        /// Declared rows.
        rows: u32,
        /// Declared cols.
        cols: u32,
    },
    /// An enum discriminant byte not defined by this format version.
    UnknownTag(u8),
    /// A structurally impossible declaration (count or index out of range):
    /// the record is corrupt, not truncated — more bytes will not help.
    InvalidRecord(&'static str),
    /// A frame header declared a length beyond the sanity bound.
    OversizedFrame {
        /// Declared frame payload length.
        declared: usize,
    },
    /// The record decoded cleanly but left unconsumed bytes behind. A
    /// record decoder never silently swallows a concatenated next frame —
    /// framing, not guessing, delimits records on a stream.
    TrailingBytes {
        /// Unconsumed bytes after the decoded record.
        extra: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "payload is not an EVFD weight blob"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::Truncated { needed } => {
                write!(f, "payload truncated ({needed} more bytes needed)")
            }
            WireError::OversizedTensor { rows, cols } => {
                write!(f, "tensor of {rows}x{cols} exceeds sanity bounds")
            }
            WireError::UnknownTag(tag) => write!(f, "unknown discriminant byte {tag:#04x}"),
            WireError::InvalidRecord(what) => write!(f, "corrupt record: {what}"),
            WireError::OversizedFrame { declared } => {
                write!(f, "frame of {declared} bytes exceeds the sanity bound")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} unconsumed bytes after the record")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Maximum accepted elements per tensor (64 MiB of f64) — a sanity bound
/// against corrupt headers, far above any model in this workspace.
const MAX_TENSOR_ELEMENTS: u64 = 8 * 1024 * 1024;

/// Encodes a weight vector into the binary wire format.
///
/// # Examples
///
/// ```
/// use evfad_federated::wire;
/// use evfad_tensor::Matrix;
///
/// let weights = vec![Matrix::identity(3)];
/// let blob = wire::encode_weights(&weights);
/// let back = wire::decode_weights(&blob)?;
/// assert_eq!(back, weights);
/// # Ok::<(), evfad_federated::wire::WireError>(())
/// ```
pub fn encode_weights(weights: &[Matrix]) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_size(weights));
    encode_weights_into(&mut buf, weights);
    buf.freeze()
}

/// Encodes a weight vector into `buf`, clearing it first but keeping its
/// allocation — the zero-allocation broadcast path: the round loop encodes
/// the global model **once** per round into a reusable buffer and meters
/// every client by the same byte length.
pub fn encode_weights_into(buf: &mut BytesMut, weights: &[Matrix]) {
    buf.clear();
    buf.put_slice(&MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(weights.len() as u32);
    for m in weights {
        buf.put_u32_le(m.rows() as u32);
        buf.put_u32_le(m.cols() as u32);
        for &v in m.as_slice() {
            buf.put_f64_le(v);
        }
    }
}

/// Decodes a payload produced by [`encode_weights`].
///
/// # Errors
///
/// Returns [`WireError`] on a malformed or truncated payload.
pub fn decode_weights(mut payload: &[u8]) -> Result<Vec<Matrix>, WireError> {
    let count = decode_header(&mut payload, MAGIC)?;
    let mut out = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        need(payload, 8)?;
        let rows = payload.get_u32_le();
        let cols = payload.get_u32_le();
        let elements = check_shape(rows, cols)?;
        need(payload, (elements * 8) as usize)?;
        let mut data = Vec::with_capacity(elements as usize);
        for _ in 0..elements {
            data.push(payload.get_f64_le());
        }
        out.push(Matrix::from_vec(rows as usize, cols as usize, data));
    }
    finish_record(payload)?;
    Ok(out)
}

/// Size in bytes [`encode_weights`] will produce for these weights.
///
/// Pure O(1)-per-tensor shape arithmetic — no allocation, no
/// serialisation; the round loop meters full-precision uplinks with this.
pub fn encoded_size(weights: &[Matrix]) -> usize {
    10 + weights.iter().map(|m| 8 + m.len() * 8).sum::<usize>()
}

/// Encodes a quantized update into the `EVQ8` binary wire format: the
/// common header, then per tensor `rows, cols, min: f64, step: f64,
/// special_count: u32, codes: u8…, specials: (index: u32, value: f64)…`.
///
/// # Examples
///
/// ```
/// use evfad_federated::compression::QuantizedUpdate;
/// use evfad_federated::wire;
/// use evfad_tensor::Matrix;
///
/// let q = QuantizedUpdate::quantize(&[Matrix::identity(4)]);
/// let blob = wire::encode_quantized(&q);
/// assert_eq!(wire::decode_quantized(&blob)?, q);
/// # Ok::<(), evfad_federated::wire::WireError>(())
/// ```
pub fn encode_quantized(update: &QuantizedUpdate) -> Bytes {
    let mut buf = BytesMut::with_capacity(quantized_encoded_size(update));
    encode_quantized_into(&mut buf, update);
    buf.freeze()
}

/// Encodes a quantized update into `buf`, clearing it first but keeping
/// its allocation — the warm-round uplink path: the socket client and the
/// scale engine encode every round into a reusable buffer, so a steady
/// federation allocates nothing per update.
pub fn encode_quantized_into(buf: &mut BytesMut, update: &QuantizedUpdate) {
    buf.clear();
    buf.put_slice(&QUANT_MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(update.tensors.len() as u32);
    for t in &update.tensors {
        buf.put_u32_le(t.rows as u32);
        buf.put_u32_le(t.cols as u32);
        buf.put_f64_le(t.min);
        buf.put_f64_le(t.step);
        buf.put_u32_le(t.special_idx.len() as u32);
        buf.put_slice(&t.codes);
        for (&i, &v) in t.special_idx.iter().zip(&t.special_val) {
            buf.put_u32_le(i);
            buf.put_f64_le(v);
        }
    }
}

/// Size in bytes [`encode_quantized`] will produce — O(1) per tensor.
pub fn quantized_encoded_size(update: &QuantizedUpdate) -> usize {
    10 + update.byte_size()
}

/// Decodes a payload produced by [`encode_quantized`].
///
/// # Errors
///
/// Returns [`WireError`] on a malformed or truncated payload.
pub fn decode_quantized(mut payload: &[u8]) -> Result<QuantizedUpdate, WireError> {
    let count = decode_header(&mut payload, QUANT_MAGIC)?;
    let mut tensors = Vec::with_capacity(count);
    for _ in 0..count {
        need(payload, 28)?;
        let rows = payload.get_u32_le();
        let cols = payload.get_u32_le();
        let elements = check_shape(rows, cols)?;
        let min = payload.get_f64_le();
        let step = payload.get_f64_le();
        let special_count = payload.get_u32_le() as u64;
        if special_count > elements {
            return Err(WireError::InvalidRecord(
                "quantized special count exceeds tensor elements",
            ));
        }
        need(payload, (elements + special_count * 12) as usize)?;
        let mut codes = vec![0u8; elements as usize];
        payload.copy_to_slice(&mut codes);
        let mut special_idx = Vec::with_capacity(special_count as usize);
        let mut special_val = Vec::with_capacity(special_count as usize);
        let mut prev: i64 = -1;
        for _ in 0..special_count {
            let idx = payload.get_u32_le();
            if idx as u64 >= elements {
                return Err(WireError::InvalidRecord(
                    "quantized special index out of range",
                ));
            }
            if i64::from(idx) <= prev {
                return Err(WireError::InvalidRecord(
                    "quantized special indices not strictly ascending",
                ));
            }
            prev = i64::from(idx);
            special_idx.push(idx);
            special_val.push(payload.get_f64_le());
        }
        tensors.push(QuantizedTensor {
            rows: rows as usize,
            cols: cols as usize,
            min,
            step,
            codes,
            special_idx,
            special_val,
        });
    }
    finish_record(payload)?;
    Ok(QuantizedUpdate { tensors })
}

/// Encodes a sparse top-k delta into the `EVSK` binary wire format: the
/// common header, then per tensor `rows, cols, nnz: u32,
/// entries: (index: u32, value: f64)…`.
///
/// # Examples
///
/// ```
/// use evfad_federated::compression::SparseDelta;
/// use evfad_federated::wire;
/// use evfad_tensor::Matrix;
///
/// let base = vec![Matrix::zeros(2, 3)];
/// let update = vec![Matrix::from_fn(2, 3, |i, j| (i + j) as f64)];
/// let d = SparseDelta::top_k(&update, &base, 4);
/// let blob = wire::encode_sparse(&d);
/// assert_eq!(wire::decode_sparse(&blob)?, d);
/// # Ok::<(), evfad_federated::wire::WireError>(())
/// ```
pub fn encode_sparse(delta: &SparseDelta) -> Bytes {
    let mut buf = BytesMut::with_capacity(sparse_encoded_size(delta));
    encode_sparse_into(&mut buf, delta);
    buf.freeze()
}

/// Encodes a sparse delta into `buf`, clearing it first but keeping its
/// allocation (see [`encode_quantized_into`]).
pub fn encode_sparse_into(buf: &mut BytesMut, delta: &SparseDelta) {
    buf.clear();
    buf.put_slice(&SPARSE_MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(delta.tensors.len() as u32);
    for t in &delta.tensors {
        buf.put_u32_le(t.rows as u32);
        buf.put_u32_le(t.cols as u32);
        buf.put_u32_le(t.indices.len() as u32);
        for (&i, &v) in t.indices.iter().zip(&t.values) {
            buf.put_u32_le(i);
            buf.put_f64_le(v);
        }
    }
}

/// Size in bytes [`encode_sparse`] will produce — O(1) per tensor.
pub fn sparse_encoded_size(delta: &SparseDelta) -> usize {
    10 + delta.byte_size()
}

/// Decodes a payload produced by [`encode_sparse`].
///
/// # Errors
///
/// Returns [`WireError`] on a malformed or truncated payload.
pub fn decode_sparse(mut payload: &[u8]) -> Result<SparseDelta, WireError> {
    let count = decode_header(&mut payload, SPARSE_MAGIC)?;
    let mut tensors = Vec::with_capacity(count);
    for _ in 0..count {
        need(payload, 12)?;
        let rows = payload.get_u32_le();
        let cols = payload.get_u32_le();
        let elements = check_shape(rows, cols)?;
        let nnz = payload.get_u32_le() as u64;
        if nnz > elements {
            return Err(WireError::InvalidRecord(
                "sparse nnz exceeds tensor elements",
            ));
        }
        need(payload, (nnz * 12) as usize)?;
        let mut indices = Vec::with_capacity(nnz as usize);
        let mut values = Vec::with_capacity(nnz as usize);
        let mut prev: i64 = -1;
        for _ in 0..nnz {
            let idx = payload.get_u32_le();
            if idx as u64 >= elements {
                return Err(WireError::InvalidRecord("sparse index out of range"));
            }
            if i64::from(idx) <= prev {
                return Err(WireError::InvalidRecord(
                    "sparse indices not strictly ascending",
                ));
            }
            prev = i64::from(idx);
            indices.push(idx);
            values.push(payload.get_f64_le());
        }
        tensors.push(SparseTensor {
            rows: rows as usize,
            cols: cols as usize,
            indices,
            values,
        });
    }
    finish_record(payload)?;
    Ok(SparseDelta { tensors })
}

/// Validates an `EVQ8` payload structurally and returns a zero-copy view
/// over it — the fused decode-into-fold path.
///
/// Every check [`decode_quantized`] performs (header, shape bounds,
/// special counts, index ranges, strictly-ascending special indices,
/// trailing bytes) runs *up front*, before the caller touches any
/// accumulator state: a corrupt payload errors here, never half-way
/// through a fold. The view then iterates infallibly, decoding each
/// coefficient on the fly — no `Vec<Matrix>` materialization, no
/// allocation at all.
///
/// # Errors
///
/// Returns [`WireError`] on a malformed or truncated payload.
///
/// # Examples
///
/// ```
/// use evfad_federated::compression::QuantizedUpdate;
/// use evfad_federated::wire;
/// use evfad_tensor::Matrix;
///
/// let q = QuantizedUpdate::quantize(&[Matrix::identity(3)]);
/// let blob = wire::encode_quantized(&q);
/// let view = wire::quantized_view(&blob)?;
/// let decoded = q.dequantize();
/// for (t, m) in view.tensors().zip(&decoded) {
///     assert_eq!(t.shape(), m.shape());
///     assert!(t.values().zip(m.as_slice()).all(|(a, &b)| a == b));
/// }
/// # Ok::<(), evfad_federated::wire::WireError>(())
/// ```
pub fn quantized_view(payload: &[u8]) -> Result<QuantizedPayloadView<'_>, WireError> {
    let mut cursor = payload;
    let count = decode_header(&mut cursor, QUANT_MAGIC)?;
    let body = cursor;
    let mut walker = QuantWalker {
        payload: body,
        remaining: count,
    };
    while walker.next_tensor()?.is_some() {}
    finish_record(walker.payload)?;
    Ok(QuantizedPayloadView { body, count })
}

/// A structurally validated `EVQ8` payload; see [`quantized_view`].
#[derive(Debug, Clone, Copy)]
pub struct QuantizedPayloadView<'a> {
    body: &'a [u8],
    count: usize,
}

impl<'a> QuantizedPayloadView<'a> {
    /// Number of tensors in the payload.
    pub fn tensor_count(&self) -> usize {
        self.count
    }

    /// Iterates over the tensors. Infallible: the payload was fully
    /// validated by [`quantized_view`].
    pub fn tensors(&self) -> impl Iterator<Item = QuantizedTensorView<'a>> + '_ {
        let mut walker = QuantWalker {
            payload: self.body,
            remaining: self.count,
        };
        std::iter::from_fn(move || walker.next_tensor().expect("pre-validated payload"))
    }
}

/// One tensor of a validated `EVQ8` payload: shape, range, and the raw
/// codes/specials regions it decodes from on the fly.
#[derive(Debug, Clone, Copy)]
pub struct QuantizedTensorView<'a> {
    rows: usize,
    cols: usize,
    range: QuantRange,
    codes: &'a [u8],
    specials: &'a [u8],
}

impl<'a> QuantizedTensorView<'a> {
    /// `(rows, cols)` of the tensor.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of non-finite side records carried verbatim.
    pub fn special_count(&self) -> usize {
        self.specials.len() / 12
    }

    /// The quantization range every code in this tensor decodes against.
    pub fn range(&self) -> QuantRange {
        self.range
    }

    /// The raw row-major code bytes, one per coefficient.
    ///
    /// Together with [`Self::range`] and [`Self::specials`] this exposes
    /// the tensor in bulk form, so hot folds can run tight slice loops
    /// over the runs between specials instead of paying per-coefficient
    /// iterator state (see [`Self::values`] for the element-at-a-time
    /// equivalent).
    pub fn codes(&self) -> &'a [u8] {
        self.codes
    }

    /// Iterates the `(flat index, value)` non-finite side records in the
    /// ascending index order the payload stores them in.
    pub fn specials(&self) -> impl ExactSizeIterator<Item = (usize, f64)> + 'a {
        self.specials.chunks_exact(12).map(|rec| {
            (
                u32::from_le_bytes(rec[..4].try_into().expect("pre-validated payload")) as usize,
                f64::from_le_bytes(rec[4..].try_into().expect("pre-validated payload")),
            )
        })
    }

    /// Iterates the decoded coefficients in row-major order — exactly the
    /// values [`crate::compression::QuantizedTensor::dequantize`] would
    /// materialize, bit for bit: `range.decode(code)` everywhere except at
    /// special indices, which yield the stored f64 verbatim.
    pub fn values(&self) -> QuantizedValues<'a> {
        let mut it = QuantizedValues {
            range: self.range,
            codes: self.codes,
            specials: self.specials,
            flat: 0,
            next_special: u64::MAX,
        };
        it.refresh_next_special();
        it
    }
}

/// Infallible decoding iterator over one quantized tensor's coefficients;
/// see [`QuantizedTensorView::values`].
#[derive(Debug, Clone)]
pub struct QuantizedValues<'a> {
    range: QuantRange,
    codes: &'a [u8],
    specials: &'a [u8],
    flat: usize,
    next_special: u64,
}

impl QuantizedValues<'_> {
    fn refresh_next_special(&mut self) {
        self.next_special = if self.specials.len() >= 4 {
            u64::from(u32::from_le_bytes(
                self.specials[..4]
                    .try_into()
                    .expect("pre-validated payload"),
            ))
        } else {
            u64::MAX
        };
    }
}

impl Iterator for QuantizedValues<'_> {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        let i = self.flat;
        if i >= self.codes.len() {
            return None;
        }
        self.flat += 1;
        if i as u64 == self.next_special {
            let v = f64::from_le_bytes(
                self.specials[4..12]
                    .try_into()
                    .expect("pre-validated payload"),
            );
            self.specials = &self.specials[12..];
            self.refresh_next_special();
            Some(v)
        } else {
            Some(self.range.decode(self.codes[i]))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.codes.len() - self.flat;
        (left, Some(left))
    }
}

impl ExactSizeIterator for QuantizedValues<'_> {}

/// Shared validating walker behind [`quantized_view`]: one pass for the
/// up-front structural check, a fresh pass per [`QuantizedPayloadView::
/// tensors`] call.
struct QuantWalker<'a> {
    payload: &'a [u8],
    remaining: usize,
}

impl<'a> QuantWalker<'a> {
    fn next_tensor(&mut self) -> Result<Option<QuantizedTensorView<'a>>, WireError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        let mut cur = self.payload;
        need(cur, 28)?;
        let rows = cur.get_u32_le();
        let cols = cur.get_u32_le();
        let elements = check_shape(rows, cols)?;
        let min = cur.get_f64_le();
        let step = cur.get_f64_le();
        let special_count = cur.get_u32_le() as u64;
        if special_count > elements {
            return Err(WireError::InvalidRecord(
                "quantized special count exceeds tensor elements",
            ));
        }
        need(cur, (elements + special_count * 12) as usize)?;
        let (codes, cur) = cur.split_at(elements as usize);
        let (specials, rest) = cur.split_at((special_count * 12) as usize);
        let mut walk = specials;
        let mut prev: i64 = -1;
        for _ in 0..special_count {
            let idx = walk.get_u32_le();
            if idx as u64 >= elements {
                return Err(WireError::InvalidRecord(
                    "quantized special index out of range",
                ));
            }
            if i64::from(idx) <= prev {
                return Err(WireError::InvalidRecord(
                    "quantized special indices not strictly ascending",
                ));
            }
            prev = i64::from(idx);
            walk.advance(8);
        }
        self.payload = rest;
        Ok(Some(QuantizedTensorView {
            rows: rows as usize,
            cols: cols as usize,
            range: QuantRange { min, step },
            codes,
            specials,
        }))
    }
}

/// Validates an `EVSK` payload structurally and returns a zero-copy view
/// over it — the sparse twin of [`quantized_view`], with the same
/// contract: every [`decode_sparse`] check runs up front, and the view
/// then iterates `(flat index, delta)` entries infallibly without
/// materializing a [`SparseDelta`].
///
/// # Errors
///
/// Returns [`WireError`] on a malformed or truncated payload.
pub fn sparse_view(payload: &[u8]) -> Result<SparsePayloadView<'_>, WireError> {
    let mut cursor = payload;
    let count = decode_header(&mut cursor, SPARSE_MAGIC)?;
    let body = cursor;
    let mut walker = SparseWalker {
        payload: body,
        remaining: count,
    };
    while walker.next_tensor()?.is_some() {}
    finish_record(walker.payload)?;
    Ok(SparsePayloadView { body, count })
}

/// A structurally validated `EVSK` payload; see [`sparse_view`].
#[derive(Debug, Clone, Copy)]
pub struct SparsePayloadView<'a> {
    body: &'a [u8],
    count: usize,
}

impl<'a> SparsePayloadView<'a> {
    /// Number of tensors in the payload.
    pub fn tensor_count(&self) -> usize {
        self.count
    }

    /// Iterates over the tensors. Infallible: the payload was fully
    /// validated by [`sparse_view`].
    pub fn tensors(&self) -> impl Iterator<Item = SparseTensorView<'a>> + '_ {
        let mut walker = SparseWalker {
            payload: self.body,
            remaining: self.count,
        };
        std::iter::from_fn(move || walker.next_tensor().expect("pre-validated payload"))
    }
}

/// One tensor of a validated `EVSK` payload: shape plus the raw
/// `(index, value)` entry region.
#[derive(Debug, Clone, Copy)]
pub struct SparseTensorView<'a> {
    rows: usize,
    cols: usize,
    entries: &'a [u8],
}

impl<'a> SparseTensorView<'a> {
    /// `(rows, cols)` of the tensor.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of transmitted entries.
    pub fn nnz(&self) -> usize {
        self.entries.len() / 12
    }

    /// Iterates the `(flat index, delta value)` entries in strictly
    /// ascending index order.
    pub fn entries(&self) -> impl ExactSizeIterator<Item = (u32, f64)> + 'a {
        self.entries.chunks_exact(12).map(|rec| {
            let idx = u32::from_le_bytes(rec[..4].try_into().expect("pre-validated payload"));
            let val = f64::from_le_bytes(rec[4..].try_into().expect("pre-validated payload"));
            (idx, val)
        })
    }
}

/// Shared validating walker behind [`sparse_view`].
struct SparseWalker<'a> {
    payload: &'a [u8],
    remaining: usize,
}

impl<'a> SparseWalker<'a> {
    fn next_tensor(&mut self) -> Result<Option<SparseTensorView<'a>>, WireError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        let mut cur = self.payload;
        need(cur, 12)?;
        let rows = cur.get_u32_le();
        let cols = cur.get_u32_le();
        let elements = check_shape(rows, cols)?;
        let nnz = cur.get_u32_le() as u64;
        if nnz > elements {
            return Err(WireError::InvalidRecord(
                "sparse nnz exceeds tensor elements",
            ));
        }
        need(cur, (nnz * 12) as usize)?;
        let (entries, rest) = cur.split_at((nnz * 12) as usize);
        let mut walk = entries;
        let mut prev: i64 = -1;
        for _ in 0..nnz {
            let idx = walk.get_u32_le();
            if idx as u64 >= elements {
                return Err(WireError::InvalidRecord("sparse index out of range"));
            }
            if i64::from(idx) <= prev {
                return Err(WireError::InvalidRecord(
                    "sparse indices not strictly ascending",
                ));
            }
            prev = i64::from(idx);
            walk.advance(8);
        }
        self.payload = rest;
        Ok(Some(SparseTensorView {
            rows: rows as usize,
            cols: cols as usize,
            entries,
        }))
    }
}

/// Validates the common `magic | version | count` header and returns the
/// record count.
fn decode_header(payload: &mut &[u8], magic: [u8; 4]) -> Result<usize, WireError> {
    need(payload, 10)?;
    let mut got = [0u8; 4];
    payload.copy_to_slice(&mut got);
    if got != magic {
        return Err(WireError::BadMagic);
    }
    let version = payload.get_u16_le();
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    Ok(payload.get_u32_le() as usize)
}

/// Rejects implausibly large tensor headers; returns the element count.
fn check_shape(rows: u32, cols: u32) -> Result<u64, WireError> {
    let elements = rows as u64 * cols as u64;
    if elements > MAX_TENSOR_ELEMENTS {
        return Err(WireError::OversizedTensor { rows, cols });
    }
    Ok(elements)
}

fn need(payload: &[u8], n: usize) -> Result<(), WireError> {
    if payload.remaining() < n {
        Err(WireError::Truncated {
            needed: n - payload.remaining(),
        })
    } else {
        Ok(())
    }
}

/// Enforces that a record decoder consumed its input exactly: leftover
/// bytes mean the caller handed us a concatenation, which only framing may
/// delimit (see [`crate::framing`]).
fn finish_record(payload: &[u8]) -> Result<(), WireError> {
    if payload.remaining() > 0 {
        Err(WireError::TrailingBytes {
            extra: payload.remaining(),
        })
    } else {
        Ok(())
    }
}

/// FNV-1a checksum of the binary wire encoding of `weights`.
///
/// Bit-exact by construction ([`encode_weights`] stores raw f64 little-
/// endian bytes), so two weight vectors share a checksum iff every
/// coordinate is bit-identical — the property the golden regression
/// fixture (`tests/fixtures/golden_outcome.json`) pins across PRs.
pub fn weights_checksum(weights: &[Matrix]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in encode_weights(weights).iter() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Maximum accepted events per fault log (sanity bound, far above any
/// simulation in this workspace: rounds × clients × rules).
const MAX_FAULT_EVENTS: u32 = 1 << 24;

// Fault-kind discriminants.
const TAG_DROP_OUT: u8 = 0;
const TAG_STRAGGLER: u8 = 1;
const TAG_CORRUPT: u8 = 2;
const TAG_TRANSIENT: u8 = 3;
// Corruption discriminants.
const TAG_NAN_FLOOD: u8 = 0;
const TAG_SIGN_FLIP: u8 = 1;
const TAG_SCALE: u8 = 2;
// Fault-outcome discriminants.
const TAG_DROPPED: u8 = 0;
const TAG_DELAYED: u8 = 1;
const TAG_TIMED_OUT: u8 = 2;
const TAG_CORRUPTED: u8 = 3;
const TAG_RECOVERED: u8 = 4;
const TAG_EXHAUSTED: u8 = 5;

/// Encodes a fault log into the binary wire format — the telemetry a real
/// deployment would ship alongside round stats so operators can audit
/// which clients misbehaved when.
///
/// # Examples
///
/// ```
/// use evfad_federated::faults::{FaultEvent, FaultKind, FaultOutcome};
/// use evfad_federated::wire;
///
/// let log = vec![FaultEvent {
///     round: 2,
///     client_id: "z105".into(),
///     fault: FaultKind::DropOut,
///     outcome: FaultOutcome::Dropped,
/// }];
/// let blob = wire::encode_fault_log(&log);
/// assert_eq!(wire::decode_fault_log(&blob)?, log);
/// # Ok::<(), evfad_federated::wire::WireError>(())
/// ```
pub fn encode_fault_log(events: &[FaultEvent]) -> Bytes {
    let mut buf = BytesMut::with_capacity(10 + events.len() * 32);
    buf.put_slice(&FAULT_MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(events.len() as u32);
    for e in events {
        buf.put_u32_le(e.round as u32);
        buf.put_u16_le(e.client_id.len() as u16);
        buf.put_slice(e.client_id.as_bytes());
        encode_fault_kind(&mut buf, e.fault);
        match e.outcome {
            FaultOutcome::Dropped => buf.put_u8(TAG_DROPPED),
            FaultOutcome::Delayed { delay_seconds } => {
                buf.put_u8(TAG_DELAYED);
                buf.put_f64_le(delay_seconds);
            }
            FaultOutcome::TimedOut {
                delay_seconds,
                timeout_seconds,
            } => {
                buf.put_u8(TAG_TIMED_OUT);
                buf.put_f64_le(delay_seconds);
                buf.put_f64_le(timeout_seconds);
            }
            FaultOutcome::Corrupted => buf.put_u8(TAG_CORRUPTED),
            FaultOutcome::Recovered {
                failed_attempts,
                backoff_seconds,
            } => {
                buf.put_u8(TAG_RECOVERED);
                buf.put_u32_le(failed_attempts as u32);
                buf.put_f64_le(backoff_seconds);
            }
            FaultOutcome::RetriesExhausted { failed_attempts } => {
                buf.put_u8(TAG_EXHAUSTED);
                buf.put_u32_le(failed_attempts as u32);
            }
        }
    }
    buf.freeze()
}

/// Decodes a payload produced by [`encode_fault_log`].
///
/// # Errors
///
/// Returns [`WireError`] on a malformed, truncated, or unknown-tag
/// payload.
pub fn decode_fault_log(mut payload: &[u8]) -> Result<Vec<FaultEvent>, WireError> {
    let count = decode_header(&mut payload, FAULT_MAGIC)?;
    if count as u64 > u64::from(MAX_FAULT_EVENTS) {
        return Err(WireError::InvalidRecord(
            "fault log count exceeds sanity bound",
        ));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        need(payload, 6)?;
        let round = payload.get_u32_le() as usize;
        let id_len = payload.get_u16_le() as usize;
        let client_id = decode_str(&mut payload, id_len)?;
        let fault = decode_fault_kind(&mut payload)?;
        need(payload, 1)?;
        let outcome = match payload.get_u8() {
            TAG_DROPPED => FaultOutcome::Dropped,
            TAG_DELAYED => {
                need(payload, 8)?;
                FaultOutcome::Delayed {
                    delay_seconds: payload.get_f64_le(),
                }
            }
            TAG_TIMED_OUT => {
                need(payload, 16)?;
                FaultOutcome::TimedOut {
                    delay_seconds: payload.get_f64_le(),
                    timeout_seconds: payload.get_f64_le(),
                }
            }
            TAG_CORRUPTED => FaultOutcome::Corrupted,
            TAG_RECOVERED => {
                need(payload, 12)?;
                FaultOutcome::Recovered {
                    failed_attempts: payload.get_u32_le() as usize,
                    backoff_seconds: payload.get_f64_le(),
                }
            }
            TAG_EXHAUSTED => {
                need(payload, 4)?;
                FaultOutcome::RetriesExhausted {
                    failed_attempts: payload.get_u32_le() as usize,
                }
            }
            tag => return Err(WireError::UnknownTag(tag)),
        };
        out.push(FaultEvent {
            round,
            client_id,
            fault,
            outcome,
        });
    }
    finish_record(payload)?;
    Ok(out)
}

/// Appends the tagged binary encoding of one fault kind — shared by the
/// `EVFL` fault-log record and the `EVMS` envelope's train directive, so a
/// fault crosses the socket in exactly the bytes the log archives.
fn encode_fault_kind(buf: &mut BytesMut, fault: FaultKind) {
    match fault {
        FaultKind::DropOut => buf.put_u8(TAG_DROP_OUT),
        FaultKind::Straggler { delay_seconds } => {
            buf.put_u8(TAG_STRAGGLER);
            buf.put_f64_le(delay_seconds);
        }
        FaultKind::Corrupt { corruption } => {
            buf.put_u8(TAG_CORRUPT);
            match corruption {
                Corruption::NanFlood => buf.put_u8(TAG_NAN_FLOOD),
                Corruption::SignFlip => buf.put_u8(TAG_SIGN_FLIP),
                Corruption::Scale { factor } => {
                    buf.put_u8(TAG_SCALE);
                    buf.put_f64_le(factor);
                }
            }
        }
        FaultKind::Transient { failures } => {
            buf.put_u8(TAG_TRANSIENT);
            buf.put_u32_le(failures as u32);
        }
    }
}

/// Decodes one tagged fault kind (inverse of [`encode_fault_kind`]).
fn decode_fault_kind(payload: &mut &[u8]) -> Result<FaultKind, WireError> {
    need(payload, 1)?;
    Ok(match payload.get_u8() {
        TAG_DROP_OUT => FaultKind::DropOut,
        TAG_STRAGGLER => {
            need(payload, 8)?;
            FaultKind::Straggler {
                delay_seconds: payload.get_f64_le(),
            }
        }
        TAG_CORRUPT => {
            need(payload, 1)?;
            let corruption = match payload.get_u8() {
                TAG_NAN_FLOOD => Corruption::NanFlood,
                TAG_SIGN_FLIP => Corruption::SignFlip,
                TAG_SCALE => {
                    need(payload, 8)?;
                    Corruption::Scale {
                        factor: payload.get_f64_le(),
                    }
                }
                tag => return Err(WireError::UnknownTag(tag)),
            };
            FaultKind::Corrupt { corruption }
        }
        TAG_TRANSIENT => {
            need(payload, 4)?;
            FaultKind::Transient {
                failures: payload.get_u32_le() as usize,
            }
        }
        tag => return Err(WireError::UnknownTag(tag)),
    })
}

/// Reads a length-`len` UTF-8 string.
fn decode_str(payload: &mut &[u8], len: usize) -> Result<String, WireError> {
    need(payload, len)?;
    let mut bytes = vec![0u8; len];
    payload.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| WireError::InvalidRecord("string is not UTF-8"))
}

/// Format magic for the binary run-configuration record (`"EVCF"`).
const CONFIG_MAGIC: [u8; 4] = *b"EVCF";

// Aggregator discriminants (EVCF).
const TAG_AGG_FED_AVG: u8 = 0;
const TAG_AGG_MEDIAN: u8 = 1;
const TAG_AGG_TRIMMED_MEAN: u8 = 2;
const TAG_AGG_KRUM: u8 = 3;
// Round-selector discriminants (EVCF).
const TAG_SEL_EVERY: u8 = 0;
const TAG_SEL_ONLY: u8 = 1;
const TAG_SEL_FROM: u8 = 2;
const TAG_SEL_PROBABILITY: u8 = 3;
// Compression-mode discriminants (EVCF).
const TAG_COMP_NONE: u8 = 0;
const TAG_COMP_QUANT8: u8 = 1;
const TAG_COMP_TOP_K: u8 = 2;

/// Encodes a [`FederatedConfig`] as a self-describing `EVCF` binary
/// record — the socket handshake's `Welcome.config` blob, replacing the
/// JSON the handshake used to carry so the whole protocol speaks one
/// codec.
///
/// # Examples
///
/// ```
/// use evfad_federated::{wire, FederatedConfig};
///
/// let cfg = FederatedConfig::default();
/// let blob = wire::encode_config(&cfg);
/// assert_eq!(wire::decode_config(&blob)?, cfg);
/// # Ok::<(), evfad_federated::wire::WireError>(())
/// ```
pub fn encode_config(config: &FederatedConfig) -> Bytes {
    let mut buf = BytesMut::with_capacity(128);
    buf.put_slice(&CONFIG_MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(config.rounds as u32);
    buf.put_u32_le(config.epochs_per_round as u32);
    buf.put_u32_le(config.batch_size as u32);
    match config.aggregator {
        Aggregator::FedAvg => buf.put_u8(TAG_AGG_FED_AVG),
        Aggregator::Median => buf.put_u8(TAG_AGG_MEDIAN),
        Aggregator::TrimmedMean { trim } => {
            buf.put_u8(TAG_AGG_TRIMMED_MEAN);
            buf.put_u32_le(trim as u32);
        }
        Aggregator::Krum { byzantine } => {
            buf.put_u8(TAG_AGG_KRUM);
            buf.put_u32_le(byzantine as u32);
        }
    }
    buf.put_u8(u8::from(config.parallel));
    buf.put_u32_le(config.threads as u32);
    match config.dp {
        None => buf.put_u8(0),
        Some(dp) => {
            buf.put_u8(1);
            buf.put_f64_le(dp.clip_norm);
            buf.put_f64_le(dp.noise_multiplier);
        }
    }
    buf.put_f64_le(config.proximal_mu);
    buf.put_f64_le(config.participation);
    buf.put_u64_le(config.sampling_seed);
    match &config.faults {
        None => buf.put_u8(0),
        Some(plan) => {
            buf.put_u8(1);
            encode_fault_plan(&mut buf, plan);
        }
    }
    match config.compression {
        CompressionMode::None => buf.put_u8(TAG_COMP_NONE),
        CompressionMode::Quant8 => buf.put_u8(TAG_COMP_QUANT8),
        CompressionMode::TopKDelta { k } => {
            buf.put_u8(TAG_COMP_TOP_K);
            buf.put_u32_le(k as u32);
        }
    }
    buf.freeze()
}

/// Decodes an `EVCF` record (inverse of [`encode_config`]). Strict: the
/// payload must contain exactly one record.
///
/// # Errors
///
/// Returns [`WireError`] on a malformed or truncated payload.
pub fn decode_config(mut payload: &[u8]) -> Result<FederatedConfig, WireError> {
    let payload = &mut payload;
    need(payload, 6)?;
    let mut got = [0u8; 4];
    payload.copy_to_slice(&mut got);
    if got != CONFIG_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = payload.get_u16_le();
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    need(payload, 12)?;
    let rounds = payload.get_u32_le() as usize;
    let epochs_per_round = payload.get_u32_le() as usize;
    let batch_size = payload.get_u32_le() as usize;
    need(payload, 1)?;
    let aggregator = match payload.get_u8() {
        TAG_AGG_FED_AVG => Aggregator::FedAvg,
        TAG_AGG_MEDIAN => Aggregator::Median,
        TAG_AGG_TRIMMED_MEAN => {
            need(payload, 4)?;
            Aggregator::TrimmedMean {
                trim: payload.get_u32_le() as usize,
            }
        }
        TAG_AGG_KRUM => {
            need(payload, 4)?;
            Aggregator::Krum {
                byzantine: payload.get_u32_le() as usize,
            }
        }
        tag => return Err(WireError::UnknownTag(tag)),
    };
    need(payload, 5)?;
    let parallel = match payload.get_u8() {
        0 => false,
        1 => true,
        tag => return Err(WireError::UnknownTag(tag)),
    };
    let threads = payload.get_u32_le() as usize;
    need(payload, 1)?;
    let dp = match payload.get_u8() {
        0 => None,
        1 => {
            need(payload, 16)?;
            Some(DpConfig {
                clip_norm: payload.get_f64_le(),
                noise_multiplier: payload.get_f64_le(),
            })
        }
        tag => return Err(WireError::UnknownTag(tag)),
    };
    need(payload, 24)?;
    let proximal_mu = payload.get_f64_le();
    let participation = payload.get_f64_le();
    let sampling_seed = payload.get_u64_le();
    need(payload, 1)?;
    let faults = match payload.get_u8() {
        0 => None,
        1 => Some(decode_fault_plan(payload)?),
        tag => return Err(WireError::UnknownTag(tag)),
    };
    need(payload, 1)?;
    let compression = match payload.get_u8() {
        TAG_COMP_NONE => CompressionMode::None,
        TAG_COMP_QUANT8 => CompressionMode::Quant8,
        TAG_COMP_TOP_K => {
            need(payload, 4)?;
            CompressionMode::TopKDelta {
                k: payload.get_u32_le() as usize,
            }
        }
        tag => return Err(WireError::UnknownTag(tag)),
    };
    finish_record(payload)?;
    Ok(FederatedConfig {
        rounds,
        epochs_per_round,
        batch_size,
        aggregator,
        parallel,
        threads,
        dp,
        proximal_mu,
        participation,
        sampling_seed,
        faults,
        compression,
    })
}

/// Appends the binary encoding of one fault plan (`EVCF` sub-record).
fn encode_fault_plan(buf: &mut BytesMut, plan: &FaultPlan) {
    buf.put_u64_le(plan.seed);
    buf.put_u32_le(plan.rules.len() as u32);
    for rule in &plan.rules {
        put_short_str(buf, &rule.client);
        match rule.rounds {
            RoundSelector::Every => buf.put_u8(TAG_SEL_EVERY),
            RoundSelector::Only { round } => {
                buf.put_u8(TAG_SEL_ONLY);
                buf.put_u32_le(round as u32);
            }
            RoundSelector::From { round } => {
                buf.put_u8(TAG_SEL_FROM);
                buf.put_u32_le(round as u32);
            }
            RoundSelector::Probability { p } => {
                buf.put_u8(TAG_SEL_PROBABILITY);
                buf.put_f64_le(p);
            }
        }
        encode_fault_kind(buf, rule.fault);
    }
    match plan.round_timeout_seconds {
        None => buf.put_u8(0),
        Some(t) => {
            buf.put_u8(1);
            buf.put_f64_le(t);
        }
    }
    buf.put_u32_le(plan.retry_budget as u32);
    buf.put_f64_le(plan.backoff_base_seconds);
    buf.put_u32_le(plan.min_participants as u32);
}

/// Decodes one fault plan (inverse of [`encode_fault_plan`]).
fn decode_fault_plan(payload: &mut &[u8]) -> Result<FaultPlan, WireError> {
    need(payload, 12)?;
    let seed = payload.get_u64_le();
    let rule_count = payload.get_u32_le();
    if rule_count > MAX_FAULT_EVENTS {
        return Err(WireError::InvalidRecord("implausible fault rule count"));
    }
    let mut rules = Vec::with_capacity(rule_count as usize);
    for _ in 0..rule_count {
        let client = decode_short_str(payload)?;
        need(payload, 1)?;
        let rounds = match payload.get_u8() {
            TAG_SEL_EVERY => RoundSelector::Every,
            TAG_SEL_ONLY => {
                need(payload, 4)?;
                RoundSelector::Only {
                    round: payload.get_u32_le() as usize,
                }
            }
            TAG_SEL_FROM => {
                need(payload, 4)?;
                RoundSelector::From {
                    round: payload.get_u32_le() as usize,
                }
            }
            TAG_SEL_PROBABILITY => {
                need(payload, 8)?;
                RoundSelector::Probability {
                    p: payload.get_f64_le(),
                }
            }
            tag => return Err(WireError::UnknownTag(tag)),
        };
        let fault = decode_fault_kind(payload)?;
        rules.push(FaultRule {
            client,
            rounds,
            fault,
        });
    }
    need(payload, 1)?;
    let round_timeout_seconds = match payload.get_u8() {
        0 => None,
        1 => {
            need(payload, 8)?;
            Some(payload.get_f64_le())
        }
        tag => return Err(WireError::UnknownTag(tag)),
    };
    need(payload, 16)?;
    Ok(FaultPlan {
        seed,
        rules,
        round_timeout_seconds,
        retry_budget: payload.get_u32_le() as usize,
        backoff_base_seconds: payload.get_f64_le(),
        min_participants: payload.get_u32_le() as usize,
    })
}

/// Format magic for socket envelope messages (`"EVMS"`).
pub const MESSAGE_MAGIC: [u8; 4] = *b"EVMS";

// Envelope message discriminants.
const TAG_HELLO: u8 = 0;
const TAG_WELCOME: u8 = 1;
const TAG_BROADCAST: u8 = 2;
const TAG_TRAIN_REQUEST: u8 = 3;
const TAG_UPDATE: u8 = 4;
const TAG_ACK: u8 = 5;
const TAG_DONE: u8 = 6;
const TAG_ABORT: u8 = 7;

/// Maximum accepted embedded blob length (matches the frame sanity bound
/// in [`crate::framing`]): a corrupt length field fails fast instead of
/// asking the decoder for gigabytes.
const MAX_BLOB_BYTES: u32 = 256 << 20;

/// One message of the socket protocol (`EVMS` envelope). The heavy fields
/// (`global`, `payload`) carry already-encoded `EVFD`/`EVQ8`/`EVSK`
/// records verbatim, so the envelope adds framing without re-encoding —
/// what the server meters is exactly `payload.len()`.
///
/// The round trip is driven by [`encode_message`]/[`decode_message`]; see
/// [`crate::socket`] for who sends what when.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client → server: first message on the control connection.
    Hello {
        /// The connecting client's roster id.
        client_id: String,
    },
    /// Server → client: handshake reply carrying the run configuration as
    /// an `EVCF` blob (see [`encode_config`] — the handshake speaks the
    /// same binary codec as the round loop) and the shared initial global
    /// weights as an `EVFD` blob.
    Welcome {
        /// `EVCF`-encoded [`crate::FederatedConfig`].
        config: Bytes,
        /// `EVFD`-encoded initial global weights.
        init_global: Bytes,
    },
    /// Server → client: the per-round global model broadcast (`EVFD`).
    Broadcast {
        /// Zero-based round index.
        round: u32,
        /// `EVFD`-encoded global weights.
        global: Bytes,
    },
    /// Server → client: train this round, optionally under an injected
    /// fault the client must enact (corrupt before upload, delay, fail
    /// uploads). Sent only to sampled, non-dropped-out clients.
    TrainRequest {
        /// Zero-based round index.
        round: u32,
        /// Fault directive from the server's [`crate::faults::FaultPlan`].
        fault: Option<FaultKind>,
    },
    /// Client → server: one upload attempt of a trained update. Sent on a
    /// fresh connection per attempt so a server-side nack is a real
    /// connection loss.
    Update {
        /// Zero-based round index.
        round: u32,
        /// Uploading client's roster id.
        client_id: String,
        /// Local sample count (FedAvg weighting).
        sample_count: u64,
        /// Final local training loss.
        train_loss: f64,
        /// The encoded update: `EVFD`, `EVQ8`, or `EVSK` per the run's
        /// [`crate::CompressionMode`].
        payload: Bytes,
    },
    /// Server → client: the upload attempt was accepted.
    Ack {
        /// Round being acknowledged.
        round: u32,
    },
    /// Server → client: the run finished; carries the final global
    /// weights (`EVFD`).
    Done {
        /// `EVFD`-encoded final global weights.
        global: Bytes,
    },
    /// Server → client: the run failed; carries the error message.
    Abort {
        /// Human-readable failure description.
        message: String,
    },
}

fn put_blob(buf: &mut BytesMut, blob: &[u8]) {
    buf.put_u32_le(blob.len() as u32);
    buf.put_slice(blob);
}

fn decode_blob(payload: &mut &[u8]) -> Result<Bytes, WireError> {
    need(payload, 4)?;
    let len = payload.get_u32_le() as usize;
    if len > MAX_BLOB_BYTES as usize {
        return Err(WireError::OversizedFrame { declared: len });
    }
    need(payload, len)?;
    let blob = Bytes::copy_from_slice(&payload[..len]);
    payload.advance(len);
    Ok(blob)
}

fn put_short_str(buf: &mut BytesMut, s: &str) {
    buf.put_u16_le(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn decode_short_str(payload: &mut &[u8]) -> Result<String, WireError> {
    need(payload, 2)?;
    let len = payload.get_u16_le() as usize;
    decode_str(payload, len)
}

/// Encodes one envelope message into `buf`, clearing it first but keeping
/// its allocation. Layout: `"EVMS" | version: u16 | tag: u8 | body`.
pub fn encode_message(buf: &mut BytesMut, msg: &Message) {
    buf.clear();
    buf.put_slice(&MESSAGE_MAGIC);
    buf.put_u16_le(VERSION);
    match msg {
        Message::Hello { client_id } => {
            buf.put_u8(TAG_HELLO);
            put_short_str(buf, client_id);
        }
        Message::Welcome {
            config,
            init_global,
        } => {
            buf.put_u8(TAG_WELCOME);
            put_blob(buf, config);
            put_blob(buf, init_global);
        }
        Message::Broadcast { round, global } => {
            buf.put_u8(TAG_BROADCAST);
            buf.put_u32_le(*round);
            put_blob(buf, global);
        }
        Message::TrainRequest { round, fault } => {
            buf.put_u8(TAG_TRAIN_REQUEST);
            buf.put_u32_le(*round);
            match fault {
                None => buf.put_u8(0),
                Some(f) => {
                    buf.put_u8(1);
                    encode_fault_kind(buf, *f);
                }
            }
        }
        Message::Update {
            round,
            client_id,
            sample_count,
            train_loss,
            payload,
        } => {
            buf.put_u8(TAG_UPDATE);
            buf.put_u32_le(*round);
            put_short_str(buf, client_id);
            buf.put_u64_le(*sample_count);
            buf.put_f64_le(*train_loss);
            put_blob(buf, payload);
        }
        Message::Ack { round } => {
            buf.put_u8(TAG_ACK);
            buf.put_u32_le(*round);
        }
        Message::Done { global } => {
            buf.put_u8(TAG_DONE);
            put_blob(buf, global);
        }
        Message::Abort { message } => {
            buf.put_u8(TAG_ABORT);
            put_blob(buf, message.as_bytes());
        }
    }
}

/// Decodes one envelope message (inverse of [`encode_message`]). Strict:
/// the payload must contain exactly one message — a frame carries one
/// envelope, so trailing bytes are a protocol error, not a next message.
///
/// # Errors
///
/// Returns [`WireError`] on a malformed, truncated, unknown-tag, or
/// trailing-bytes payload. [`WireError::Truncated::needed`] names the
/// additional bytes required, so a streamed caller can keep reading.
pub fn decode_message(mut payload: &[u8]) -> Result<Message, WireError> {
    let payload = &mut payload;
    need(payload, 7)?;
    let mut got = [0u8; 4];
    payload.copy_to_slice(&mut got);
    if got != MESSAGE_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = payload.get_u16_le();
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let msg = match payload.get_u8() {
        TAG_HELLO => Message::Hello {
            client_id: decode_short_str(payload)?,
        },
        TAG_WELCOME => Message::Welcome {
            config: decode_blob(payload)?,
            init_global: decode_blob(payload)?,
        },
        TAG_BROADCAST => {
            need(payload, 4)?;
            Message::Broadcast {
                round: payload.get_u32_le(),
                global: decode_blob(payload)?,
            }
        }
        TAG_TRAIN_REQUEST => {
            need(payload, 5)?;
            let round = payload.get_u32_le();
            let fault = match payload.get_u8() {
                0 => None,
                1 => Some(decode_fault_kind(payload)?),
                tag => return Err(WireError::UnknownTag(tag)),
            };
            Message::TrainRequest { round, fault }
        }
        TAG_UPDATE => {
            need(payload, 4)?;
            let round = payload.get_u32_le();
            let client_id = decode_short_str(payload)?;
            need(payload, 16)?;
            Message::Update {
                round,
                client_id,
                sample_count: payload.get_u64_le(),
                train_loss: payload.get_f64_le(),
                payload: decode_blob(payload)?,
            }
        }
        TAG_ACK => {
            need(payload, 4)?;
            Message::Ack {
                round: payload.get_u32_le(),
            }
        }
        TAG_DONE => Message::Done {
            global: decode_blob(payload)?,
        },
        TAG_ABORT => {
            let blob = decode_blob(payload)?;
            Message::Abort {
                message: String::from_utf8(blob.to_vec())
                    .map_err(|_| WireError::InvalidRecord("abort message is not UTF-8"))?,
            }
        }
        tag => return Err(WireError::UnknownTag(tag)),
    };
    finish_record(payload)?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_weights() -> Vec<Matrix> {
        vec![
            Matrix::from_fn(5, 7, |i, j| (i as f64) - 0.37 * j as f64),
            Matrix::row_vector(&[1.0, -2.5, f64::MIN_POSITIVE, 1e300]),
        ]
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let w = sample_weights();
        let blob = encode_weights(&w);
        assert_eq!(decode_weights(&blob).unwrap(), w);
    }

    #[test]
    fn encoded_size_matches() {
        let w = sample_weights();
        assert_eq!(encode_weights(&w).len(), encoded_size(&w));
    }

    #[test]
    fn rejects_bad_magic() {
        let mut blob = encode_weights(&sample_weights()).to_vec();
        blob[0] = b'X';
        assert_eq!(decode_weights(&blob), Err(WireError::BadMagic));
    }

    #[test]
    fn rejects_bad_version() {
        let mut blob = encode_weights(&sample_weights()).to_vec();
        blob[4] = 99;
        assert!(matches!(
            decode_weights(&blob),
            Err(WireError::BadVersion(_))
        ));
    }

    /// Decodes ever-longer prefixes of `blob`, extending each failed
    /// attempt by exactly the reported `needed` bytes, and asserts the
    /// walk lands precisely on a successful decode at `blob.len()` — the
    /// contract a streaming reader relies on: `needed` is never an
    /// overshoot and always makes progress.
    fn assert_needed_walk<T, F: Fn(&[u8]) -> Result<T, WireError>>(blob: &[u8], decode: F) {
        let mut have = 0usize;
        loop {
            match decode(&blob[..have]) {
                Ok(_) => {
                    assert_eq!(have, blob.len(), "decode succeeded before the full record");
                    return;
                }
                Err(WireError::Truncated { needed }) => {
                    assert!(needed >= 1, "needed must make progress at {have}");
                    assert!(
                        have + needed <= blob.len(),
                        "needed overshoots: {have} + {needed} > {}",
                        blob.len()
                    );
                    have += needed;
                }
                Err(other) => panic!("prefix of {have} bytes gave {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let blob = encode_weights(&sample_weights());
        for cut in 0..blob.len() {
            match decode_weights(&blob[..cut]) {
                Err(WireError::Truncated { needed }) => {
                    assert!(needed >= 1 && cut + needed <= blob.len(), "cut {cut}");
                }
                other => panic!("cut at {cut} gave {other:?}"),
            }
        }
    }

    #[test]
    fn truncation_needed_walks_to_exact_completion() {
        assert_needed_walk(&encode_weights(&sample_weights()), decode_weights);
        assert_needed_walk(&encode_weights(&[]), decode_weights);
        let q = QuantizedUpdate::quantize(&sample_weights());
        assert_needed_walk(&encode_quantized(&q), decode_quantized);
        let base = sample_weights();
        let mut update = base.clone();
        update[0].as_mut_slice()[5] += 1.5;
        let d = SparseDelta::top_k(&update, &base, 8);
        assert_needed_walk(&encode_sparse(&d), decode_sparse);
        assert_needed_walk(&encode_fault_log(&sample_fault_log()), decode_fault_log);
    }

    #[test]
    fn concatenated_records_are_never_silently_swallowed() {
        // Two records back to back: decoding the pair as one must fail
        // with the exact surplus, never return the first record as if the
        // second did not exist. Framing, not the record codec, splits a
        // stream.
        let one = encode_weights(&sample_weights());
        let mut two = one.to_vec();
        two.extend_from_slice(&one);
        assert_eq!(
            decode_weights(&two),
            Err(WireError::TrailingBytes { extra: one.len() })
        );
        let log = encode_fault_log(&sample_fault_log());
        let mut pair = log.to_vec();
        pair.extend_from_slice(&log);
        assert_eq!(
            decode_fault_log(&pair),
            Err(WireError::TrailingBytes { extra: log.len() })
        );
    }

    #[test]
    fn rejects_oversized_header() {
        let mut buf = bytes::BytesMut::new();
        buf.put_slice(&MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u32_le(1);
        buf.put_u32_le(u32::MAX);
        buf.put_u32_le(u32::MAX);
        assert!(matches!(
            decode_weights(&buf),
            Err(WireError::OversizedTensor { .. })
        ));
    }

    #[test]
    fn empty_weight_list_round_trips() {
        let blob = encode_weights(&[]);
        assert_eq!(decode_weights(&blob).unwrap(), Vec::<Matrix>::new());
    }

    #[test]
    fn binary_is_smaller_than_json() {
        let w = vec![Matrix::from_fn(51, 200, |i, j| (i * j) as f64 * 1e-4)];
        let binary = encode_weights(&w).len();
        let json = serde_json::to_vec(&w).unwrap().len();
        assert!(binary < json, "binary {binary} vs json {json}");
    }

    fn sample_fault_log() -> Vec<FaultEvent> {
        vec![
            FaultEvent {
                round: 0,
                client_id: "z102".into(),
                fault: FaultKind::DropOut,
                outcome: FaultOutcome::Dropped,
            },
            FaultEvent {
                round: 1,
                client_id: "z105".into(),
                fault: FaultKind::Straggler {
                    delay_seconds: 42.5,
                },
                outcome: FaultOutcome::TimedOut {
                    delay_seconds: 42.5,
                    timeout_seconds: 30.0,
                },
            },
            FaultEvent {
                round: 1,
                client_id: "z108".into(),
                fault: FaultKind::Corrupt {
                    corruption: Corruption::Scale { factor: -2.25 },
                },
                outcome: FaultOutcome::Corrupted,
            },
            FaultEvent {
                round: 2,
                client_id: "z111".into(),
                fault: FaultKind::Transient { failures: 2 },
                outcome: FaultOutcome::Recovered {
                    failed_attempts: 2,
                    backoff_seconds: 3.0,
                },
            },
            FaultEvent {
                round: 3,
                client_id: "z114".into(),
                fault: FaultKind::Transient { failures: 9 },
                outcome: FaultOutcome::RetriesExhausted { failed_attempts: 3 },
            },
            FaultEvent {
                round: 4,
                client_id: "z117".into(),
                fault: FaultKind::Corrupt {
                    corruption: Corruption::NanFlood,
                },
                outcome: FaultOutcome::Delayed { delay_seconds: 1.5 },
            },
        ]
    }

    #[test]
    fn fault_log_round_trips() {
        let log = sample_fault_log();
        let blob = encode_fault_log(&log);
        assert_eq!(decode_fault_log(&blob).unwrap(), log);
    }

    #[test]
    fn empty_fault_log_round_trips() {
        let blob = encode_fault_log(&[]);
        assert_eq!(decode_fault_log(&blob).unwrap(), Vec::<FaultEvent>::new());
    }

    #[test]
    fn fault_log_rejects_weight_magic_and_vice_versa() {
        let weights = encode_weights(&sample_weights());
        assert_eq!(decode_fault_log(&weights), Err(WireError::BadMagic));
        let log = encode_fault_log(&sample_fault_log());
        assert_eq!(decode_weights(&log), Err(WireError::BadMagic));
    }

    #[test]
    fn fault_log_rejects_truncation_everywhere() {
        let blob = encode_fault_log(&sample_fault_log());
        for cut in 0..blob.len() {
            let err = decode_fault_log(&blob[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated { .. } | WireError::UnknownTag(_)),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn fault_log_rejects_unknown_tags() {
        let mut blob = encode_fault_log(&sample_fault_log()[..1]).to_vec();
        let tag_at = blob.len() - 2; // fault tag of the single DropOut event
        blob[tag_at] = 250;
        assert_eq!(decode_fault_log(&blob), Err(WireError::UnknownTag(250)));
    }

    #[test]
    fn checksum_is_sensitive_to_single_bit_flips() {
        let w = sample_weights();
        let base = weights_checksum(&w);
        assert_eq!(base, weights_checksum(&w), "deterministic");
        let mut flipped = w.clone();
        let v = flipped[0].as_slice()[0];
        flipped[0].as_mut_slice()[0] = f64::from_bits(v.to_bits() ^ 1);
        assert_ne!(base, weights_checksum(&flipped));
    }

    #[test]
    fn model_weights_survive_the_wire() {
        use evfad_nn::forecaster_model;
        let mut model = forecaster_model(8, 3);
        let blob = encode_weights(&model.weights());
        let restored = decode_weights(&blob).unwrap();
        model.set_weights(&restored).expect("same shapes");
    }

    #[test]
    fn encode_into_reuses_the_buffer_and_matches_encode() {
        let w = sample_weights();
        let mut buf = BytesMut::with_capacity(encoded_size(&w));
        encode_weights_into(&mut buf, &w);
        assert_eq!(&buf[..], &encode_weights(&w)[..]);
        // A second encode into the same buffer replaces, not appends.
        encode_weights_into(&mut buf, &w);
        assert_eq!(buf.len(), encoded_size(&w));
    }

    #[test]
    fn quantized_round_trips_and_size_matches() {
        let q = QuantizedUpdate::quantize(&sample_weights());
        let blob = encode_quantized(&q);
        assert_eq!(blob.len(), quantized_encoded_size(&q));
        let back = decode_quantized(&blob).unwrap();
        assert_eq!(back, q);
        // Re-encode idempotence: decoding loses nothing.
        assert_eq!(&encode_quantized(&back)[..], &blob[..]);
    }

    /// Pinned byte fixture for the `EVQ8` blob: the quantize math now
    /// lives in the shared `evfad_tensor::quant` helper (also used by the
    /// int8 inference lane), and this fixture proves the refactor — and
    /// any future change to the shared fold — leaves the wire format
    /// byte-for-byte unchanged.
    #[test]
    fn quantized_encoding_matches_pinned_byte_fixture() {
        let w = vec![
            Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64 * 0.5 - 1.0),
            Matrix::from_rows(&[vec![4.25, f64::NAN, -0.75]]),
        ];
        let q = QuantizedUpdate::quantize(&w);
        let blob = encode_quantized(&q);
        let hex: String = blob.iter().map(|b| format!("{b:02x}")).collect();
        assert_eq!(
            hex,
            concat!(
                // magic "EVQ8", version 1, tensor count 2
                "45565138",
                "0100",
                "02000000",
                // tensor 0: 2x3, min -1.0, step 2.5/255, no specials,
                // codes 0,51,102,153,204,255
                "02000000",
                "03000000",
                "000000000000f0bf",
                "141414141414843f",
                "00000000",
                "00336699ccff",
                // tensor 1: 1x3, min -0.75, step 5/255, one special,
                // codes 255,0,0, special (idx 1, NaN)
                "01000000",
                "03000000",
                "000000000000e8bf",
                "141414141414943f",
                "01000000",
                "ff0000",
                "01000000",
                "000000000000f87f",
            )
        );
        // And the round trip re-encodes to the identical bytes.
        let back = decode_quantized(&blob).unwrap();
        assert_eq!(&encode_quantized(&back)[..], &blob[..]);
    }

    #[test]
    fn quantized_with_nan_specials_round_trips() {
        let mut w = sample_weights();
        w[0].as_mut_slice()[3] = f64::NAN;
        w[0].as_mut_slice()[9] = f64::INFINITY;
        let q = QuantizedUpdate::quantize(&w);
        let back = decode_quantized(&encode_quantized(&q)).unwrap();
        let deq = back.dequantize();
        assert!(deq[0].as_slice()[3].is_nan());
        assert_eq!(deq[0].as_slice()[9], f64::INFINITY);
    }

    #[test]
    fn sparse_round_trips_and_size_matches() {
        let base = sample_weights();
        let mut update = base.clone();
        update[0].as_mut_slice()[5] += 1.5;
        update[1].as_mut_slice()[0] -= 0.25;
        let d = SparseDelta::top_k(&update, &base, 8);
        let blob = encode_sparse(&d);
        assert_eq!(blob.len(), sparse_encoded_size(&d));
        let back = decode_sparse(&blob).unwrap();
        assert_eq!(back, d);
        assert_eq!(&encode_sparse(&back)[..], &blob[..]);
    }

    #[test]
    fn compressed_formats_reject_each_others_magic() {
        let q = QuantizedUpdate::quantize(&sample_weights());
        let qblob = encode_quantized(&q);
        assert_eq!(decode_sparse(&qblob), Err(WireError::BadMagic));
        assert_eq!(decode_weights(&qblob), Err(WireError::BadMagic));
        let base = sample_weights();
        let d = SparseDelta::top_k(&base, &base, 4);
        let sblob = encode_sparse(&d);
        assert_eq!(decode_quantized(&sblob), Err(WireError::BadMagic));
        assert_eq!(decode_fault_log(&sblob), Err(WireError::BadMagic));
    }

    #[test]
    fn quantized_rejects_truncation_everywhere() {
        let q = QuantizedUpdate::quantize(&sample_weights());
        let blob = encode_quantized(&q);
        for cut in 0..blob.len() {
            assert!(
                matches!(
                    decode_quantized(&blob[..cut]),
                    Err(WireError::Truncated { .. })
                ),
                "cut at {cut} not detected"
            );
        }
    }

    #[test]
    fn sparse_rejects_truncation_everywhere() {
        let base = sample_weights();
        let mut update = base.clone();
        for m in update.iter_mut() {
            for v in m.as_mut_slice() {
                *v += 0.125;
            }
        }
        let d = SparseDelta::top_k(&update, &base, 6);
        let blob = encode_sparse(&d);
        for cut in 0..blob.len() {
            assert!(
                matches!(
                    decode_sparse(&blob[..cut]),
                    Err(WireError::Truncated { .. })
                ),
                "cut at {cut} not detected"
            );
        }
    }

    #[test]
    fn quantized_rejects_out_of_range_special_index() {
        let mut w = sample_weights();
        w[0].as_mut_slice()[0] = f64::NAN;
        let q = QuantizedUpdate::quantize(&w);
        let mut blob = encode_quantized(&q).to_vec();
        // First tensor: header(10) + rows/cols(8) + min/step(16) +
        // special_count(4) + codes, then the first special index.
        let idx_at = 10 + 8 + 16 + 4 + q.tensors[0].codes.len();
        blob[idx_at..idx_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_quantized(&blob),
            Err(WireError::InvalidRecord(_))
        ));
    }

    #[test]
    fn version_is_shared_across_formats() {
        let q = QuantizedUpdate::quantize(&sample_weights());
        let mut blob = encode_quantized(&q).to_vec();
        blob[4] = 77;
        assert!(matches!(
            decode_quantized(&blob),
            Err(WireError::BadVersion(77))
        ));
    }

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Hello {
                client_id: "z105".into(),
            },
            Message::Welcome {
                config: encode_config(&FederatedConfig::default()),
                init_global: encode_weights(&sample_weights()),
            },
            Message::Broadcast {
                round: 2,
                global: encode_weights(&sample_weights()),
            },
            Message::TrainRequest {
                round: 0,
                fault: None,
            },
            Message::TrainRequest {
                round: 1,
                fault: Some(FaultKind::Transient { failures: 2 }),
            },
            Message::TrainRequest {
                round: 4,
                fault: Some(FaultKind::Corrupt {
                    corruption: Corruption::Scale { factor: -2.5 },
                }),
            },
            Message::Update {
                round: 3,
                client_id: "z108".into(),
                sample_count: 32,
                train_loss: 0.0123,
                payload: encode_weights(&sample_weights()),
            },
            Message::Ack { round: 3 },
            Message::Done {
                global: encode_weights(&sample_weights()),
            },
            Message::Abort {
                message: "round 1 starved".into(),
            },
        ]
    }

    #[test]
    fn every_message_round_trips() {
        let mut buf = BytesMut::new();
        for msg in sample_messages() {
            encode_message(&mut buf, &msg);
            assert_eq!(decode_message(&buf).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn every_message_split_at_every_offset_reports_needed_bytes() {
        let mut buf = BytesMut::new();
        for msg in sample_messages() {
            encode_message(&mut buf, &msg);
            let blob = buf.clone().freeze();
            for cut in 0..blob.len() {
                match decode_message(&blob[..cut]) {
                    Err(WireError::Truncated { needed }) => {
                        assert!(
                            needed >= 1 && cut + needed <= blob.len(),
                            "{msg:?} cut {cut} needed {needed}"
                        );
                    }
                    other => panic!("{msg:?} cut at {cut} gave {other:?}"),
                }
            }
            assert_needed_walk(&blob, decode_message);
        }
    }

    #[test]
    fn message_rejects_trailing_and_foreign_magic() {
        let mut buf = BytesMut::new();
        encode_message(&mut buf, &Message::Ack { round: 1 });
        let mut padded = buf.to_vec();
        padded.push(0);
        assert_eq!(
            decode_message(&padded),
            Err(WireError::TrailingBytes { extra: 1 })
        );
        let weights = encode_weights(&sample_weights());
        assert_eq!(decode_message(&weights), Err(WireError::BadMagic));
        buf[4] = 9;
        assert!(matches!(
            decode_message(&buf),
            Err(WireError::BadVersion(9))
        ));
    }

    #[test]
    fn message_rejects_unknown_tags() {
        let mut buf = BytesMut::new();
        encode_message(&mut buf, &Message::Ack { round: 1 });
        buf[6] = 200;
        assert_eq!(decode_message(&buf), Err(WireError::UnknownTag(200)));
    }

    #[test]
    fn quantized_view_yields_exactly_the_dequantized_values() {
        let mut w = sample_weights();
        w[0].as_mut_slice()[3] = f64::NAN;
        w[0].as_mut_slice()[9] = f64::INFINITY;
        w[1].as_mut_slice()[2] = f64::NEG_INFINITY;
        let q = QuantizedUpdate::quantize(&w);
        let blob = encode_quantized(&q);
        let view = quantized_view(&blob).unwrap();
        let decoded = q.dequantize();
        assert_eq!(view.tensor_count(), decoded.len());
        for (t, m) in view.tensors().zip(&decoded) {
            assert_eq!(t.shape(), m.shape());
            assert_eq!(t.values().len(), m.len());
            for (a, &b) in t.values().zip(m.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        assert_eq!(view.tensors().map(|t| t.special_count()).sum::<usize>(), 3);
    }

    #[test]
    fn sparse_view_yields_exactly_the_decoded_entries() {
        let base = sample_weights();
        let mut update = sample_weights();
        update[0].as_mut_slice()[5] += 2.0;
        update[0].as_mut_slice()[11] = f64::NAN;
        update[1].as_mut_slice()[0] -= 0.5;
        let d = SparseDelta::top_k(&update, &base, 4);
        let blob = encode_sparse(&d);
        let view = sparse_view(&blob).unwrap();
        assert_eq!(view.tensor_count(), d.tensors.len());
        for (t, dt) in view.tensors().zip(&d.tensors) {
            assert_eq!(t.shape(), (dt.rows, dt.cols));
            assert_eq!(t.nnz(), dt.indices.len());
            for ((idx, val), (&di, &dv)) in t.entries().zip(dt.indices.iter().zip(&dt.values)) {
                assert_eq!(idx, di);
                assert_eq!(val.to_bits(), dv.to_bits());
            }
        }
    }

    #[test]
    fn views_reject_everything_the_decoders_reject() {
        let mut w = sample_weights();
        w[0].as_mut_slice()[0] = f64::NAN;
        let q = QuantizedUpdate::quantize(&w);
        let q_blob = encode_quantized(&q);
        let base = [Matrix::zeros(5, 7), Matrix::zeros(1, 4)];
        let d = SparseDelta::top_k(&sample_weights(), &base, 4);
        let s_blob = encode_sparse(&d);
        // Truncation at every cut reports the same error class as the
        // decoder, and never mutates caller state (views have none).
        for cut in 0..q_blob.len() {
            assert_eq!(
                quantized_view(&q_blob[..cut]).err().is_some(),
                decode_quantized(&q_blob[..cut]).err().is_some()
            );
        }
        for cut in 0..s_blob.len() {
            assert_eq!(
                sparse_view(&s_blob[..cut]).err().is_some(),
                decode_sparse(&s_blob[..cut]).err().is_some()
            );
        }
        // Trailing garbage.
        let mut padded = q_blob.to_vec();
        padded.push(7);
        assert_eq!(
            quantized_view(&padded).err(),
            Some(WireError::TrailingBytes { extra: 1 })
        );
        // Out-of-range special index.
        let mut corrupt = q_blob.to_vec();
        let idx_at = 10 + 8 + 16 + 4 + q.tensors[0].codes.len();
        corrupt[idx_at..idx_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            quantized_view(&corrupt),
            Err(WireError::InvalidRecord(_))
        ));
    }

    #[test]
    fn non_ascending_indices_are_rejected_by_decoders_and_views() {
        let mut w = sample_weights();
        w[0].as_mut_slice()[0] = f64::NAN;
        w[0].as_mut_slice()[1] = f64::NAN;
        let q = QuantizedUpdate::quantize(&w);
        assert_eq!(q.tensors[0].special_idx, vec![0, 1]);
        let mut blob = encode_quantized(&q).to_vec();
        // Swap the two special records: indices become [1, 0].
        let at = 10 + 8 + 16 + 4 + q.tensors[0].codes.len();
        let (a, b) = (at, at + 12);
        let mut swapped = blob.clone();
        swapped[a..a + 12].copy_from_slice(&blob[b..b + 12]);
        swapped[b..b + 12].copy_from_slice(&blob[a..a + 12]);
        assert_eq!(
            decode_quantized(&swapped),
            Err(WireError::InvalidRecord(
                "quantized special indices not strictly ascending"
            ))
        );
        assert!(quantized_view(&swapped).is_err());
        // A duplicated index is just as dead.
        blob[b..b + 4].copy_from_slice(&0u32.to_le_bytes());
        assert!(decode_quantized(&blob).is_err());

        let base = vec![Matrix::zeros(2, 3)];
        let update = vec![Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64 + 1.0)];
        let d = SparseDelta::top_k(&update, &base, 3);
        let mut s_blob = encode_sparse(&d).to_vec();
        // Swap the first two entries of the first tensor.
        let at = 10 + 12;
        let tmp = s_blob[at..at + 12].to_vec();
        let next = s_blob[at + 12..at + 24].to_vec();
        s_blob[at..at + 12].copy_from_slice(&next);
        s_blob[at + 12..at + 24].copy_from_slice(&tmp);
        assert_eq!(
            decode_sparse(&s_blob),
            Err(WireError::InvalidRecord(
                "sparse indices not strictly ascending"
            ))
        );
        assert!(sparse_view(&s_blob).is_err());
    }

    #[test]
    fn config_round_trips_through_the_binary_codec() {
        let mut cfg = FederatedConfig {
            rounds: 7,
            epochs_per_round: 3,
            batch_size: 16,
            aggregator: Aggregator::TrimmedMean { trim: 2 },
            parallel: false,
            threads: 3,
            dp: Some(DpConfig {
                clip_norm: 1.5,
                noise_multiplier: 0.25,
            }),
            proximal_mu: 0.01,
            participation: 0.6,
            sampling_seed: 42,
            faults: None,
            compression: CompressionMode::TopKDelta { k: 128 },
        };
        assert_eq!(decode_config(&encode_config(&cfg)).unwrap(), cfg);

        cfg.faults = Some(
            FaultPlan::new(9)
                .with_rule("z102", RoundSelector::Only { round: 1 }, FaultKind::DropOut)
                .with_rule(
                    "z105",
                    RoundSelector::Every,
                    FaultKind::Straggler { delay_seconds: 3.0 },
                )
                .with_rule(
                    "z108",
                    RoundSelector::From { round: 2 },
                    FaultKind::Corrupt {
                        corruption: Corruption::NanFlood,
                    },
                )
                .with_rule(
                    "z103",
                    RoundSelector::Probability { p: 0.5 },
                    FaultKind::Corrupt {
                        corruption: Corruption::Scale { factor: -4.0 },
                    },
                )
                .with_rule(
                    "z104",
                    RoundSelector::Every,
                    FaultKind::Transient { failures: 2 },
                )
                .with_timeout(30.0)
                .with_retry(5, 0.5)
                .with_min_participants(2),
        );
        cfg.aggregator = Aggregator::Krum { byzantine: 1 };
        cfg.compression = CompressionMode::Quant8;
        assert_eq!(decode_config(&encode_config(&cfg)).unwrap(), cfg);

        assert_eq!(
            decode_config(&encode_config(&FederatedConfig::default())).unwrap(),
            FederatedConfig::default()
        );
    }

    #[test]
    fn config_codec_rejects_corruption() {
        let blob = encode_config(&FederatedConfig::default());
        let mut bad = blob.to_vec();
        bad[0] = b'X';
        assert_eq!(decode_config(&bad), Err(WireError::BadMagic));
        let mut padded = blob.to_vec();
        padded.push(0);
        assert_eq!(
            decode_config(&padded),
            Err(WireError::TrailingBytes { extra: 1 })
        );
        assert_needed_walk(&blob, decode_config);
    }

    #[test]
    fn update_payload_crosses_the_envelope_verbatim() {
        // The envelope must not re-encode the inner record: the metered
        // bytes are exactly the payload the client produced.
        let inner = encode_weights(&sample_weights());
        let msg = Message::Update {
            round: 0,
            client_id: "z102".into(),
            sample_count: 7,
            train_loss: 1.5,
            payload: inner.clone(),
        };
        let mut buf = BytesMut::new();
        encode_message(&mut buf, &msg);
        match decode_message(&buf).unwrap() {
            Message::Update { payload, .. } => {
                assert_eq!(&payload[..], &inner[..]);
                assert_eq!(decode_weights(&payload).unwrap(), sample_weights());
            }
            other => panic!("decoded {other:?}"),
        }
    }
}
