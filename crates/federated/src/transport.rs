//! Communication accounting for weight exchange.
//!
//! The paper's privacy argument rests on "only model parameters were
//! exchanged between clients". This module makes that exchange explicit: a
//! [`MeteredChannel`] serialises every payload, so experiments can report
//! how many bytes a federation round costs versus shipping raw data.

use evfad_tensor::Matrix;
use parking_lot::Mutex;
use serde::Serialize;
use std::sync::Arc;

/// Byte counters for one direction of traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficTotals {
    /// Number of payloads sent (including re-sends).
    pub messages: usize,
    /// Total serialised bytes.
    pub bytes: usize,
    /// Payloads that were *re*-sends: retry attempts after a transient
    /// upload failure (see [`crate::faults::FaultKind::Transient`]). Each
    /// retry is also counted in `messages`/`bytes` — the payload crossed
    /// the channel — so `messages - retries` is the first-attempt count.
    pub retries: usize,
}

/// A thread-safe channel meter.
///
/// # Examples
///
/// ```
/// use evfad_federated::transport::MeteredChannel;
/// use evfad_tensor::Matrix;
///
/// let channel = MeteredChannel::new();
/// channel.record(&vec![Matrix::zeros(10, 10)]);
/// assert_eq!(channel.totals().messages, 1);
/// assert!(channel.totals().bytes > 100);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MeteredChannel {
    totals: Arc<Mutex<TrafficTotals>>,
}

impl MeteredChannel {
    /// Creates a channel with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one payload, measured by its serialised size.
    pub fn record<T: Serialize>(&self, payload: &T) {
        let bytes = serde_json::to_vec(payload).map(|v| v.len()).unwrap_or(0);
        let mut t = self.totals.lock();
        t.messages += 1;
        t.bytes += bytes;
    }

    /// Records one payload sent `attempts` times (an initial attempt plus
    /// `attempts - 1` retries). Every attempt crosses the channel, so each
    /// one is metered in full; the extra attempts are also tallied in
    /// [`TrafficTotals::retries`]. `attempts == 0` records nothing.
    pub fn record_attempts<T: Serialize>(&self, payload: &T, attempts: usize) {
        if attempts == 0 {
            return;
        }
        let bytes = serde_json::to_vec(payload).map(|v| v.len()).unwrap_or(0);
        let mut t = self.totals.lock();
        t.messages += attempts;
        t.bytes += bytes * attempts;
        t.retries += attempts - 1;
    }

    /// Current counters.
    pub fn totals(&self) -> TrafficTotals {
        *self.totals.lock()
    }

    /// Resets the counters to zero.
    pub fn reset(&self) {
        *self.totals.lock() = TrafficTotals::default();
    }
}

/// Serialised size in bytes of a weight vector (one model update).
pub fn update_size_bytes(weights: &[Matrix]) -> usize {
    serde_json::to_vec(weights).map(|v| v.len()).unwrap_or(0)
}

/// Serialised size in bytes of a raw data series — what a *centralized*
/// architecture would have to ship instead of weights.
pub fn series_size_bytes(series: &[f64]) -> usize {
    serde_json::to_vec(series).map(|v| v.len()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let ch = MeteredChannel::new();
        ch.record(&vec![1.0, 2.0, 3.0]);
        ch.record(&"hello");
        let t = ch.totals();
        assert_eq!(t.messages, 2);
        assert!(t.bytes > 10);
    }

    #[test]
    fn reset_zeroes() {
        let ch = MeteredChannel::new();
        ch.record(&42u32);
        ch.reset();
        assert_eq!(ch.totals(), TrafficTotals::default());
    }

    #[test]
    fn clones_share_counters() {
        let ch = MeteredChannel::new();
        let clone = ch.clone();
        clone.record(&1u8);
        assert_eq!(ch.totals().messages, 1);
    }

    #[test]
    fn works_across_threads() {
        let ch = MeteredChannel::new();
        crossbeam::thread::scope(|s| {
            for _ in 0..4 {
                let local = ch.clone();
                s.spawn(move |_| {
                    for _ in 0..10 {
                        local.record(&[0.0f64; 8]);
                    }
                });
            }
        })
        .expect("threads");
        assert_eq!(ch.totals().messages, 40);
    }

    #[test]
    fn record_attempts_meters_every_attempt() {
        let ch = MeteredChannel::new();
        ch.record(&[1.0f64; 4]);
        let single = ch.totals();
        ch.reset();
        ch.record_attempts(&[1.0f64; 4], 3);
        let tripled = ch.totals();
        assert_eq!(tripled.messages, 3);
        assert_eq!(tripled.bytes, 3 * single.bytes);
        assert_eq!(tripled.retries, 2);
    }

    #[test]
    fn record_attempts_zero_is_a_no_op() {
        let ch = MeteredChannel::new();
        ch.record_attempts(&42u8, 0);
        assert_eq!(ch.totals(), TrafficTotals::default());
    }

    #[test]
    fn plain_record_never_counts_retries() {
        let ch = MeteredChannel::new();
        ch.record(&1u8);
        ch.record(&2u8);
        assert_eq!(ch.totals().retries, 0);
    }

    #[test]
    fn weight_updates_are_smaller_than_long_series() {
        // A small model's weights vs a season of hourly data per client.
        let weights = vec![Matrix::zeros(10, 10), Matrix::zeros(1, 10)];
        let series = vec![123.456f64; 50_000];
        assert!(update_size_bytes(&weights) < series_size_bytes(&series));
    }
}
