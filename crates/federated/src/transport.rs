//! Communication accounting for weight exchange.
//!
//! The paper's privacy argument rests on "only model parameters were
//! exchanged between clients". This module makes that exchange explicit: a
//! [`MeteredChannel`] counts every payload, so experiments can report how
//! many bytes a federation round costs versus shipping raw data.
//!
//! Since PR 5 the round loop meters **binary wire bytes** (see
//! [`wire`](crate::wire)) through the O(1) [`MeteredChannel::record_bytes`]
//! / [`MeteredChannel::record_attempts_bytes`] entry points — the broadcast
//! is encoded once per round and every uplink is measured by the exact
//! byte length of the payload that crossed the channel, with zero JSON
//! serialisation anywhere in the loop. The serialising
//! [`MeteredChannel::record`] / [`MeteredChannel::record_attempts`] remain
//! as the legacy JSON accounting that `bench_comms` races against.

use evfad_tensor::Matrix;
use parking_lot::Mutex;
use serde::Serialize;
use std::sync::Arc;

/// Byte counters for one direction of traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficTotals {
    /// Number of payloads sent (including re-sends).
    pub messages: usize,
    /// Total payload bytes.
    pub bytes: usize,
    /// Payloads that were *re*-sends: retry attempts after a transient
    /// upload failure (see [`crate::faults::FaultKind::Transient`]). Each
    /// retry is also counted in `messages`/`bytes` — the payload crossed
    /// the channel — so `messages - retries` is the first-attempt count.
    pub retries: usize,
}

/// A thread-safe channel meter.
///
/// # Examples
///
/// ```
/// use evfad_federated::transport::MeteredChannel;
/// use evfad_federated::wire;
/// use evfad_tensor::Matrix;
///
/// let weights = vec![Matrix::zeros(10, 10)];
/// let channel = MeteredChannel::new();
/// channel.record_bytes(wire::encoded_size(&weights));
/// assert_eq!(channel.totals().messages, 1);
/// assert!(channel.totals().bytes > 100);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MeteredChannel {
    totals: Arc<Mutex<TrafficTotals>>,
}

impl MeteredChannel {
    /// Creates a channel with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one payload of `bytes` length — O(1), no serialisation.
    /// The caller supplies the length of the payload that actually crossed
    /// the channel (an encoded blob's `len()`, or exact size arithmetic
    /// like [`wire::encoded_size`](crate::wire::encoded_size)).
    pub fn record_bytes(&self, bytes: usize) {
        let mut t = self.totals.lock();
        t.messages += 1;
        t.bytes += bytes;
    }

    /// Records one payload of `bytes` length sent `attempts` times (an
    /// initial attempt plus `attempts - 1` retries). Every attempt crosses
    /// the channel, so each one is metered in full; the extra attempts are
    /// also tallied in [`TrafficTotals::retries`]. `attempts == 0` records
    /// nothing. O(1), no serialisation.
    pub fn record_attempts_bytes(&self, bytes: usize, attempts: usize) {
        if attempts == 0 {
            return;
        }
        let mut t = self.totals.lock();
        t.messages += attempts;
        t.bytes += bytes * attempts;
        t.retries += attempts - 1;
    }

    /// Records one payload, measured by its serialised JSON size.
    ///
    /// Legacy path: serialises the entire payload just to count bytes.
    /// The round loop no longer calls this — it meters wire bytes via
    /// [`MeteredChannel::record_bytes`]; `bench_comms` keeps this method
    /// honest as the baseline it races.
    pub fn record<T: Serialize + ?Sized>(&self, payload: &T) {
        let bytes = serde_json::to_vec(payload).map(|v| v.len()).unwrap_or(0);
        self.record_bytes(bytes);
    }

    /// Records one payload sent `attempts` times, measured by its
    /// serialised JSON size (legacy path; see [`MeteredChannel::record`]).
    pub fn record_attempts<T: Serialize + ?Sized>(&self, payload: &T, attempts: usize) {
        if attempts == 0 {
            return;
        }
        let bytes = serde_json::to_vec(payload).map(|v| v.len()).unwrap_or(0);
        self.record_attempts_bytes(bytes, attempts);
    }

    /// Current counters.
    pub fn totals(&self) -> TrafficTotals {
        *self.totals.lock()
    }

    /// Resets the counters to zero.
    pub fn reset(&self) {
        *self.totals.lock() = TrafficTotals::default();
    }
}

/// Wire size in bytes of a weight vector (one full-precision model
/// update) — O(1) shape arithmetic over [`wire::encoded_size`], no
/// allocation, no serialisation.
///
/// [`wire::encoded_size`]: crate::wire::encoded_size
pub fn update_size_bytes(weights: &[Matrix]) -> usize {
    crate::wire::encoded_size(weights)
}

/// Wire size in bytes of a raw data series — what a *centralized*
/// architecture would have to ship instead of weights, priced in the same
/// binary wire format (one `len × 1` tensor: header plus 8 bytes per
/// point). O(1).
pub fn series_size_bytes(series: &[f64]) -> usize {
    10 + 8 + series.len() * 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let ch = MeteredChannel::new();
        ch.record(&vec![1.0, 2.0, 3.0]);
        ch.record(&"hello");
        let t = ch.totals();
        assert_eq!(t.messages, 2);
        assert!(t.bytes > 10);
    }

    #[test]
    fn record_bytes_is_exact() {
        let ch = MeteredChannel::new();
        ch.record_bytes(123);
        ch.record_bytes(77);
        let t = ch.totals();
        assert_eq!(t.messages, 2);
        assert_eq!(t.bytes, 200);
        assert_eq!(t.retries, 0);
    }

    #[test]
    fn record_matches_json_size() {
        // The legacy path must still measure the real serialised payload.
        let payload = vec![1.5f64, -2.25, 1e300];
        let ch = MeteredChannel::new();
        ch.record(&payload);
        assert_eq!(
            ch.totals().bytes,
            serde_json::to_vec(&payload).unwrap().len()
        );
    }

    #[test]
    fn reset_zeroes() {
        let ch = MeteredChannel::new();
        ch.record(&42u32);
        ch.reset();
        assert_eq!(ch.totals(), TrafficTotals::default());
    }

    #[test]
    fn clones_share_counters() {
        let ch = MeteredChannel::new();
        let clone = ch.clone();
        clone.record(&1u8);
        assert_eq!(ch.totals().messages, 1);
    }

    #[test]
    fn works_across_threads() {
        let ch = MeteredChannel::new();
        crossbeam::thread::scope(|s| {
            for _ in 0..4 {
                let local = ch.clone();
                s.spawn(move |_| {
                    for _ in 0..10 {
                        local.record_bytes(64);
                    }
                });
            }
        })
        .expect("threads");
        assert_eq!(ch.totals().messages, 40);
        assert_eq!(ch.totals().bytes, 40 * 64);
    }

    #[test]
    fn record_attempts_bytes_meters_every_attempt() {
        let ch = MeteredChannel::new();
        ch.record_attempts_bytes(100, 3);
        let t = ch.totals();
        assert_eq!(t.messages, 3);
        assert_eq!(t.bytes, 300);
        assert_eq!(t.retries, 2);
    }

    #[test]
    fn record_attempts_meters_every_attempt() {
        let ch = MeteredChannel::new();
        ch.record(&[1.0f64; 4]);
        let single = ch.totals();
        ch.reset();
        ch.record_attempts(&[1.0f64; 4], 3);
        let tripled = ch.totals();
        assert_eq!(tripled.messages, 3);
        assert_eq!(tripled.bytes, 3 * single.bytes);
        assert_eq!(tripled.retries, 2);
    }

    #[test]
    fn record_attempts_zero_is_a_no_op() {
        let ch = MeteredChannel::new();
        ch.record_attempts(&42u8, 0);
        ch.record_attempts_bytes(64, 0);
        assert_eq!(ch.totals(), TrafficTotals::default());
    }

    #[test]
    fn plain_record_never_counts_retries() {
        let ch = MeteredChannel::new();
        ch.record(&1u8);
        ch.record_bytes(8);
        assert_eq!(ch.totals().retries, 0);
    }

    #[test]
    fn update_size_is_the_wire_encoding_size() {
        let weights = vec![Matrix::zeros(10, 10), Matrix::zeros(1, 10)];
        assert_eq!(
            update_size_bytes(&weights),
            crate::wire::encode_weights(&weights).len()
        );
    }

    #[test]
    fn series_size_is_the_wire_encoding_size() {
        // Priced as one column tensor in the EVFD format.
        let series = vec![1.25f64; 500];
        let as_tensor = vec![Matrix::column_vector(&series)];
        assert_eq!(
            series_size_bytes(&series),
            crate::wire::encode_weights(&as_tensor).len()
        );
    }

    #[test]
    fn weight_updates_are_smaller_than_long_series() {
        // A small model's weights vs a season of hourly data per client.
        let weights = vec![Matrix::zeros(10, 10), Matrix::zeros(1, 10)];
        let series = vec![123.456f64; 50_000];
        assert!(update_size_bytes(&weights) < series_size_bytes(&series));
    }
}
