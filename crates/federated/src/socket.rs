//! TCP transport for the federated protocol: the federation over real
//! sockets.
//!
//! Three layers, bottom up:
//!
//! * [`SocketTransport`] — a listener with an accept thread and one
//!   reader thread per connection. Readers reassemble length-prefixed
//!   frames (see [`framing`](crate::framing)) from arbitrary read
//!   fragmentation, decode each into a [`Message`], and feed a single
//!   [`mpsc`] event queue the server drains. Writes go through a shared
//!   writer map so the server can send (and deliberately *kill*)
//!   connections from the round loop.
//! * [`SocketServer`] — binds, admits the expected clients
//!   (`Hello`/`Welcome` handshake), then drives the **same**
//!   [`engine`](crate::engine) round loop as the in-process simulation
//!   through a socket-backed pool. Every protocol decision — sampling,
//!   fault admission, disposition, metering, the `min_participants`
//!   floor, aggregation — executes in the shared engine, which is why
//!   the socket run's digest is byte-identical to
//!   [`FederatedSimulation`](crate::FederatedSimulation) for the same
//!   seed and config (the loopback suite pins it).
//! * [`SocketClient`] — connects, trains when asked, and uploads each
//!   update over a *fresh* connection per attempt with real
//!   exponential-backoff retries. Faults are acted out, not flagged:
//!   a straggler sleeps, a corrupt client corrupts its own payload
//!   before encoding, and a transient failure is a connection the
//!   server really closes mid-upload, which the client really retries.
//!
//! # Determinism
//!
//! Arrival order over TCP is nondeterministic, so nothing protocol-
//! visible may depend on it. The engine samples participants and decides
//! faults serially by client id *before* requesting training; the pool
//! collects uploads keyed by client id and hands them back in admission
//! order; metering counts protocol payload bytes (frame and envelope
//! overhead excluded), which the client produces with the same encoders
//! the in-process path meters arithmetically. Connection-loss faults are
//! scheduled from the same [`FaultPlan`] on both paths: the server knows
//! a client's planned `Transient { failures }` and closes exactly that
//! many of its upload connections before acknowledging (or all of them,
//! when the plan exceeds the retry budget) — the client's honest retry
//! loop then reproduces the simulated attempt count on the wire.

use crate::client::{FedClient, LocalUpdate};
use crate::compression::{CodecScratch, CompressionMode, QuantizedUpdate, SparseDelta};
use crate::engine::{self, PoolUpdate, RoundPool};
use crate::error::FederatedError;
use crate::faults::FaultKind;
use crate::framing::{write_frame, FrameDecoder};
use crate::simulation::{FederatedConfig, FederatedOutcome};
use crate::transport::MeteredChannel;
use crate::wire::{self, Message};
use bytes::{Bytes, BytesMut};
use evfad_nn::{Sample, Sequential, TrainConfig};
use evfad_tensor::Matrix;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn transport_err(context: &str, detail: impl std::fmt::Display) -> FederatedError {
    FederatedError::Transport {
        message: format!("{context}: {detail}"),
    }
}

/// What the event queue delivers to whoever drains the transport.
#[derive(Debug)]
pub enum TransportEvent {
    /// A decoded protocol message from connection `0`'s peer.
    Message(u64, Message),
    /// The connection closed (peer hangup, server kill, or a framing /
    /// decode error, which poisons the stream beyond recovery).
    Disconnected(u64),
}

/// Listener + per-connection reader threads feeding one event queue.
///
/// Connections are identified by a monotonically increasing `u64`. The
/// transport does not know which connection belongs to which client —
/// the protocol layer learns that from `Hello` / `Update` messages.
#[derive(Debug)]
pub struct SocketTransport {
    local_addr: SocketAddr,
    events: Receiver<TransportEvent>,
    writers: Arc<Mutex<HashMap<u64, TcpStream>>>,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    reader_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    scratch: BytesMut,
}

impl SocketTransport {
    /// Binds a listener and starts accepting connections immediately —
    /// clients may connect (and their `Hello`s queue) before the server
    /// starts draining events, so startup order cannot race.
    ///
    /// # Errors
    ///
    /// [`FederatedError::Transport`] if the bind fails.
    pub fn bind(addr: impl ToSocketAddrs) -> Result<Self, FederatedError> {
        let listener = TcpListener::bind(addr).map_err(|e| transport_err("bind", e))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| transport_err("local_addr", e))?;
        let (tx, events) = mpsc::channel();
        let writers: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let reader_handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_handle = {
            let writers = Arc::clone(&writers);
            let stop = Arc::clone(&stop);
            let reader_handles = Arc::clone(&reader_handles);
            std::thread::spawn(move || {
                let mut next_id = 0u64;
                loop {
                    let (stream, _) = match listener.accept() {
                        Ok(pair) => pair,
                        Err(_) => {
                            if stop.load(Ordering::SeqCst) {
                                break;
                            }
                            continue;
                        }
                    };
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let id = next_id;
                    next_id += 1;
                    let Ok(write_half) = stream.try_clone() else {
                        continue;
                    };
                    writers.lock().insert(id, write_half);
                    let tx = tx.clone();
                    let writers = Arc::clone(&writers);
                    let handle = std::thread::spawn(move || run_reader(stream, id, &tx, &writers));
                    reader_handles.lock().push(handle);
                }
            })
        };

        Ok(Self {
            local_addr,
            events,
            writers,
            stop,
            accept_handle: Some(accept_handle),
            reader_handles,
            scratch: BytesMut::new(),
        })
    }

    /// The bound address (with the OS-assigned port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Sends one framed message on a connection.
    ///
    /// The envelope is encoded into the transport's pooled scratch buffer
    /// and shipped with a vectored header+payload write — no per-send
    /// framed buffer is ever assembled (warm sends allocate nothing).
    ///
    /// # Errors
    ///
    /// [`FederatedError::Transport`] when the connection is gone or the
    /// write fails.
    pub fn send(&mut self, conn: u64, msg: &Message) -> Result<(), FederatedError> {
        wire::encode_message(&mut self.scratch, msg);
        let mut writers = self.writers.lock();
        let stream = writers
            .get_mut(&conn)
            .ok_or_else(|| transport_err("send", format!("connection {conn} is gone")))?;
        write_frame(stream, &self.scratch).map_err(|e| transport_err("send", e))
    }

    /// Forcibly closes a connection **without** any farewell message —
    /// from the peer's side this is a connection lost mid-exchange. The
    /// reader thread observes the shutdown and emits
    /// [`TransportEvent::Disconnected`].
    pub fn kill(&self, conn: u64) {
        if let Some(stream) = self.writers.lock().remove(&conn) {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    /// Blocks for the next event, up to `timeout`.
    ///
    /// # Errors
    ///
    /// [`FederatedError::Transport`] on timeout or when the transport
    /// threads have all exited.
    pub fn recv(&self, timeout: Duration) -> Result<TransportEvent, FederatedError> {
        self.events.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => {
                transport_err("recv", format!("no event within {timeout:?}"))
            }
            RecvTimeoutError::Disconnected => transport_err("recv", "transport stopped"),
        })
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        // Shut every live connection so reader threads hit EOF.
        for (_, stream) in self.writers.lock().drain() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        for handle in self.reader_handles.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

/// Per-connection reader: socket bytes → frames → messages → events.
/// Any framing or decode error poisons the stream (there is no
/// resynchronisation point in a length-prefixed protocol), so the
/// connection is dropped.
fn run_reader(
    mut stream: TcpStream,
    id: u64,
    tx: &Sender<TransportEvent>,
    writers: &Mutex<HashMap<u64, TcpStream>>,
) {
    let mut buf = [0u8; 4096];
    let mut decoder = FrameDecoder::new();
    'conn: loop {
        let n = match stream.read(&mut buf) {
            Ok(0) | Err(_) => break 'conn,
            Ok(n) => n,
        };
        decoder.feed(&buf[..n]);
        loop {
            match decoder.next_frame() {
                Ok(Some(frame)) => match wire::decode_message(&frame) {
                    Ok(msg) => {
                        if tx.send(TransportEvent::Message(id, msg)).is_err() {
                            break 'conn;
                        }
                    }
                    Err(_) => break 'conn,
                },
                Ok(None) => break,
                Err(_) => break 'conn,
            }
        }
    }
    if let Some(s) = writers.lock().remove(&id) {
        let _ = s.shutdown(Shutdown::Both);
    }
    let _ = tx.send(TransportEvent::Disconnected(id));
}

/// Framed, blocking message stream over one client-side connection.
struct MessageStream {
    stream: TcpStream,
    decoder: FrameDecoder,
    scratch: BytesMut,
}

impl MessageStream {
    fn connect(addr: SocketAddr) -> Result<Self, FederatedError> {
        let stream = TcpStream::connect(addr).map_err(|e| transport_err("connect", e))?;
        Ok(Self {
            stream,
            decoder: FrameDecoder::new(),
            scratch: BytesMut::new(),
        })
    }

    fn send(&mut self, msg: &Message) -> Result<(), FederatedError> {
        wire::encode_message(&mut self.scratch, msg);
        write_frame(&mut self.stream, &self.scratch).map_err(|e| transport_err("send", e))
    }

    /// Blocks until one full message arrives. `Ok(None)` means the peer
    /// closed the connection cleanly between messages.
    fn recv(&mut self) -> Result<Option<Message>, FederatedError> {
        let mut buf = [0u8; 4096];
        loop {
            if let Some(frame) = self
                .decoder
                .next_frame()
                .map_err(|e| transport_err("recv", e))?
            {
                let msg = wire::decode_message(&frame).map_err(|e| transport_err("recv", e))?;
                return Ok(Some(msg));
            }
            let n = self
                .stream
                .read(&mut buf)
                .map_err(|e| transport_err("recv", e))?;
            if n == 0 {
                if self.decoder.buffered() > 0 {
                    return Err(transport_err("recv", "connection closed mid-frame"));
                }
                return Ok(None);
            }
            self.decoder.feed(&buf[..n]);
        }
    }
}

/// Encodes one uplink payload exactly as the in-process path meters it:
/// the same encoder, over the same (post-fault) weights, against the
/// same global — so the byte length on the wire equals the byte length
/// the simulation's arithmetic predicts. The compressed representation
/// is built in the caller's [`CodecScratch`], so a client that uploads
/// every round re-fills the same buffers instead of materializing a
/// fresh `QuantizedUpdate`/`SparseDelta` per round.
fn encode_uplink_payload(
    mode: CompressionMode,
    weights: &[Matrix],
    global: &[Matrix],
    scratch: &mut CodecScratch,
) -> Bytes {
    match mode {
        CompressionMode::None => wire::encode_weights(weights),
        CompressionMode::Quant8 => {
            QuantizedUpdate::quantize_into(weights, &mut scratch.quant);
            wire::encode_quantized(&scratch.quant)
        }
        CompressionMode::TopKDelta { k } => {
            SparseDelta::top_k_into(weights, global, k, &mut scratch.picked, &mut scratch.sparse);
            wire::encode_sparse(&scratch.sparse)
        }
    }
}

/// Server-side decode of an uplink payload into weight matrices.
fn decode_uplink_payload(
    mode: CompressionMode,
    payload: &[u8],
    global: &[Matrix],
) -> Result<Vec<Matrix>, FederatedError> {
    let decoded = match mode {
        CompressionMode::None => wire::decode_weights(payload),
        CompressionMode::Quant8 => wire::decode_quantized(payload).map(|q| q.dequantize()),
        CompressionMode::TopKDelta { .. } => wire::decode_sparse(payload).map(|d| d.apply(global)),
    };
    decoded.map_err(|e| transport_err("uplink payload", e))
}

/// Knobs for a [`SocketServer`] beyond the shared [`FederatedConfig`].
#[derive(Debug, Clone)]
pub struct SocketServerConfig {
    /// The federated schedule — identical semantics to the in-process
    /// simulation. `dp` must be `None` (noise would have to be added
    /// client-side before upload, which the live client does not do yet).
    pub config: FederatedConfig,
    /// Client ids to admit, **in registration order**: index in this
    /// list is the sampling index, exactly like `add_client` order in
    /// the simulation. Connections claiming other ids are dropped.
    pub expected_clients: Vec<String>,
    /// How long to wait for all expected clients to say `Hello`.
    pub handshake_timeout: Duration,
    /// Per-event wait during rounds before declaring the round hung.
    pub io_timeout: Duration,
}

impl SocketServerConfig {
    /// Defaults: 30 s handshake, 60 s per-event round timeout.
    pub fn new(config: FederatedConfig, expected_clients: Vec<String>) -> Self {
        Self {
            config,
            expected_clients,
            handshake_timeout: Duration::from_secs(30),
            io_timeout: Duration::from_secs(60),
        }
    }
}

/// The federation server: accepts the expected clients over TCP and runs
/// the shared round engine against their live uplinks.
#[derive(Debug)]
pub struct SocketServer {
    transport: SocketTransport,
    template: Sequential,
    cfg: SocketServerConfig,
    channel: MeteredChannel,
}

impl SocketServer {
    /// Binds and starts listening. Clients may connect from this moment;
    /// their `Hello`s queue until [`SocketServer::run`] drains them.
    ///
    /// # Errors
    ///
    /// [`FederatedError::Transport`] if the bind fails.
    pub fn bind(
        addr: impl ToSocketAddrs,
        template: Sequential,
        cfg: SocketServerConfig,
    ) -> Result<Self, FederatedError> {
        Ok(Self {
            transport: SocketTransport::bind(addr)?,
            template,
            cfg,
            channel: MeteredChannel::new(),
        })
    }

    /// The bound address to hand to clients.
    pub fn local_addr(&self) -> SocketAddr {
        self.transport.local_addr()
    }

    /// Admits every expected client, then runs the full federated
    /// schedule over the sockets.
    ///
    /// # Errors
    ///
    /// Everything [`FederatedSimulation::run`](crate::FederatedSimulation::run)
    /// can return, plus [`FederatedError::Transport`] for handshake
    /// timeouts, connection loss on a control channel, or protocol
    /// violations. On any error the server best-effort sends `Abort` to
    /// every admitted client before returning.
    pub fn run(&mut self) -> Result<FederatedOutcome, FederatedError> {
        let n = self.cfg.expected_clients.len();
        if n == 0 {
            return Err(FederatedError::NoClients);
        }
        self.cfg.config.validate(n)?;
        if self.cfg.config.dp.is_some() {
            return Err(FederatedError::InvalidConfig {
                field: "dp".to_string(),
                message: "differential privacy is not supported over the socket transport \
                          (noise must be added client-side before upload)"
                    .to_string(),
            });
        }

        let controls = self.handshake()?;
        self.channel.reset();
        let global = self.template.weights();
        let retry_budget = self
            .cfg
            .config
            .faults
            .as_ref()
            .map_or(0, |plan| plan.retry_budget);
        let mut pool = SocketPool {
            transport: &mut self.transport,
            ids: &self.cfg.expected_clients,
            controls: controls.clone(),
            compression: self.cfg.config.compression,
            retry_budget,
            io_timeout: self.cfg.io_timeout,
            current_round: 0,
        };
        let outcome = engine::run_rounds(&mut pool, &self.cfg.config, &self.channel, global);
        if let Err(err) = &outcome {
            let abort = Message::Abort {
                message: err.to_string(),
            };
            for &conn in &controls {
                let _ = self.transport.send(conn, &abort);
            }
        }
        outcome
    }

    /// Waits for a `Hello` from every expected client, then welcomes all
    /// of them at once with the config and the initial global weights.
    /// Returns the control connection of each client in registration
    /// order.
    fn handshake(&mut self) -> Result<Vec<u64>, FederatedError> {
        let deadline = Instant::now() + self.cfg.handshake_timeout;
        let mut controls: Vec<Option<u64>> = vec![None; self.cfg.expected_clients.len()];
        let mut admitted = 0usize;
        while admitted < controls.len() {
            let left = deadline
                .checked_duration_since(Instant::now())
                .ok_or_else(|| {
                    transport_err(
                        "handshake",
                        format!(
                            "{admitted}/{} clients arrived before the timeout",
                            controls.len()
                        ),
                    )
                })?;
            match self.transport.recv(left)? {
                TransportEvent::Message(conn, Message::Hello { client_id }) => {
                    match self
                        .cfg
                        .expected_clients
                        .iter()
                        .position(|id| *id == client_id)
                    {
                        Some(i) if controls[i].is_none() => {
                            controls[i] = Some(conn);
                            admitted += 1;
                        }
                        // Unknown or duplicate id: not our client.
                        _ => self.transport.kill(conn),
                    }
                }
                TransportEvent::Message(conn, _) => self.transport.kill(conn),
                TransportEvent::Disconnected(conn) => {
                    if controls.contains(&Some(conn)) {
                        return Err(transport_err(
                            "handshake",
                            format!("client connection {conn} dropped before the run"),
                        ));
                    }
                }
            }
        }
        let controls: Vec<u64> = controls.into_iter().map(|c| c.expect("admitted")).collect();
        // The handshake speaks the same binary codec as the round loop
        // (`EVCF`), so not a single JSON byte crosses the socket.
        let welcome = Message::Welcome {
            config: wire::encode_config(&self.cfg.config),
            init_global: wire::encode_weights(&self.template.weights()),
        };
        for &conn in &controls {
            self.transport.send(conn, &welcome)?;
        }
        Ok(controls)
    }
}

/// The socket-backed [`RoundPool`]: training happens in remote processes,
/// updates arrive as `Update` messages over fresh upload connections.
struct SocketPool<'a> {
    transport: &'a mut SocketTransport,
    ids: &'a [String],
    /// Control connection per client, aligned with `ids`.
    controls: Vec<u64>,
    compression: CompressionMode,
    retry_budget: usize,
    io_timeout: Duration,
    current_round: usize,
}

/// Upload bookkeeping for one active client within a round.
struct PendingUpload {
    /// Position in the round's `active` list (output ordering).
    slot: usize,
    /// Total `Update` arrivals the fault plan schedules (failures the
    /// server will nack-by-close, plus the final attempt).
    expected_arrivals: usize,
    /// Whether the final arrival gets an `Ack` (false when the plan
    /// exhausts the retry budget — the client gives up unacknowledged).
    ack_last: bool,
    arrivals: usize,
    result: Option<(LocalUpdate, usize)>,
}

impl SocketPool<'_> {
    fn is_control(&self, conn: u64) -> bool {
        self.controls.contains(&conn)
    }
}

impl RoundPool for SocketPool<'_> {
    fn client_count(&self) -> usize {
        self.ids.len()
    }

    fn client_id(&self, ci: usize) -> &str {
        &self.ids[ci]
    }

    fn broadcast(&mut self, _global: &[Matrix], encoded: &[u8]) -> Result<(), FederatedError> {
        let msg = Message::Broadcast {
            round: (self.current_round + 1) as u32,
            global: Bytes::copy_from_slice(encoded),
        };
        for i in 0..self.controls.len() {
            self.transport.send(self.controls[i], &msg)?;
        }
        Ok(())
    }

    fn faults_in_transit(&self) -> bool {
        true
    }

    fn round_updates(
        &mut self,
        round: usize,
        active: &[usize],
        active_faults: &[Option<FaultKind>],
        global: &[Matrix],
    ) -> Result<Vec<PoolUpdate>, FederatedError> {
        self.current_round = round;
        // Schedule the round: ask every active client to train, and plan
        // how many of its upload connections to kill from the same fault
        // the engine's gate will account for.
        let mut pending: HashMap<String, PendingUpload> = HashMap::new();
        for (slot, (&ci, &fault)) in active.iter().zip(active_faults).enumerate() {
            let (expected_arrivals, ack_last) = match fault {
                Some(FaultKind::Transient { failures }) => {
                    if failures <= self.retry_budget {
                        (failures + 1, true)
                    } else {
                        (self.retry_budget + 1, false)
                    }
                }
                _ => (1, true),
            };
            pending.insert(
                self.ids[ci].clone(),
                PendingUpload {
                    slot,
                    expected_arrivals,
                    ack_last,
                    arrivals: 0,
                    result: None,
                },
            );
            self.transport.send(
                self.controls[ci],
                &Message::TrainRequest {
                    round: round as u32,
                    fault,
                },
            )?;
        }

        // Collect until every active client's upload saga concludes.
        // Arrival order is irrelevant: results are slotted by client.
        let mut remaining = active.len();
        while remaining > 0 {
            match self.transport.recv(self.io_timeout)? {
                TransportEvent::Message(
                    conn,
                    Message::Update {
                        round: r,
                        client_id,
                        sample_count,
                        train_loss,
                        payload,
                    },
                ) => {
                    let entry = if r as usize == round {
                        pending.get_mut(&client_id)
                    } else {
                        None
                    };
                    let Some(entry) = entry else {
                        // Stale round or a client we did not ask: drop.
                        self.transport.kill(conn);
                        continue;
                    };
                    if entry.result.is_some() {
                        self.transport.kill(conn);
                        continue;
                    }
                    entry.arrivals += 1;
                    if entry.arrivals < entry.expected_arrivals {
                        // Planned connection loss mid-upload: no Ack, hard
                        // close. The client's retry/backoff loop takes it
                        // from here.
                        self.transport.kill(conn);
                        continue;
                    }
                    // Final arrival: decode and keep (the engine decides
                    // Keep vs Waste; either way the payload is metered).
                    let weights = decode_uplink_payload(self.compression, &payload, global)?;
                    entry.result = Some((
                        LocalUpdate {
                            client_id: client_id.clone(),
                            weights,
                            sample_count: sample_count as usize,
                            train_loss,
                            duration: Duration::ZERO,
                            simulated_extra_seconds: 0.0,
                        },
                        payload.len(),
                    ));
                    remaining -= 1;
                    if entry.ack_last {
                        self.transport.send(conn, &Message::Ack { round: r })?;
                    } else {
                        // Retries exhausted by plan: the last attempt dies
                        // like the others. The payload still arrived — and
                        // still cost bandwidth — it is just never acked.
                        self.transport.kill(conn);
                    }
                }
                TransportEvent::Message(conn, _) => {
                    // Protocol violation (stray Hello, unexpected control
                    // traffic): drop the offender, not the round.
                    if self.is_control(conn) {
                        return Err(transport_err(
                            "round",
                            format!("unexpected control message on connection {conn}"),
                        ));
                    }
                    self.transport.kill(conn);
                }
                TransportEvent::Disconnected(conn) => {
                    if self.is_control(conn) {
                        return Err(transport_err(
                            "round",
                            format!("client control connection {conn} lost in round {round}"),
                        ));
                    }
                    // Upload connections die all the time (our own kills,
                    // client close after Ack): not an event.
                }
            }
        }

        let mut slots: Vec<Option<PoolUpdate>> = (0..active.len()).map(|_| None).collect();
        for (_, p) in pending {
            let (update, wire_len) = p.result.expect("remaining hit zero");
            slots[p.slot] = Some(PoolUpdate {
                update,
                wire_len: Some(wire_len),
            });
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("all slots filled"))
            .collect())
    }

    fn finish(&mut self, global: &[Matrix]) -> Result<(), FederatedError> {
        let done = Message::Done {
            global: wire::encode_weights(global),
        };
        for i in 0..self.controls.len() {
            self.transport.send(self.controls[i], &done)?;
        }
        Ok(())
    }
}

/// A live federation client: connects to a [`SocketServer`], trains on
/// request, and uploads with real retries.
#[derive(Debug)]
pub struct SocketClient {
    /// Scales every real sleep (straggler delay, retry backoff): `1.0`
    /// sleeps the plan's literal seconds, `0.0` (tests) never sleeps.
    /// Simulated-time accounting in the digest is engine-side and
    /// unaffected.
    pub time_dilation: f64,
}

impl Default for SocketClient {
    fn default() -> Self {
        Self { time_dilation: 1.0 }
    }
}

impl SocketClient {
    /// Runs the client protocol to completion and returns the final
    /// global weights from the server's `Done`.
    ///
    /// `template` must have the architecture the server aggregates; its
    /// initial weights are replaced by the server's `Welcome` payload, so
    /// every client (and the server) starts from the same initialisation
    /// — exactly like `add_client` cloning the simulation's template.
    ///
    /// # Errors
    ///
    /// [`FederatedError::Transport`] on connection loss, protocol
    /// violations, or a server `Abort`; training errors are propagated.
    pub fn run(
        &self,
        addr: SocketAddr,
        client_id: impl Into<String>,
        template: Sequential,
        samples: Vec<Sample>,
    ) -> Result<Vec<Matrix>, FederatedError> {
        let client_id = client_id.into();
        let mut control = MessageStream::connect(addr)?;
        control.send(&Message::Hello {
            client_id: client_id.clone(),
        })?;
        let (config, init_global) = match control.recv()? {
            Some(Message::Welcome {
                config,
                init_global,
            }) => {
                let config =
                    wire::decode_config(&config).map_err(|e| transport_err("welcome", e))?;
                let init =
                    wire::decode_weights(&init_global).map_err(|e| transport_err("welcome", e))?;
                (config, init)
            }
            Some(Message::Abort { message }) => {
                return Err(transport_err("aborted by server", message))
            }
            other => return Err(transport_err("welcome", format!("unexpected {other:?}"))),
        };

        let mut model = template;
        model
            .set_weights(&init_global)
            .map_err(|e| transport_err("welcome", e))?;
        let mut client = FedClient::new(client_id.clone(), model, samples);
        // The client's copy of the global model — the base for top-k
        // delta encoding, kept in sync by every broadcast.
        let mut global = init_global;
        let train_cfg = TrainConfig {
            epochs: config.epochs_per_round,
            batch_size: config.batch_size,
            ..TrainConfig::default()
        };
        let retry_budget = config.faults.as_ref().map_or(0, |p| p.retry_budget);
        // Reused across rounds: warm uploads re-fill these codec buffers
        // instead of allocating a fresh compressed representation.
        let mut codec_scratch = CodecScratch::default();

        loop {
            match control.recv()? {
                Some(Message::Broadcast {
                    global: encoded, ..
                }) => {
                    global = wire::decode_weights(&encoded)
                        .map_err(|e| transport_err("broadcast", e))?;
                    client.receive_global(&global)?;
                }
                Some(Message::TrainRequest { round, fault }) => {
                    let update = if config.proximal_mu > 0.0 {
                        client.train_local_proximal(&train_cfg, &global, config.proximal_mu)?
                    } else {
                        client.train_local(&train_cfg)?
                    };
                    let mut weights = update.weights;
                    // Act the fault out for real: sleep the straggler
                    // delay, corrupt the payload before encoding.
                    // Transient failures need no act — the server closes
                    // our upload connections and the retry loop below
                    // responds honestly.
                    match fault {
                        Some(FaultKind::Straggler { delay_seconds }) => {
                            self.sleep(delay_seconds);
                        }
                        Some(FaultKind::Corrupt { corruption }) => {
                            corruption.apply(&mut weights);
                        }
                        _ => {}
                    }
                    let payload = encode_uplink_payload(
                        config.compression,
                        &weights,
                        &global,
                        &mut codec_scratch,
                    );
                    let msg = Message::Update {
                        round,
                        client_id: client_id.clone(),
                        sample_count: update.sample_count as u64,
                        train_loss: update.train_loss,
                        payload,
                    };
                    self.upload_with_retries(addr, &msg, retry_budget, config.faults.as_ref())?;
                }
                Some(Message::Done { global: encoded }) => {
                    let final_global =
                        wire::decode_weights(&encoded).map_err(|e| transport_err("done", e))?;
                    client.receive_global(&final_global)?;
                    return Ok(final_global);
                }
                Some(Message::Abort { message }) => {
                    return Err(transport_err("aborted by server", message))
                }
                Some(other) => {
                    return Err(transport_err("control", format!("unexpected {other:?}")))
                }
                None => return Err(transport_err("control", "server closed the connection")),
            }
        }
    }

    /// Uploads over a fresh connection per attempt, retrying with
    /// exponential backoff when the connection dies before the `Ack` —
    /// up to `retry_budget` retries, after which the client gives up
    /// (the fault plan's retries-exhausted outcome; not a client error).
    fn upload_with_retries(
        &self,
        addr: SocketAddr,
        msg: &Message,
        retry_budget: usize,
        plan: Option<&crate::faults::FaultPlan>,
    ) -> Result<(), FederatedError> {
        let max_attempts = retry_budget + 1;
        for attempt in 0..max_attempts {
            if self.upload_once(addr, msg).is_ok() {
                return Ok(());
            }
            if attempt + 1 < max_attempts {
                if let Some(plan) = plan {
                    self.sleep(plan.backoff_step_seconds(attempt));
                }
            }
        }
        Ok(())
    }

    /// One upload attempt: connect, send, block for the `Ack`. Any
    /// connection loss before the ack is a failed attempt.
    fn upload_once(&self, addr: SocketAddr, msg: &Message) -> Result<(), FederatedError> {
        let mut conn = MessageStream::connect(addr)?;
        conn.send(msg)?;
        match conn.recv()? {
            Some(Message::Ack { .. }) => Ok(()),
            other => Err(transport_err("upload", format!("no ack, got {other:?}"))),
        }
    }

    fn sleep(&self, seconds: f64) {
        let scaled = seconds * self.time_dilation;
        if scaled > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(scaled));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn loopback() -> SocketTransport {
        SocketTransport::bind("127.0.0.1:0").expect("bind")
    }

    #[test]
    fn hello_crosses_the_transport() {
        let transport = loopback();
        let mut peer = MessageStream::connect(transport.local_addr()).expect("connect");
        peer.send(&Message::Hello {
            client_id: "z102".into(),
        })
        .expect("send");
        match transport.recv(Duration::from_secs(5)).expect("event") {
            TransportEvent::Message(_, Message::Hello { client_id }) => {
                assert_eq!(client_id, "z102");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn kill_looks_like_connection_loss_to_the_peer() {
        let mut transport = loopback();
        let mut peer = MessageStream::connect(transport.local_addr()).expect("connect");
        peer.send(&Message::Hello {
            client_id: "z105".into(),
        })
        .expect("send");
        let conn = match transport.recv(Duration::from_secs(5)).expect("event") {
            TransportEvent::Message(conn, _) => conn,
            other => panic!("unexpected {other:?}"),
        };
        transport.kill(conn);
        // The peer sees a clean close (no farewell frame), not an Ack.
        assert!(matches!(peer.recv(), Ok(None) | Err(_)));
        // The reader thread reports the loss.
        loop {
            match transport.recv(Duration::from_secs(5)).expect("event") {
                TransportEvent::Disconnected(id) if id == conn => break,
                _ => continue,
            }
        }
        // Sends to a killed connection fail cleanly.
        assert!(transport.send(conn, &Message::Ack { round: 0 }).is_err());
    }

    #[test]
    fn peer_hangup_surfaces_as_disconnect() {
        let transport = loopback();
        let peer = MessageStream::connect(transport.local_addr()).expect("connect");
        drop(peer);
        match transport.recv(Duration::from_secs(5)).expect("event") {
            TransportEvent::Disconnected(_) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn garbage_bytes_poison_only_the_offending_connection() {
        let transport = loopback();
        let mut bad = TcpStream::connect(transport.local_addr()).expect("connect");
        // A frame whose payload is not a valid EVMS envelope.
        let mut framed = BytesMut::new();
        crate::framing::encode_frame(&mut framed, b"not a message");
        bad.write_all(&framed).expect("write");
        match transport.recv(Duration::from_secs(5)).expect("event") {
            TransportEvent::Disconnected(_) => {}
            other => panic!("unexpected {other:?}"),
        }
        // The transport still accepts and serves new connections.
        let mut good = MessageStream::connect(transport.local_addr()).expect("connect");
        good.send(&Message::Ack { round: 7 }).expect("send");
        match transport.recv(Duration::from_secs(5)).expect("event") {
            TransportEvent::Message(_, Message::Ack { round }) => assert_eq!(round, 7),
            other => panic!("unexpected {other:?}"),
        }
    }
}
