//! Round orchestration: broadcast → parallel local training → fault
//! model → aggregate.

use crate::aggregate::Aggregator;
use crate::client::{FedClient, LocalUpdate};
use crate::compression::CompressionMode;
use crate::engine::{self, PoolUpdate, RoundPool};
use crate::error::FederatedError;
use crate::faults::{FaultEvent, FaultKind, FaultPlan};
use crate::privacy::DpConfig;
use crate::transport::MeteredChannel;
use evfad_nn::{Sample, Sequential, TrainConfig};
use evfad_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Schedule and behaviour of a federated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederatedConfig {
    /// Number of communication rounds (paper: 5).
    pub rounds: usize,
    /// Local epochs per round (paper: 10).
    pub epochs_per_round: usize,
    /// Local mini-batch size (paper: 32).
    pub batch_size: usize,
    /// Aggregation rule (paper: FedAvg).
    pub aggregator: Aggregator,
    /// Train clients on parallel threads (the distributed-hardware model;
    /// disable for deterministic single-thread profiling).
    pub parallel: bool,
    /// Intra-op thread count for the tensor kernels (`0` = one per CPU).
    ///
    /// Composes with [`FederatedConfig::parallel`]: client threads share
    /// the process-wide tensor worker pool, so total CPU use stays bounded
    /// regardless of the client count. Results are bitwise identical for
    /// every setting — see `evfad_tensor::parallel`.
    pub threads: usize,
    /// Optional client-side differential privacy.
    pub dp: Option<DpConfig>,
    /// FedProx proximal pull in `[0, 1]` applied between local epochs
    /// (`0.0` = plain FedAvg, the paper's setting).
    pub proximal_mu: f64,
    /// Fraction of clients participating per round in `(0, 1]`. At least
    /// one client always participates. Models node downtime — the paper's
    /// §III-F resilience claim.
    pub participation: f64,
    /// Seed for the per-round participant sampling.
    pub sampling_seed: u64,
    /// Optional fault model applied on top of participant sampling:
    /// drop-outs, stragglers (with an optional server-side round timeout),
    /// update corruption, and transient upload failures with retry/backoff.
    /// `None` (the default) runs the fault-free protocol.
    #[serde(default)]
    pub faults: Option<FaultPlan>,
    /// Uplink encoding for client updates (see [`CompressionMode`]).
    /// The server decodes the payload before aggregation, so metering,
    /// faults, and aggregation all see the same bytes. The default
    /// [`CompressionMode::None`] is bit-exact — results are identical to
    /// an uncompressed run.
    #[serde(default)]
    pub compression: CompressionMode,
}

impl FederatedConfig {
    /// Validates the schedule before any training starts.
    ///
    /// `run()` calls this with the registered client count; call it
    /// directly to fail fast when configs come from users or files.
    ///
    /// # Errors
    ///
    /// [`FederatedError::InvalidConfig`] naming the offending field when a
    /// knob is out of range: zero `rounds`/`epochs_per_round`/`batch_size`,
    /// `participation` outside `(0, 1]` (NaN included), a non-finite or
    /// out-of-range `proximal_mu`, or an invalid [`FaultPlan`] (including a
    /// `min_participants` larger than the client count).
    pub fn validate(&self, client_count: usize) -> Result<(), FederatedError> {
        let bad = |field: &str, message: String| FederatedError::InvalidConfig {
            field: field.to_string(),
            message,
        };
        if self.rounds == 0 {
            return Err(bad("rounds", "must be at least 1".to_string()));
        }
        if self.epochs_per_round == 0 {
            return Err(bad("epochs_per_round", "must be at least 1".to_string()));
        }
        if self.batch_size == 0 {
            return Err(bad("batch_size", "must be at least 1".to_string()));
        }
        if !(self.participation > 0.0 && self.participation <= 1.0) {
            return Err(bad(
                "participation",
                format!("must be in (0, 1], got {}", self.participation),
            ));
        }
        if !self.proximal_mu.is_finite() || !(0.0..=1.0).contains(&self.proximal_mu) {
            return Err(bad(
                "proximal_mu",
                format!("must be in [0, 1], got {}", self.proximal_mu),
            ));
        }
        if let Some(plan) = &self.faults {
            plan.validate()?;
            if plan.min_participants > client_count {
                return Err(bad(
                    "faults.min_participants",
                    format!(
                        "requires {} surviving clients but only {client_count} are registered",
                        plan.min_participants
                    ),
                ));
            }
        }
        if let CompressionMode::TopKDelta { k } = self.compression {
            if k == 0 {
                return Err(bad(
                    "compression.k",
                    "TopKDelta must keep at least 1 coordinate per tensor".to_string(),
                ));
            }
        }
        Ok(())
    }
}

impl Default for FederatedConfig {
    fn default() -> Self {
        Self {
            rounds: 5,
            epochs_per_round: 10,
            batch_size: 32,
            aggregator: Aggregator::FedAvg,
            parallel: true,
            threads: 0,
            dp: None,
            proximal_mu: 0.0,
            participation: 1.0,
            sampling_seed: 0,
            faults: None,
            compression: CompressionMode::None,
        }
    }
}

/// Statistics for one communication round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Zero-based round index.
    pub round: usize,
    /// Ids of the clients that participated this round.
    pub participants: Vec<String>,
    /// Final local training loss per participating client.
    pub client_losses: Vec<f64>,
    /// Per-client local-training seconds (client order). On truly
    /// distributed hardware a round lasts as long as its slowest client.
    pub client_seconds: Vec<f64>,
    /// Per-client *simulated* extra seconds (straggler delay plus retry
    /// backoff) injected by the fault model, aligned with
    /// [`RoundStats::participants`]. All zeros on a fault-free run.
    #[serde(default)]
    pub client_extra_seconds: Vec<f64>,
    /// Simulated seconds the server spent waiting for updates that then
    /// timed out (the round timeout, if any straggler exceeded it). Zero
    /// when nothing timed out.
    #[serde(default)]
    pub timeout_wait_seconds: f64,
    /// Fault events injected this round (drop-outs, delays, corruption,
    /// retries), in deterministic client order. Empty on a clean round.
    #[serde(default)]
    pub faults: Vec<FaultEvent>,
    /// Client→server bytes this round — the exact wire size of every
    /// uplink payload that crossed the channel, retries included.
    /// Deterministic: a pure function of configuration and seeds.
    #[serde(default)]
    pub uplink_bytes: usize,
    /// Server→client bytes this round: the once-per-round broadcast
    /// encoding, metered per receiving client. Zero in round 0 (clients
    /// start from the shared initialisation). Deterministic.
    #[serde(default)]
    pub downlink_bytes: usize,
    /// Uplink compression ratio this round: full-precision wire bytes the
    /// same payloads would have cost, divided by [`RoundStats::uplink_bytes`].
    /// Exactly 1.0 under [`CompressionMode::None`] (and when nothing was
    /// uplinked). Deterministic.
    #[serde(default)]
    pub compression_ratio: f64,
    /// Wall-clock duration of the round (broadcast + training + aggregate)
    /// on *this* host.
    #[serde(skip, default)]
    pub duration: Duration,
}

/// Result of a completed federated run.
#[derive(Debug, Clone)]
pub struct FederatedOutcome {
    /// Per-round statistics.
    pub rounds: Vec<RoundStats>,
    /// The final aggregated global weights.
    pub global_weights: Vec<Matrix>,
    /// Total wall-clock training time.
    pub total_duration: Duration,
    /// Bytes/messages exchanged (client→server updates and
    /// server→client broadcasts).
    pub traffic: crate::transport::TrafficTotals,
}

impl FederatedOutcome {
    /// Training time the federation would take on truly distributed
    /// hardware: each round lasts as long as its slowest client —
    /// including simulated straggler delay and retry backoff, floored at
    /// the round-timeout wait when a straggler was cut off — and rounds
    /// run back to back. (On a single-core simulation host the wall clock
    /// in [`FederatedOutcome::total_duration`] serialises the clients and
    /// hides the parallelism the paper measures.)
    pub fn simulated_distributed_seconds(&self) -> f64 {
        self.rounds
            .iter()
            .map(|r| {
                let slowest = r
                    .client_seconds
                    .iter()
                    .enumerate()
                    .map(|(i, s)| s + r.client_extra_seconds.get(i).copied().unwrap_or(0.0))
                    .fold(0.0_f64, f64::max);
                slowest.max(r.timeout_wait_seconds)
            })
            .sum()
    }

    /// All fault events across all rounds, in (round, client) order.
    pub fn fault_events(&self) -> impl Iterator<Item = &FaultEvent> {
        self.rounds.iter().flat_map(|r| r.faults.iter())
    }

    /// Deterministic fingerprint of the run: everything the protocol
    /// decides, nothing the wall clock does. Two runs of the same
    /// configuration (same seeds, same fault plan) produce digests that
    /// serialise to byte-identical JSON — the chaos suite's reproducibility
    /// anchor.
    pub fn digest(&self) -> OutcomeDigest {
        OutcomeDigest {
            weights_checksum: format!(
                "{:016x}",
                crate::wire::weights_checksum(&self.global_weights)
            ),
            messages: self.traffic.messages,
            bytes: self.traffic.bytes,
            retries: self.traffic.retries,
            rounds: self
                .rounds
                .iter()
                .map(|r| RoundDigest {
                    round: r.round,
                    participants: r.participants.clone(),
                    client_losses: r.client_losses.clone(),
                    client_extra_seconds: r.client_extra_seconds.clone(),
                    timeout_wait_seconds: r.timeout_wait_seconds,
                    faults: r.faults.clone(),
                    uplink_bytes: r.uplink_bytes,
                    downlink_bytes: r.downlink_bytes,
                    compression_ratio: r.compression_ratio,
                })
                .collect(),
        }
    }
}

/// The deterministic slice of a [`FederatedOutcome`] — see
/// [`FederatedOutcome::digest`]. Wall-clock fields (`duration`,
/// `client_seconds`) are deliberately absent: they vary run to run, while
/// everything here is a pure function of configuration and seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutcomeDigest {
    /// FNV-1a checksum of the binary-encoded final global weights
    /// (see [`crate::wire::weights_checksum`]), as 16 lowercase hex digits.
    pub weights_checksum: String,
    /// Total messages exchanged, retries included.
    pub messages: usize,
    /// Total serialised bytes exchanged.
    pub bytes: usize,
    /// Retry messages among `messages`.
    pub retries: usize,
    /// Per-round deterministic stats.
    pub rounds: Vec<RoundDigest>,
}

/// Per-round slice of an [`OutcomeDigest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundDigest {
    /// Zero-based round index.
    pub round: usize,
    /// Clients whose updates were aggregated.
    pub participants: Vec<String>,
    /// Final local losses, aligned with `participants`.
    pub client_losses: Vec<f64>,
    /// Simulated extra seconds (delay + backoff), aligned with
    /// `participants`.
    pub client_extra_seconds: Vec<f64>,
    /// Simulated server wait for timed-out stragglers.
    pub timeout_wait_seconds: f64,
    /// Fault events injected this round.
    pub faults: Vec<FaultEvent>,
    /// Client→server wire bytes this round, retries included.
    #[serde(default)]
    pub uplink_bytes: usize,
    /// Server→client broadcast wire bytes this round.
    #[serde(default)]
    pub downlink_bytes: usize,
    /// Full-precision bytes over actual uplink bytes (1.0 uncompressed).
    #[serde(default)]
    pub compression_ratio: f64,
}

/// Orchestrates FedAvg-style training over in-process clients.
///
/// The schedule follows the paper: each round the server broadcasts the
/// global weights, every client trains `EPOCHS_PER_ROUND` local epochs in
/// parallel, and the server aggregates the updates. After `run()` returns,
/// each client's model holds its **locally trained** weights from the final
/// round (the personalised read-out used for the paper's per-client
/// evaluation) while [`FederatedOutcome::global_weights`] holds the final
/// aggregate (the global read-out).
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug)]
pub struct FederatedSimulation {
    template: Sequential,
    config: FederatedConfig,
    clients: Vec<FedClient>,
    channel: MeteredChannel,
}

impl FederatedSimulation {
    /// Creates a simulation from a model template; every client gets an
    /// identical copy (identical initial weights, as in the paper).
    pub fn new(template: Sequential, config: FederatedConfig) -> Self {
        Self {
            template,
            config,
            clients: Vec::new(),
            channel: MeteredChannel::new(),
        }
    }

    /// Adds a client holding `samples` as its private dataset.
    pub fn add_client(&mut self, id: impl Into<String>, samples: Vec<Sample>) {
        let model = self.template.clone();
        self.clients.push(FedClient::new(id, model, samples));
    }

    /// The configured schedule.
    pub fn config(&self) -> &FederatedConfig {
        &self.config
    }

    /// Borrow of the clients (after `run()`, their models hold the
    /// final-round locally-trained weights).
    pub fn clients(&self) -> &[FedClient] {
        &self.clients
    }

    /// Mutable borrow of the clients.
    pub fn clients_mut(&mut self) -> &mut [FedClient] {
        &mut self.clients
    }

    /// Runs the full schedule.
    ///
    /// When [`FederatedConfig::faults`] is set the round degrades
    /// gracefully: dropped-out clients are skipped, stragglers past the
    /// round timeout are excluded from aggregation (their late upload is
    /// still metered), corrupted updates are aggregated as transmitted
    /// (robust rules are the defence, not the server), and transient
    /// upload failures are retried with exponential backoff up to the
    /// plan's budget. The round aborts with
    /// [`FederatedError::InsufficientParticipants`] only when fewer than
    /// `min_participants` usable updates survive.
    ///
    /// # Errors
    ///
    /// * [`FederatedError::NoClients`] when no client was added;
    /// * [`FederatedError::InvalidConfig`] from up-front validation
    ///   (see [`FederatedConfig::validate`]);
    /// * [`FederatedError::InsufficientParticipants`] when the fault model
    ///   starves a round;
    /// * client-training and aggregation errors are propagated.
    pub fn run(&mut self) -> Result<FederatedOutcome, FederatedError> {
        if self.clients.is_empty() {
            return Err(FederatedError::NoClients);
        }
        self.config.validate(self.clients.len())?;
        evfad_tensor::parallel::set_threads(self.config.threads);
        self.channel.reset();
        let global = self.template.weights();
        let mut pool = InProcessPool {
            clients: &mut self.clients,
            parallel: self.config.parallel,
            proximal_mu: self.config.proximal_mu,
            train_cfg: TrainConfig {
                epochs: self.config.epochs_per_round,
                batch_size: self.config.batch_size,
                ..TrainConfig::default()
            },
        };
        engine::run_rounds(&mut pool, &self.config, &self.channel, global)
    }

    /// Builds a fresh model carrying the given weights (e.g. the final
    /// global aggregate) for evaluation.
    ///
    /// # Errors
    ///
    /// [`FederatedError::Aggregation`] if the weights do not fit the
    /// template architecture.
    pub fn model_with_weights(&self, weights: &[Matrix]) -> Result<Sequential, FederatedError> {
        let mut model = self.template.clone();
        model
            .set_weights(weights)
            .map_err(|e| FederatedError::Aggregation(e.to_string()))?;
        Ok(model)
    }
}

/// The in-process [`RoundPool`]: trains [`FedClient`]s on local threads.
/// Faults are left to the engine's gate (`faults_in_transit` = false) —
/// exactly the behaviour the round loop had before the extraction.
struct InProcessPool<'a> {
    clients: &'a mut [FedClient],
    parallel: bool,
    proximal_mu: f64,
    train_cfg: TrainConfig,
}

impl RoundPool for InProcessPool<'_> {
    fn client_count(&self) -> usize {
        self.clients.len()
    }

    fn client_id(&self, ci: usize) -> &str {
        self.clients[ci].id()
    }

    fn broadcast(&mut self, global: &[Matrix], _encoded: &[u8]) -> Result<(), FederatedError> {
        for client in self.clients.iter_mut() {
            client.receive_global(global)?;
        }
        Ok(())
    }

    fn round_updates(
        &mut self,
        _round: usize,
        active: &[usize],
        _active_faults: &[Option<FaultKind>],
        global: &[Matrix],
    ) -> Result<Vec<PoolUpdate>, FederatedError> {
        let mu = self.proximal_mu;
        let cfg = &self.train_cfg;
        // `active` comes out of the sampler sorted, so the selection is a
        // single merge-walk over the client list — no per-round hash set,
        // no filter scan.
        debug_assert!(active.windows(2).all(|w| w[0] < w[1]));
        let mut next = 0;
        let selected: Vec<&mut FedClient> = self
            .clients
            .iter_mut()
            .enumerate()
            .filter_map(|(i, client)| {
                if next < active.len() && active[next] == i {
                    next += 1;
                    Some(client)
                } else {
                    None
                }
            })
            .collect();
        let train_one = |client: &mut FedClient| -> Result<LocalUpdate, FederatedError> {
            if mu > 0.0 {
                client.train_local_proximal(cfg, global, mu)
            } else {
                client.train_local(cfg)
            }
        };
        let updates: Result<Vec<LocalUpdate>, FederatedError> = if self.parallel {
            let results: Vec<Result<LocalUpdate, FederatedError>> =
                crossbeam::thread::scope(|scope| {
                    let handles: Vec<_> = selected
                        .into_iter()
                        .map(|client| scope.spawn(move |_| train_one(client)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("client thread panicked"))
                        .collect()
                })
                .expect("crossbeam scope");
            results.into_iter().collect()
        } else {
            selected.into_iter().map(train_one).collect()
        };
        Ok(updates?.into_iter().map(PoolUpdate::local).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultOutcome;
    use evfad_nn::{forecaster_model, Loss};

    fn sine_samples(n: usize, phase: f64) -> Vec<Sample> {
        (0..n)
            .map(|i| {
                let xs: Vec<f64> = (0..6)
                    .map(|t| ((i + t) as f64 * 0.5 + phase).sin())
                    .collect();
                Sample::new(
                    Matrix::column_vector(&xs),
                    Matrix::from_vec(1, 1, vec![((i + 6) as f64 * 0.5 + phase).sin()]),
                )
            })
            .collect()
    }

    fn small_sim(parallel: bool) -> FederatedSimulation {
        let cfg = FederatedConfig {
            rounds: 2,
            epochs_per_round: 2,
            batch_size: 16,
            parallel,
            ..FederatedConfig::default()
        };
        let mut sim = FederatedSimulation::new(forecaster_model(4, 3), cfg);
        sim.add_client("z102", sine_samples(32, 0.0));
        sim.add_client("z105", sine_samples(32, 0.8));
        sim.add_client("z108", sine_samples(32, 1.6));
        sim
    }

    #[test]
    fn runs_all_rounds() {
        let mut sim = small_sim(false);
        let out = sim.run().expect("run");
        assert_eq!(out.rounds.len(), 2);
        assert_eq!(out.rounds[0].client_losses.len(), 3);
        assert!(out.global_weights.iter().all(Matrix::is_finite));
    }

    #[test]
    fn no_clients_is_an_error() {
        let mut sim = FederatedSimulation::new(forecaster_model(4, 3), FederatedConfig::default());
        assert_eq!(sim.run().unwrap_err(), FederatedError::NoClients);
    }

    #[test]
    fn parallel_and_serial_agree() {
        // With identical seeds and deterministic clients, thread scheduling
        // must not affect results.
        let mut a = small_sim(false);
        let mut b = small_sim(true);
        let out_a = a.run().expect("serial");
        let out_b = b.run().expect("parallel");
        assert_eq!(out_a.global_weights, out_b.global_weights);
    }

    #[test]
    fn traffic_counts_updates_and_broadcasts() {
        let mut sim = small_sim(false);
        let out = sim.run().expect("run");
        // Round 0: 3 updates. Round 1: 3 broadcasts + 3 updates.
        assert_eq!(out.traffic.messages, 9);
        assert!(out.traffic.bytes > 0);
    }

    #[test]
    fn dp_and_clean_runs_meter_the_same_message_count() {
        let mut clean = small_sim(false);
        let clean_out = clean.run().expect("clean run");
        let mut noisy = small_sim(false);
        noisy.config.dp = Some(crate::privacy::DpConfig::moderate());
        let noisy_out = noisy.run().expect("dp run");
        // DP perturbs payload *contents*, never the protocol: both runs
        // exchange the same number of messages, and both meters measure
        // the payload that actually crossed the channel.
        assert_eq!(clean_out.traffic.messages, noisy_out.traffic.messages);
        assert!(clean_out.traffic.bytes > 0);
        assert!(noisy_out.traffic.bytes > 0);
    }

    #[test]
    fn metered_bytes_cover_the_privatized_payload() {
        // With DP on, the bytes recorded for an update must be the wire
        // size of the *noised* weights. On the binary wire that size is a
        // pure function of the shapes, so the meter must land exactly on
        // one full-precision payload per client.
        let mut noisy = small_sim(false);
        noisy.config.rounds = 1;
        noisy.config.dp = Some(crate::privacy::DpConfig::moderate());
        let out = noisy.run().expect("dp run");
        // Round 0 sends exactly one update per client and no broadcasts.
        assert_eq!(out.traffic.messages, 3);
        let per_update = crate::transport::update_size_bytes(&noisy.clients()[0].model().weights());
        assert_eq!(out.traffic.bytes, 3 * per_update);
    }

    #[test]
    fn round_stats_account_every_byte() {
        let mut sim = small_sim(false);
        let out = sim.run().expect("run");
        let per_update = crate::transport::update_size_bytes(&out.global_weights);
        // Round 0: no broadcast, 3 uplinks. Round 1: 3 broadcasts + 3
        // uplinks, all full-precision payloads of identical shape.
        assert_eq!(out.rounds[0].downlink_bytes, 0);
        assert_eq!(out.rounds[0].uplink_bytes, 3 * per_update);
        assert_eq!(out.rounds[1].downlink_bytes, 3 * per_update);
        assert_eq!(out.rounds[1].uplink_bytes, 3 * per_update);
        // Per-round stats and channel totals agree to the byte.
        let accounted: usize = out
            .rounds
            .iter()
            .map(|r| r.uplink_bytes + r.downlink_bytes)
            .sum();
        assert_eq!(accounted, out.traffic.bytes);
        for r in &out.rounds {
            assert_eq!(r.compression_ratio, 1.0, "None mode is ratio-1 exact");
        }
    }

    #[test]
    fn quant8_shrinks_the_uplink_about_8x() {
        let mut plain = small_sim(false);
        let plain_out = plain.run().expect("plain");
        let mut quant = small_sim(false);
        quant.config.compression = crate::compression::CompressionMode::Quant8;
        let quant_out = quant.run().expect("quant8");
        // The test model's tensors are tiny, so the fixed 28-byte
        // per-tensor quantized header eats into the 8x asymptotic ratio;
        // bench_comms gates ≈8x on realistic tensor sizes.
        for (q, p) in quant_out.rounds.iter().zip(&plain_out.rounds) {
            assert!(
                q.compression_ratio > 3.0 && q.compression_ratio < 8.0,
                "round {} ratio {}",
                q.round,
                q.compression_ratio
            );
            assert!(q.uplink_bytes * 3 < p.uplink_bytes);
            // Downlink stays full precision — compression is uplink-only.
            assert_eq!(q.downlink_bytes, p.downlink_bytes);
        }
        // The aggregate sees dequantized (lossy) updates: close to the
        // plain run but not bitwise equal, and still finite.
        assert_ne!(quant_out.global_weights, plain_out.global_weights);
        assert!(quant_out.global_weights.iter().all(Matrix::is_finite));
    }

    #[test]
    fn topk_delta_transmits_only_the_k_largest_changes() {
        let mut plain = small_sim(false);
        let plain_out = plain.run().expect("plain");
        let mut sparse = small_sim(false);
        sparse.config.compression = crate::compression::CompressionMode::TopKDelta { k: 8 };
        let sparse_out = sparse.run().expect("topk");
        for (s, p) in sparse_out.rounds.iter().zip(&plain_out.rounds) {
            assert!(s.uplink_bytes < p.uplink_bytes);
            assert!(s.compression_ratio > 1.0);
            assert_eq!(s.downlink_bytes, p.downlink_bytes);
        }
        assert!(sparse_out.global_weights.iter().all(Matrix::is_finite));
    }

    #[test]
    fn compression_modes_preserve_message_counts() {
        // Compression changes payload *sizes*, never the protocol.
        let mut plain = small_sim(false);
        let plain_out = plain.run().expect("plain");
        for mode in [
            crate::compression::CompressionMode::Quant8,
            crate::compression::CompressionMode::TopKDelta { k: 4 },
        ] {
            let mut sim = small_sim(false);
            sim.config.compression = mode;
            let out = sim.run().expect("compressed run");
            assert_eq!(out.traffic.messages, plain_out.traffic.messages);
            assert_eq!(out.traffic.retries, plain_out.traffic.retries);
            assert!(out.traffic.bytes < plain_out.traffic.bytes);
        }
    }

    #[test]
    fn zero_k_topk_is_rejected_up_front() {
        let mut sim = small_sim(false);
        sim.config.compression = crate::compression::CompressionMode::TopKDelta { k: 0 };
        assert!(matches!(
            sim.run().unwrap_err(),
            FederatedError::InvalidConfig { field, .. } if field == "compression.k"
        ));
    }

    #[test]
    fn quant8_composes_with_nan_flood_corruption() {
        use crate::faults::{Corruption, FaultPlan, RoundSelector};
        let plan = FaultPlan::new(5).with_rule(
            "z105",
            RoundSelector::Every,
            FaultKind::Corrupt {
                corruption: Corruption::NanFlood,
            },
        );
        // The quantizer must carry the NaN payload faithfully: under
        // FedAvg the poison reaches and destroys the aggregate. One round
        // only — a second round would train on the poisoned global and
        // surface as a (legitimate) non-finite-loss error.
        let mut avg = small_sim(false);
        avg.config.rounds = 1;
        avg.config.compression = crate::compression::CompressionMode::Quant8;
        avg.config.faults = Some(plan.clone());
        let avg_out = avg.run().expect("no panic under NaN-flood + quant8");
        assert!(
            avg_out
                .global_weights
                .iter()
                .any(|m| m.as_slice().iter().any(|v| v.is_nan())),
            "quantization must not silently launder NaN poison"
        );
        // …while the robust rules contain it, exactly as uncompressed.
        let mut med = small_sim(false);
        med.config.aggregator = Aggregator::Median;
        med.config.compression = crate::compression::CompressionMode::Quant8;
        med.config.faults = Some(plan);
        let med_out = med.run().expect("median run");
        assert!(med_out.global_weights.iter().all(Matrix::is_finite));
    }

    #[test]
    fn digest_with_compression_is_thread_stable() {
        let run = |parallel: bool, threads: usize| {
            let mut sim = small_sim(parallel);
            sim.config.threads = threads;
            sim.config.compression = crate::compression::CompressionMode::Quant8;
            let digest = sim.run().expect("run").digest();
            evfad_tensor::parallel::set_threads(0);
            digest
        };
        let a = run(false, 1);
        let b = run(true, 4);
        assert_eq!(a, b);
        let ja = serde_json::to_vec(&a).expect("json");
        let jb = serde_json::to_vec(&b).expect("json");
        assert_eq!(ja, jb, "digest JSON must be byte-identical");
        // The digest carries the comms stats.
        assert!(a.rounds.iter().all(|r| r.uplink_bytes > 0));
        assert!(a.rounds.iter().all(|r| r.compression_ratio > 1.0));
    }

    #[test]
    fn threads_setting_does_not_change_results() {
        let mut one = small_sim(false);
        one.config.threads = 1;
        let mut four = small_sim(false);
        four.config.threads = 4;
        let out_one = one.run().expect("threads=1");
        let out_four = four.run().expect("threads=4");
        evfad_tensor::parallel::set_threads(0);
        assert_eq!(out_one.global_weights, out_four.global_weights);
    }

    #[test]
    fn identical_clients_keep_identical_weights() {
        // If every client holds the same data, local models stay in sync
        // and FedAvg equals each local model.
        let cfg = FederatedConfig {
            rounds: 2,
            epochs_per_round: 1,
            batch_size: 8,
            parallel: false,
            ..FederatedConfig::default()
        };
        let mut sim = FederatedSimulation::new(forecaster_model(3, 5), cfg);
        sim.add_client("a", sine_samples(16, 0.0));
        sim.add_client("b", sine_samples(16, 0.0));
        let out = sim.run().expect("run");
        let wa = sim.clients()[0].model().weights();
        let wb = sim.clients()[1].model().weights();
        assert_eq!(wa, wb);
        for (g, l) in out.global_weights.iter().zip(&wa) {
            for (x, y) in g.as_slice().iter().zip(l.as_slice()) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn federation_improves_over_initialisation() {
        let mut sim = small_sim(false);
        let test = sine_samples(32, 0.0);
        let mut init = forecaster_model(4, 3);
        let before = init.evaluate(&test, Loss::Mse);
        sim.run().expect("run");
        let after = sim.clients_mut()[0].evaluate(&test, Loss::Mse);
        assert!(after < before, "before={before} after={after}");
    }

    #[test]
    fn dp_noise_perturbs_global() {
        let mut clean = small_sim(false);
        let clean_out = clean.run().expect("run");
        let mut noisy = small_sim(false);
        noisy.config.dp = Some(crate::privacy::DpConfig::moderate());
        let noisy_out = noisy.run().expect("run");
        assert_ne!(clean_out.global_weights, noisy_out.global_weights);
    }

    #[test]
    fn partial_participation_trains_a_subset() {
        let mut sim = small_sim(false);
        sim.config.participation = 0.34; // 1 of 3 clients per round
        let out = sim.run().expect("run");
        for r in &out.rounds {
            assert_eq!(r.participants.len(), 1);
            assert_eq!(r.client_losses.len(), 1);
        }
        // Different rounds may sample different clients.
        assert!(out.global_weights.iter().all(Matrix::is_finite));
    }

    #[test]
    fn full_participation_lists_everyone() {
        let mut sim = small_sim(false);
        let out = sim.run().expect("run");
        for r in &out.rounds {
            assert_eq!(r.participants.len(), 3);
        }
    }

    #[test]
    fn proximal_mu_changes_but_does_not_break_training() {
        let mut plain = small_sim(false);
        let plain_out = plain.run().expect("plain");
        let mut prox = small_sim(false);
        prox.config.proximal_mu = 0.3;
        let prox_out = prox.run().expect("prox");
        assert_ne!(plain_out.global_weights, prox_out.global_weights);
        assert!(prox_out.global_weights.iter().all(Matrix::is_finite));
    }

    #[test]
    fn model_with_weights_round_trips() {
        let mut sim = small_sim(false);
        let out = sim.run().expect("run");
        let model = sim.model_with_weights(&out.global_weights).expect("fits");
        assert_eq!(model.weights(), out.global_weights);
        assert!(sim.model_with_weights(&[Matrix::zeros(1, 1)]).is_err());
    }

    #[test]
    fn invalid_participation_is_rejected_up_front() {
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            let mut sim = small_sim(false);
            sim.config.participation = bad;
            match sim.run().unwrap_err() {
                FederatedError::InvalidConfig { field, .. } => {
                    assert_eq!(field, "participation", "for participation = {bad}");
                }
                other => panic!("expected InvalidConfig, got {other}"),
            }
        }
    }

    #[test]
    fn zero_schedule_knobs_are_rejected() {
        for (field, mutate) in [
            (
                "rounds",
                Box::new(|c: &mut FederatedConfig| c.rounds = 0) as Box<dyn Fn(&mut _)>,
            ),
            (
                "epochs_per_round",
                Box::new(|c: &mut FederatedConfig| c.epochs_per_round = 0),
            ),
            (
                "batch_size",
                Box::new(|c: &mut FederatedConfig| c.batch_size = 0),
            ),
        ] {
            let mut sim = small_sim(false);
            mutate(&mut sim.config);
            match sim.run().unwrap_err() {
                FederatedError::InvalidConfig { field: f, .. } => assert_eq!(f, field),
                other => panic!("expected InvalidConfig for {field}, got {other}"),
            }
        }
    }

    #[test]
    fn bad_proximal_mu_is_rejected() {
        let mut sim = small_sim(false);
        sim.config.proximal_mu = f64::INFINITY;
        assert!(matches!(
            sim.run().unwrap_err(),
            FederatedError::InvalidConfig { field, .. } if field == "proximal_mu"
        ));
    }

    #[test]
    fn min_participants_beyond_client_count_is_rejected() {
        let mut sim = small_sim(false);
        sim.config.faults = Some(crate::faults::FaultPlan::new(7).with_min_participants(4));
        assert!(matches!(
            sim.run().unwrap_err(),
            FederatedError::InvalidConfig { field, .. } if field == "faults.min_participants"
        ));
    }

    #[test]
    fn invalid_fault_plan_is_rejected_before_training() {
        let mut sim = small_sim(false);
        sim.config.faults = Some(crate::faults::FaultPlan::new(7).with_timeout(-1.0));
        assert!(matches!(
            sim.run().unwrap_err(),
            FederatedError::InvalidConfig { .. }
        ));
    }

    #[test]
    fn dropped_client_is_excluded_and_logged() {
        use crate::faults::{FaultPlan, RoundSelector};
        let mut sim = small_sim(false);
        sim.config.faults =
            Some(FaultPlan::new(3).with_rule("z105", RoundSelector::Every, FaultKind::DropOut));
        let out = sim.run().expect("run");
        for r in &out.rounds {
            assert_eq!(r.participants, vec!["z102", "z108"]);
            assert_eq!(r.faults.len(), 1);
            assert_eq!(r.faults[0].client_id, "z105");
            assert_eq!(r.faults[0].outcome, FaultOutcome::Dropped);
        }
        assert_eq!(out.fault_events().count(), 2);
    }

    #[test]
    fn empty_fault_plan_matches_the_clean_run() {
        let mut clean = small_sim(false);
        let clean_out = clean.run().expect("clean");
        let mut nofaults = small_sim(false);
        nofaults.config.faults = Some(crate::faults::FaultPlan::new(99));
        let fault_out = nofaults.run().expect("empty plan");
        assert_eq!(clean_out.global_weights, fault_out.global_weights);
        assert_eq!(clean_out.traffic, fault_out.traffic);
        assert!(fault_out.fault_events().next().is_none());
    }

    #[test]
    fn starved_round_errors_cleanly() {
        use crate::faults::{FaultPlan, RoundSelector};
        let mut sim = small_sim(false);
        let mut plan = FaultPlan::new(1).with_min_participants(2);
        for id in ["z105", "z108"] {
            plan = plan.with_rule(id, RoundSelector::Every, FaultKind::DropOut);
        }
        sim.config.faults = Some(plan);
        assert_eq!(
            sim.run().unwrap_err(),
            FederatedError::InsufficientParticipants {
                round: 0,
                survivors: 1,
                required: 2,
            }
        );
    }

    #[test]
    fn straggler_delay_extends_simulated_time() {
        use crate::faults::{FaultPlan, RoundSelector};
        let mut clean = small_sim(false);
        let clean_out = clean.run().expect("clean");
        let mut slow = small_sim(false);
        slow.config.faults = Some(FaultPlan::new(5).with_rule(
            "z102",
            RoundSelector::Only { round: 1 },
            FaultKind::Straggler {
                delay_seconds: 100.0,
            },
        ));
        let out = slow.run().expect("straggler");
        // No timeout configured: the delayed update is still aggregated.
        assert_eq!(out.rounds[1].participants.len(), 3);
        assert_eq!(out.rounds[1].client_extra_seconds[0], 100.0);
        assert!(
            out.simulated_distributed_seconds() >= clean_out.simulated_distributed_seconds() + 99.0
        );
    }

    #[test]
    fn timed_out_straggler_is_metered_but_not_aggregated() {
        use crate::faults::{FaultPlan, RoundSelector};
        let mut clean = small_sim(false);
        let clean_out = clean.run().expect("clean");
        let mut sim = small_sim(false);
        sim.config.faults = Some(FaultPlan::new(5).with_timeout(10.0).with_rule(
            "z108",
            RoundSelector::Every,
            FaultKind::Straggler {
                delay_seconds: 50.0,
            },
        ));
        let out = sim.run().expect("timeout run");
        for r in &out.rounds {
            assert_eq!(r.participants, vec!["z102", "z105"]);
            assert_eq!(r.timeout_wait_seconds, 10.0);
            assert!(matches!(
                r.faults[0].outcome,
                FaultOutcome::TimedOut { delay_seconds, timeout_seconds }
                    if delay_seconds == 50.0 && timeout_seconds == 10.0
            ));
        }
        // The late upload still crossed the channel: same message count as
        // a clean run, fewer aggregated participants.
        assert_eq!(out.traffic.messages, clean_out.traffic.messages);
    }

    #[test]
    fn transient_retries_are_counted_in_traffic() {
        use crate::faults::{FaultPlan, RoundSelector};
        let mut clean = small_sim(false);
        let clean_out = clean.run().expect("clean");
        let mut sim = small_sim(false);
        sim.config.faults = Some(FaultPlan::new(5).with_retry(3, 0.5).with_rule(
            "z105",
            RoundSelector::Every,
            FaultKind::Transient { failures: 2 },
        ));
        let out = sim.run().expect("transient");
        // 2 extra sends per round × 2 rounds.
        assert_eq!(out.traffic.retries, 4);
        assert_eq!(out.traffic.messages, clean_out.traffic.messages + 4);
        assert_eq!(
            out.traffic.messages - out.traffic.retries,
            clean_out.traffic.messages
        );
        // Backoff 0.5 * (2^2 - 1) = 1.5 simulated seconds of extra wait.
        let r0 = &out.rounds[0];
        assert_eq!(r0.participants.len(), 3);
        assert_eq!(r0.client_extra_seconds[1], 1.5);
        assert!(matches!(
            r0.faults[0].outcome,
            FaultOutcome::Recovered { failed_attempts: 2, backoff_seconds } if backoff_seconds == 1.5
        ));
    }

    #[test]
    fn exhausted_retries_drop_the_update_but_meter_the_attempts() {
        use crate::faults::{FaultPlan, RoundSelector};
        let mut sim = small_sim(false);
        sim.config.faults = Some(FaultPlan::new(5).with_retry(1, 1.0).with_rule(
            "z105",
            RoundSelector::Only { round: 0 },
            FaultKind::Transient { failures: 5 },
        ));
        let out = sim.run().expect("exhausted");
        assert_eq!(out.rounds[0].participants, vec!["z102", "z108"]);
        assert!(matches!(
            out.rounds[0].faults[0].outcome,
            FaultOutcome::RetriesExhausted { failed_attempts: 2 }
        ));
        // budget 1 → initial + 1 retry metered.
        assert_eq!(out.traffic.retries, 1);
        assert_eq!(out.rounds[1].participants.len(), 3);
    }

    #[test]
    fn digest_is_reproducible_and_ignores_wall_clock() {
        use crate::faults::{FaultPlan, RoundSelector};
        let plan = FaultPlan::new(11)
            .with_retry(2, 1.0)
            .with_rule(
                "z105",
                RoundSelector::Probability { p: 0.5 },
                FaultKind::DropOut,
            )
            .with_rule(
                "z108",
                RoundSelector::Every,
                FaultKind::Transient { failures: 1 },
            );
        let run = |parallel: bool| {
            let mut sim = small_sim(parallel);
            sim.config.faults = Some(plan.clone());
            sim.run().expect("run").digest()
        };
        let a = run(false);
        let b = run(true);
        assert_eq!(a, b);
        let ja = serde_json::to_vec(&a).expect("json");
        let jb = serde_json::to_vec(&b).expect("json");
        assert_eq!(ja, jb, "digest JSON must be byte-identical");
        assert_eq!(a.weights_checksum.len(), 16);
    }

    #[test]
    fn config_with_faults_serde_round_trips() {
        use crate::faults::{FaultPlan, RoundSelector};
        let cfg = FederatedConfig {
            faults: Some(FaultPlan::new(3).with_timeout(5.0).with_rule(
                "a",
                RoundSelector::From { round: 1 },
                FaultKind::Straggler { delay_seconds: 2.0 },
            )),
            ..FederatedConfig::default()
        };
        let json = serde_json::to_string(&cfg).expect("serialize");
        let back: FederatedConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(cfg, back);
        // Old configs without the field still parse.
        let legacy: FederatedConfig =
            serde_json::from_str(&serde_json::to_string(&FederatedConfig::default()).unwrap())
                .expect("legacy");
        assert_eq!(legacy.faults, None);
    }
}
