//! Round orchestration: broadcast → parallel local training → aggregate.

use crate::aggregate::Aggregator;
use crate::client::{FedClient, LocalUpdate};
use crate::error::FederatedError;
use crate::privacy::DpConfig;
use crate::transport::MeteredChannel;
use evfad_nn::{Sample, Sequential, TrainConfig};
use evfad_tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Schedule and behaviour of a federated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederatedConfig {
    /// Number of communication rounds (paper: 5).
    pub rounds: usize,
    /// Local epochs per round (paper: 10).
    pub epochs_per_round: usize,
    /// Local mini-batch size (paper: 32).
    pub batch_size: usize,
    /// Aggregation rule (paper: FedAvg).
    pub aggregator: Aggregator,
    /// Train clients on parallel threads (the distributed-hardware model;
    /// disable for deterministic single-thread profiling).
    pub parallel: bool,
    /// Intra-op thread count for the tensor kernels (`0` = one per CPU).
    ///
    /// Composes with [`FederatedConfig::parallel`]: client threads share
    /// the process-wide tensor worker pool, so total CPU use stays bounded
    /// regardless of the client count. Results are bitwise identical for
    /// every setting — see `evfad_tensor::parallel`.
    pub threads: usize,
    /// Optional client-side differential privacy.
    pub dp: Option<DpConfig>,
    /// FedProx proximal pull in `[0, 1]` applied between local epochs
    /// (`0.0` = plain FedAvg, the paper's setting).
    pub proximal_mu: f64,
    /// Fraction of clients participating per round in `(0, 1]`. At least
    /// one client always participates. Models node downtime — the paper's
    /// §III-F resilience claim.
    pub participation: f64,
    /// Seed for the per-round participant sampling.
    pub sampling_seed: u64,
}

impl Default for FederatedConfig {
    fn default() -> Self {
        Self {
            rounds: 5,
            epochs_per_round: 10,
            batch_size: 32,
            aggregator: Aggregator::FedAvg,
            parallel: true,
            threads: 0,
            dp: None,
            proximal_mu: 0.0,
            participation: 1.0,
            sampling_seed: 0,
        }
    }
}

/// Statistics for one communication round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Zero-based round index.
    pub round: usize,
    /// Ids of the clients that participated this round.
    pub participants: Vec<String>,
    /// Final local training loss per participating client.
    pub client_losses: Vec<f64>,
    /// Per-client local-training seconds (client order). On truly
    /// distributed hardware a round lasts as long as its slowest client.
    pub client_seconds: Vec<f64>,
    /// Wall-clock duration of the round (broadcast + training + aggregate)
    /// on *this* host.
    #[serde(skip, default)]
    pub duration: Duration,
}

/// Result of a completed federated run.
#[derive(Debug, Clone)]
pub struct FederatedOutcome {
    /// Per-round statistics.
    pub rounds: Vec<RoundStats>,
    /// The final aggregated global weights.
    pub global_weights: Vec<Matrix>,
    /// Total wall-clock training time.
    pub total_duration: Duration,
    /// Bytes/messages exchanged (client→server updates and
    /// server→client broadcasts).
    pub traffic: crate::transport::TrafficTotals,
}

impl FederatedOutcome {
    /// Training time the federation would take on truly distributed
    /// hardware: each round lasts as long as its slowest client, rounds run
    /// back to back. (On a single-core simulation host the wall clock in
    /// [`FederatedOutcome::total_duration`] serialises the clients and
    /// hides the parallelism the paper measures.)
    pub fn simulated_distributed_seconds(&self) -> f64 {
        self.rounds
            .iter()
            .map(|r| r.client_seconds.iter().copied().fold(0.0_f64, f64::max))
            .sum()
    }
}

/// Orchestrates FedAvg-style training over in-process clients.
///
/// The schedule follows the paper: each round the server broadcasts the
/// global weights, every client trains `EPOCHS_PER_ROUND` local epochs in
/// parallel, and the server aggregates the updates. After `run()` returns,
/// each client's model holds its **locally trained** weights from the final
/// round (the personalised read-out used for the paper's per-client
/// evaluation) while [`FederatedOutcome::global_weights`] holds the final
/// aggregate (the global read-out).
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug)]
pub struct FederatedSimulation {
    template: Sequential,
    config: FederatedConfig,
    clients: Vec<FedClient>,
    channel: MeteredChannel,
}

impl FederatedSimulation {
    /// Creates a simulation from a model template; every client gets an
    /// identical copy (identical initial weights, as in the paper).
    pub fn new(template: Sequential, config: FederatedConfig) -> Self {
        Self {
            template,
            config,
            clients: Vec::new(),
            channel: MeteredChannel::new(),
        }
    }

    /// Adds a client holding `samples` as its private dataset.
    pub fn add_client(&mut self, id: impl Into<String>, samples: Vec<Sample>) {
        let model = self.template.clone();
        self.clients.push(FedClient::new(id, model, samples));
    }

    /// The configured schedule.
    pub fn config(&self) -> &FederatedConfig {
        &self.config
    }

    /// Borrow of the clients (after `run()`, their models hold the
    /// final-round locally-trained weights).
    pub fn clients(&self) -> &[FedClient] {
        &self.clients
    }

    /// Mutable borrow of the clients.
    pub fn clients_mut(&mut self) -> &mut [FedClient] {
        &mut self.clients
    }

    /// Runs the full schedule.
    ///
    /// # Errors
    ///
    /// * [`FederatedError::NoClients`] when no client was added;
    /// * client-training and aggregation errors are propagated.
    pub fn run(&mut self) -> Result<FederatedOutcome, FederatedError> {
        if self.clients.is_empty() {
            return Err(FederatedError::NoClients);
        }
        evfad_tensor::parallel::set_threads(self.config.threads);
        self.channel.reset();
        let start = Instant::now();
        let mut rounds = Vec::with_capacity(self.config.rounds);
        let mut global = self.template.weights();
        let train_cfg = TrainConfig {
            epochs: self.config.epochs_per_round,
            batch_size: self.config.batch_size,
            ..TrainConfig::default()
        };

        for round in 0..self.config.rounds {
            let round_start = Instant::now();
            // Broadcast: after round 0 every client starts from the global
            // model (round 0 starts from the shared initialisation).
            if round > 0 {
                for client in &mut self.clients {
                    self.channel.record(&global);
                    client.receive_global(&global)?;
                }
            }
            // Sample this round's participants (all of them at the
            // paper's participation = 1.0).
            let participants = self.sample_participants(round);
            // Local training (parallel across clients, as on real
            // distributed hardware).
            let updates = self.train_selected(&train_cfg, &participants, &global)?;
            // Optional client-side DP before anything leaves the client.
            let updates = if let Some(dp) = self.config.dp {
                updates
                    .into_iter()
                    .enumerate()
                    .map(|(i, mut u)| {
                        u.weights = crate::privacy::privatize(
                            &u.weights,
                            &global,
                            dp,
                            (round * 1000 + i) as u64,
                        );
                        u
                    })
                    .collect()
            } else {
                updates
            };
            // Meter the payload that actually crosses the channel — after
            // privatisation, so DP noise is part of the measured bytes.
            for update in &updates {
                self.channel.record(&update.weights);
            }
            global = self.config.aggregator.aggregate(&updates)?;
            rounds.push(RoundStats {
                round,
                participants: updates.iter().map(|u| u.client_id.clone()).collect(),
                client_losses: updates.iter().map(|u| u.train_loss).collect(),
                client_seconds: updates.iter().map(|u| u.duration.as_secs_f64()).collect(),
                duration: round_start.elapsed(),
            });
        }

        Ok(FederatedOutcome {
            rounds,
            global_weights: global,
            total_duration: start.elapsed(),
            traffic: self.channel.totals(),
        })
    }

    /// Indices of this round's participating clients, in client order.
    fn sample_participants(&self, round: usize) -> Vec<usize> {
        let n = self.clients.len();
        let take = ((n as f64) * self.config.participation.clamp(0.0, 1.0)).round() as usize;
        let take = take.clamp(1, n);
        if take == n {
            return (0..n).collect();
        }
        let mut rng =
            StdRng::seed_from_u64(self.config.sampling_seed ^ (round as u64).wrapping_mul(0x9E37));
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(&mut rng);
        idx.truncate(take);
        idx.sort_unstable();
        idx
    }

    fn train_selected(
        &mut self,
        cfg: &TrainConfig,
        participants: &[usize],
        global: &[Matrix],
    ) -> Result<Vec<LocalUpdate>, FederatedError> {
        let mu = self.config.proximal_mu;
        let selected: Vec<&mut FedClient> = {
            let set: std::collections::HashSet<usize> = participants.iter().copied().collect();
            self.clients
                .iter_mut()
                .enumerate()
                .filter(|(i, _)| set.contains(i))
                .map(|(_, c)| c)
                .collect()
        };
        let train_one = |client: &mut FedClient| -> Result<LocalUpdate, FederatedError> {
            if mu > 0.0 {
                client.train_local_proximal(cfg, global, mu)
            } else {
                client.train_local(cfg)
            }
        };
        if self.config.parallel {
            let results: Vec<Result<LocalUpdate, FederatedError>> =
                crossbeam::thread::scope(|scope| {
                    let handles: Vec<_> = selected
                        .into_iter()
                        .map(|client| scope.spawn(move |_| train_one(client)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("client thread panicked"))
                        .collect()
                })
                .expect("crossbeam scope");
            results.into_iter().collect()
        } else {
            selected.into_iter().map(train_one).collect()
        }
    }

    /// Builds a fresh model carrying the given weights (e.g. the final
    /// global aggregate) for evaluation.
    ///
    /// # Errors
    ///
    /// [`FederatedError::Aggregation`] if the weights do not fit the
    /// template architecture.
    pub fn model_with_weights(&self, weights: &[Matrix]) -> Result<Sequential, FederatedError> {
        let mut model = self.template.clone();
        model
            .set_weights(weights)
            .map_err(|e| FederatedError::Aggregation(e.to_string()))?;
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evfad_nn::{forecaster_model, Loss};

    fn sine_samples(n: usize, phase: f64) -> Vec<Sample> {
        (0..n)
            .map(|i| {
                let xs: Vec<f64> = (0..6)
                    .map(|t| ((i + t) as f64 * 0.5 + phase).sin())
                    .collect();
                Sample::new(
                    Matrix::column_vector(&xs),
                    Matrix::from_vec(1, 1, vec![((i + 6) as f64 * 0.5 + phase).sin()]),
                )
            })
            .collect()
    }

    fn small_sim(parallel: bool) -> FederatedSimulation {
        let cfg = FederatedConfig {
            rounds: 2,
            epochs_per_round: 2,
            batch_size: 16,
            parallel,
            ..FederatedConfig::default()
        };
        let mut sim = FederatedSimulation::new(forecaster_model(4, 3), cfg);
        sim.add_client("z102", sine_samples(32, 0.0));
        sim.add_client("z105", sine_samples(32, 0.8));
        sim.add_client("z108", sine_samples(32, 1.6));
        sim
    }

    #[test]
    fn runs_all_rounds() {
        let mut sim = small_sim(false);
        let out = sim.run().expect("run");
        assert_eq!(out.rounds.len(), 2);
        assert_eq!(out.rounds[0].client_losses.len(), 3);
        assert!(out.global_weights.iter().all(Matrix::is_finite));
    }

    #[test]
    fn no_clients_is_an_error() {
        let mut sim = FederatedSimulation::new(forecaster_model(4, 3), FederatedConfig::default());
        assert_eq!(sim.run().unwrap_err(), FederatedError::NoClients);
    }

    #[test]
    fn parallel_and_serial_agree() {
        // With identical seeds and deterministic clients, thread scheduling
        // must not affect results.
        let mut a = small_sim(false);
        let mut b = small_sim(true);
        let out_a = a.run().expect("serial");
        let out_b = b.run().expect("parallel");
        assert_eq!(out_a.global_weights, out_b.global_weights);
    }

    #[test]
    fn traffic_counts_updates_and_broadcasts() {
        let mut sim = small_sim(false);
        let out = sim.run().expect("run");
        // Round 0: 3 updates. Round 1: 3 broadcasts + 3 updates.
        assert_eq!(out.traffic.messages, 9);
        assert!(out.traffic.bytes > 0);
    }

    #[test]
    fn dp_and_clean_runs_meter_the_same_message_count() {
        let mut clean = small_sim(false);
        let clean_out = clean.run().expect("clean run");
        let mut noisy = small_sim(false);
        noisy.config.dp = Some(crate::privacy::DpConfig::moderate());
        let noisy_out = noisy.run().expect("dp run");
        // DP perturbs payload *contents*, never the protocol: both runs
        // exchange the same number of messages, and both meters measure
        // the payload that actually crossed the channel.
        assert_eq!(clean_out.traffic.messages, noisy_out.traffic.messages);
        assert!(clean_out.traffic.bytes > 0);
        assert!(noisy_out.traffic.bytes > 0);
    }

    #[test]
    fn metered_bytes_cover_the_privatized_payload() {
        // With DP on, the bytes recorded for an update must match the
        // serialised size of the *noised* weights, not the raw ones.
        let mut noisy = small_sim(false);
        noisy.config.rounds = 1;
        noisy.config.dp = Some(crate::privacy::DpConfig::moderate());
        let out = noisy.run().expect("dp run");
        // Round 0 sends exactly one update per client and no broadcasts.
        assert_eq!(out.traffic.messages, 3);
        let per_client: Vec<usize> = noisy
            .clients()
            .iter()
            .map(|c| {
                serde_json::to_vec(&c.model().weights())
                    .expect("serialize")
                    .len()
            })
            .collect();
        // The clients keep their raw local weights, while the channel saw
        // the noised versions; sizes can differ per weight, but the meter
        // must be in the same ballpark as a full weight payload (i.e. it
        // recorded real payloads, not zero or a placeholder).
        let raw_total: usize = per_client.iter().sum();
        assert!(out.traffic.bytes > raw_total / 2);
    }

    #[test]
    fn threads_setting_does_not_change_results() {
        let mut one = small_sim(false);
        one.config.threads = 1;
        let mut four = small_sim(false);
        four.config.threads = 4;
        let out_one = one.run().expect("threads=1");
        let out_four = four.run().expect("threads=4");
        evfad_tensor::parallel::set_threads(0);
        assert_eq!(out_one.global_weights, out_four.global_weights);
    }

    #[test]
    fn identical_clients_keep_identical_weights() {
        // If every client holds the same data, local models stay in sync
        // and FedAvg equals each local model.
        let cfg = FederatedConfig {
            rounds: 2,
            epochs_per_round: 1,
            batch_size: 8,
            parallel: false,
            ..FederatedConfig::default()
        };
        let mut sim = FederatedSimulation::new(forecaster_model(3, 5), cfg);
        sim.add_client("a", sine_samples(16, 0.0));
        sim.add_client("b", sine_samples(16, 0.0));
        let out = sim.run().expect("run");
        let wa = sim.clients()[0].model().weights();
        let wb = sim.clients()[1].model().weights();
        assert_eq!(wa, wb);
        for (g, l) in out.global_weights.iter().zip(&wa) {
            for (x, y) in g.as_slice().iter().zip(l.as_slice()) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn federation_improves_over_initialisation() {
        let mut sim = small_sim(false);
        let test = sine_samples(32, 0.0);
        let mut init = forecaster_model(4, 3);
        let before = init.evaluate(&test, Loss::Mse);
        sim.run().expect("run");
        let after = sim.clients_mut()[0].evaluate(&test, Loss::Mse);
        assert!(after < before, "before={before} after={after}");
    }

    #[test]
    fn dp_noise_perturbs_global() {
        let mut clean = small_sim(false);
        let clean_out = clean.run().expect("run");
        let mut noisy = small_sim(false);
        noisy.config.dp = Some(crate::privacy::DpConfig::moderate());
        let noisy_out = noisy.run().expect("run");
        assert_ne!(clean_out.global_weights, noisy_out.global_weights);
    }

    #[test]
    fn partial_participation_trains_a_subset() {
        let mut sim = small_sim(false);
        sim.config.participation = 0.34; // 1 of 3 clients per round
        let out = sim.run().expect("run");
        for r in &out.rounds {
            assert_eq!(r.participants.len(), 1);
            assert_eq!(r.client_losses.len(), 1);
        }
        // Different rounds may sample different clients.
        assert!(out.global_weights.iter().all(Matrix::is_finite));
    }

    #[test]
    fn full_participation_lists_everyone() {
        let mut sim = small_sim(false);
        let out = sim.run().expect("run");
        for r in &out.rounds {
            assert_eq!(r.participants.len(), 3);
        }
    }

    #[test]
    fn proximal_mu_changes_but_does_not_break_training() {
        let mut plain = small_sim(false);
        let plain_out = plain.run().expect("plain");
        let mut prox = small_sim(false);
        prox.config.proximal_mu = 0.3;
        let prox_out = prox.run().expect("prox");
        assert_ne!(plain_out.global_weights, prox_out.global_weights);
        assert!(prox_out.global_weights.iter().all(Matrix::is_finite));
    }

    #[test]
    fn model_with_weights_round_trips() {
        let mut sim = small_sim(false);
        let out = sim.run().expect("run");
        let model = sim.model_with_weights(&out.global_weights).expect("fits");
        assert_eq!(model.weights(), out.global_weights);
        assert!(sim.model_with_weights(&[Matrix::zeros(1, 1)]).is_err());
    }
}
