//! Streaming aggregation: fold client updates one at a time in O(model)
//! memory.
//!
//! The batch path ([`Aggregator::aggregate`]) needs every update
//! materialised at once — O(clients × model) server memory, which is what
//! caps a federation at a few hundred clients. A [`StreamingAggregator`]
//! instead holds a fixed-size accumulator and consumes updates as they
//! arrive:
//!
//! * [`StreamingFedAvg`] — **bitwise identical** to the batch FedAvg. The
//!   batch rule folds `acc ← acc + w_i · update_i` left to right over the
//!   kept updates; the streaming rule performs the *same* `axpy` sequence
//!   in the same order with the same weights (the total sample count is
//!   supplied up front, exactly as the batch path computes it), so every
//!   intermediate rounding step matches. State: one model's worth of f64s.
//! * [`StreamingTrimmedMean`] — semantically identical to the batch
//!   trimmed mean (same kept set per coordinate, same non-finite
//!   containment rule via [`trim_split`]) but sums in arrival order minus
//!   the tracked extremes rather than in sorted order, so results agree to
//!   floating-point reassociation (≈1 ulp), not bitwise. State per
//!   coordinate: running sum, non-finite count, and the `trim` smallest /
//!   largest values seen — O(model · trim).
//!
//! Median and Krum cannot stream: the median needs the full per-coordinate
//! distribution and Krum needs all pairwise distances. They stay on the
//! batch path ([`Aggregator::supports_streaming`] returns `false`), which
//! in a hierarchical topology still only materialises one *shard* — or one
//! tier of edge partials — at a time (see [`crate::scale`]).
//!
//! [`trim_split`]: crate::aggregate — shared with the batch rule so both
//! paths agree on which values are trimmed.

use crate::aggregate::{trim_split, Aggregator};
use crate::client::LocalUpdate;
use crate::error::FederatedError;
use crate::wire;
use evfad_tensor::Matrix;

/// Folds updates one at a time into O(model) aggregation state.
///
/// Contract: `ingest` every update in arrival order, then call `finish`
/// exactly once. The expected update count and (for FedAvg) the total
/// sample weight are fixed at construction — the caller knows both before
/// the first payload arrives because fault decisions are made up front (see
/// [`crate::faults`]).
pub trait StreamingAggregator: Send {
    /// Folds one update into the accumulator.
    ///
    /// # Errors
    ///
    /// [`FederatedError::Aggregation`] when the update's shapes disagree
    /// with the first ingested update or more updates arrive than declared.
    fn ingest(&mut self, update: &LocalUpdate) -> Result<(), FederatedError>;

    /// Folds one `EVQ8`-encoded update straight out of its wire payload —
    /// the fused decode-into-fold fast path. **Bitwise identical** to
    /// `decode_quantized(payload).dequantize()` followed by [`ingest`]
    /// (NaN floods included): the payload view yields exactly the values
    /// `dequantize` would materialise, and the fold performs the same
    /// arithmetic in the same order — without allocating a `Vec<Matrix>`
    /// per update.
    ///
    /// The payload is structurally validated **up front** (see
    /// [`wire::quantized_view`]); a corrupt payload errors before the
    /// accumulator is touched, so a failed ingest never leaves partial
    /// state behind.
    ///
    /// [`ingest`]: StreamingAggregator::ingest
    ///
    /// # Errors
    ///
    /// [`FederatedError::Aggregation`] on a malformed payload, mismatched
    /// shapes, or more updates than declared.
    fn ingest_quantized(
        &mut self,
        client_id: &str,
        sample_count: usize,
        payload: &[u8],
    ) -> Result<(), FederatedError>;

    /// Folds one `EVSK`-encoded sparse delta straight out of its wire
    /// payload against `base` (the round's broadcast global) — bitwise
    /// identical to `decode_sparse(payload).apply(base)` followed by
    /// [`ingest`], with the same up-front validation contract as
    /// [`ingest_quantized`].
    ///
    /// [`ingest`]: StreamingAggregator::ingest
    /// [`ingest_quantized`]: StreamingAggregator::ingest_quantized
    ///
    /// # Errors
    ///
    /// [`FederatedError::Aggregation`] on a malformed payload, mismatched
    /// shapes, or more updates than declared.
    ///
    /// # Panics
    ///
    /// Panics if `base` does not match the payload's recorded shapes, with
    /// the same messages as [`crate::compression::SparseDelta::apply`].
    fn ingest_topk(
        &mut self,
        client_id: &str,
        sample_count: usize,
        base: &[Matrix],
        payload: &[u8],
    ) -> Result<(), FederatedError>;

    /// Updates ingested so far.
    fn ingested(&self) -> usize;

    /// Approximate bytes of live aggregation state — the quantity
    /// `bench_scale` reports as peak aggregation memory.
    ///
    /// Contract: state is allocated lazily on the first `ingest` and its
    /// size is **constant from then on** — it may never grow with the
    /// number of updates folded. The scale engine's parallel edge fan-out
    /// builds its O(model · workers) peak bound on this (and asserts it
    /// in-run under `verify_streaming`): one accumulator per active
    /// worker is only a bound if no accumulator quietly inflates.
    fn state_bytes(&self) -> usize;

    /// Consumes the accumulator and returns the aggregated weights.
    ///
    /// # Errors
    ///
    /// * [`FederatedError::NoClients`] when nothing was ingested;
    /// * [`FederatedError::Aggregation`] when fewer updates arrived than
    ///   declared, trimming removes everything, or a coordinate's
    ///   non-finite count exceeds the `2 * trim` containment budget.
    fn finish(self: Box<Self>) -> Result<Vec<Matrix>, FederatedError>;
}

impl Aggregator {
    /// The streaming form of this rule, when one exists.
    ///
    /// `expected` is the number of updates that will be ingested and
    /// `total_samples` their summed sample counts (in ingest order, as f64
    /// — the exact fold the batch FedAvg performs). Median and Krum return
    /// `None`: they need every update at once.
    pub fn streaming(
        self,
        total_samples: f64,
        expected: usize,
    ) -> Option<Box<dyn StreamingAggregator>> {
        match self {
            Aggregator::FedAvg => Some(Box::new(StreamingFedAvg::new(total_samples, expected))),
            Aggregator::TrimmedMean { trim } => {
                Some(Box::new(StreamingTrimmedMean::new(trim, expected)))
            }
            Aggregator::Median | Aggregator::Krum { .. } => None,
        }
    }
}

/// Shape guard shared by the streaming rules: the first update pins the
/// reference shapes; every later one must match, with the same error text
/// as the batch path.
fn check_shapes(
    reference: &mut Vec<(usize, usize)>,
    update: &LocalUpdate,
) -> Result<(), FederatedError> {
    if reference.is_empty() {
        *reference = update.weights.iter().map(Matrix::shape).collect();
        if reference.is_empty() {
            return Err(FederatedError::Aggregation(format!(
                "client {} sent an empty weight set",
                update.client_id
            )));
        }
        return Ok(());
    }
    let same = update.weights.len() == reference.len()
        && update
            .weights
            .iter()
            .zip(reference.iter())
            .all(|(m, &s)| m.shape() == s);
    if !same {
        return Err(FederatedError::Aggregation(format!(
            "client {} has mismatched weight shapes",
            update.client_id
        )));
    }
    Ok(())
}

/// [`check_shapes`] for the fused wire-payload paths: same pinning rule,
/// same error texts, shapes drawn from a validated payload view instead of
/// materialised matrices.
fn check_view_shapes(
    reference: &mut Vec<(usize, usize)>,
    client_id: &str,
    shapes: impl Iterator<Item = (usize, usize)>,
) -> Result<(), FederatedError> {
    if reference.is_empty() {
        reference.extend(shapes);
        if reference.is_empty() {
            return Err(FederatedError::Aggregation(format!(
                "client {client_id} sent an empty weight set"
            )));
        }
        return Ok(());
    }
    let mut n = 0usize;
    let mut same = true;
    for shape in shapes {
        same = same && reference.get(n) == Some(&shape);
        n += 1;
    }
    if !same || n != reference.len() {
        return Err(FederatedError::Aggregation(format!(
            "client {client_id} has mismatched weight shapes"
        )));
    }
    Ok(())
}

/// Maps a wire-validation failure on the fused path into the aggregation
/// error domain, naming the offending client.
fn bad_payload(client_id: &str, codec: &str, err: wire::WireError) -> FederatedError {
    FederatedError::Aggregation(format!(
        "client {client_id}: malformed {codec} payload: {err}"
    ))
}

/// Streaming sample-weighted Federated Averaging — bitwise identical to
/// [`Aggregator::FedAvg`]'s batch fold (see the module docs for why).
#[derive(Debug)]
pub struct StreamingFedAvg {
    total_samples: f64,
    expected: usize,
    seen: usize,
    shapes: Vec<(usize, usize)>,
    acc: Vec<Matrix>,
}

impl StreamingFedAvg {
    /// An accumulator expecting `expected` updates whose sample counts sum
    /// (as f64, in ingest order) to `total_samples`.
    pub fn new(total_samples: f64, expected: usize) -> Self {
        Self {
            total_samples,
            expected,
            seen: 0,
            shapes: Vec::new(),
            acc: Vec::new(),
        }
    }

    /// The batch fold's per-update weight: sample fraction, or uniform in
    /// the degenerate all-zero-sample federation.
    fn weight(&self, sample_count: usize) -> f64 {
        if self.total_samples > 0.0 {
            sample_count as f64 / self.total_samples
        } else {
            1.0 / self.expected as f64
        }
    }

    /// The shared count guard, with the same error text as [`ingest`]
    /// (`StreamingAggregator::ingest`).
    ///
    /// [`ingest`]: StreamingAggregator::ingest
    fn check_capacity(&self) -> Result<(), FederatedError> {
        if self.seen == self.expected {
            return Err(FederatedError::Aggregation(format!(
                "streaming FedAvg declared {} updates but received more",
                self.expected
            )));
        }
        Ok(())
    }

    /// Lazily allocates the accumulator on the first ingest.
    fn ensure_acc(&mut self) {
        if self.acc.is_empty() {
            self.acc = self
                .shapes
                .iter()
                .map(|&(rows, cols)| Matrix::zeros(rows, cols))
                .collect();
        }
    }
}

impl StreamingAggregator for StreamingFedAvg {
    fn ingest(&mut self, update: &LocalUpdate) -> Result<(), FederatedError> {
        self.check_capacity()?;
        check_shapes(&mut self.shapes, update)?;
        self.ensure_acc();
        // Exactly the batch fold: degenerate all-zero-sample federations
        // fall back to uniform weighting.
        let w = self.weight(update.sample_count);
        for (acc, m) in self.acc.iter_mut().zip(&update.weights) {
            acc.axpy(w, m);
        }
        self.seen += 1;
        Ok(())
    }

    fn ingest_quantized(
        &mut self,
        client_id: &str,
        sample_count: usize,
        payload: &[u8],
    ) -> Result<(), FederatedError> {
        self.check_capacity()?;
        let view = wire::quantized_view(payload).map_err(|e| bad_payload(client_id, "EVQ8", e))?;
        check_view_shapes(
            &mut self.shapes,
            client_id,
            view.tensors().map(|t| t.shape()),
        )?;
        self.ensure_acc();
        // `axpy` is `*slot += w * v` per coordinate; folding the decoded
        // values in the same order keeps the fused path bitwise identical
        // to decode-then-ingest. Segmenting on the (rare) specials lets
        // the bulk fold run as slice loops the compiler can vectorise —
        // each coordinate still folds the exact value the materializing
        // path would have decoded.
        let w = self.weight(sample_count);
        for (acc, t) in self.acc.iter_mut().zip(view.tensors()) {
            let range = t.range();
            let codes = t.codes();
            let slots = acc.as_mut_slice();
            let mut start = 0usize;
            for (idx, v) in t.specials() {
                for (slot, &c) in slots[start..idx].iter_mut().zip(&codes[start..idx]) {
                    *slot += w * range.decode(c);
                }
                slots[idx] += w * v;
                start = idx + 1;
            }
            for (slot, &c) in slots[start..].iter_mut().zip(&codes[start..]) {
                *slot += w * range.decode(c);
            }
        }
        self.seen += 1;
        Ok(())
    }

    fn ingest_topk(
        &mut self,
        client_id: &str,
        sample_count: usize,
        base: &[Matrix],
        payload: &[u8],
    ) -> Result<(), FederatedError> {
        self.check_capacity()?;
        let view = wire::sparse_view(payload).map_err(|e| bad_payload(client_id, "EVSK", e))?;
        check_view_shapes(
            &mut self.shapes,
            client_id,
            view.tensors().map(|t| t.shape()),
        )?;
        assert_eq!(view.tensor_count(), base.len(), "sparse apply tensor count");
        self.ensure_acc();
        let w = self.weight(sample_count);
        for ((acc, b), t) in self.acc.iter_mut().zip(base).zip(view.tensors()) {
            assert_eq!(t.shape(), b.shape(), "sparse apply tensor shape");
            // The reconstructed coordinate is `base + delta` where
            // transmitted and the base bits verbatim elsewhere — exactly
            // what `SparseDelta::apply` materialises. The ascending
            // entries split the tensor into dense base runs folded as
            // vectorisable slice loops, with the sparse corrections folded
            // point-wise between them.
            let slots = acc.as_mut_slice();
            let bs = b.as_slice();
            let mut start = 0usize;
            for (idx, v) in t.entries() {
                let idx = idx as usize;
                for (slot, &bv) in slots[start..idx].iter_mut().zip(&bs[start..idx]) {
                    *slot += w * bv;
                }
                slots[idx] += w * (bs[idx] + v);
                start = idx + 1;
            }
            for (slot, &bv) in slots[start..].iter_mut().zip(&bs[start..]) {
                *slot += w * bv;
            }
        }
        self.seen += 1;
        Ok(())
    }

    fn ingested(&self) -> usize {
        self.seen
    }

    fn state_bytes(&self) -> usize {
        self.acc.iter().map(|m| m.len() * 8).sum()
    }

    fn finish(self: Box<Self>) -> Result<Vec<Matrix>, FederatedError> {
        if self.seen == 0 {
            return Err(FederatedError::NoClients);
        }
        if self.seen != self.expected {
            return Err(FederatedError::Aggregation(format!(
                "streaming FedAvg declared {} updates but received {}",
                self.expected, self.seen
            )));
        }
        Ok(self.acc)
    }
}

/// Streaming coordinate-wise trimmed mean with the batch rule's bounded
/// non-finite containment.
///
/// Per coordinate the accumulator tracks the running finite sum, the
/// non-finite count, and the `trim` smallest / largest finite values seen.
/// `finish` reconstructs the batch kept-set: non-finite values consume trim
/// slots first (high side first, via [`crate::aggregate`]'s `trim_split`),
/// the remaining budget trims honest extremes, and the mean of the kept
/// values is `(sum - trimmed extremes) / kept` — the same set the batch
/// rule averages, summed in a different order (≈1 ulp difference).
#[derive(Debug)]
pub struct StreamingTrimmedMean {
    trim: usize,
    expected: usize,
    seen: usize,
    shapes: Vec<(usize, usize)>,
    /// Running sum of the finite values per flat coordinate.
    sum: Vec<f64>,
    /// Non-finite contributions per flat coordinate.
    bad: Vec<u32>,
    /// Ascending `trim` smallest finite values per coordinate
    /// (`coordinate * trim ..`), only the first `min(trim, finite)` valid.
    lows: Vec<f64>,
    /// Ascending `trim` largest finite values per coordinate.
    highs: Vec<f64>,
}

impl StreamingTrimmedMean {
    /// An accumulator dropping `trim` extremes per side over `expected`
    /// updates.
    pub fn new(trim: usize, expected: usize) -> Self {
        Self {
            trim,
            expected,
            seen: 0,
            shapes: Vec::new(),
            sum: Vec::new(),
            bad: Vec::new(),
            lows: Vec::new(),
            highs: Vec::new(),
        }
    }

    /// Finite values of coordinate `c` seen so far.
    fn finite_count(&self, c: usize) -> usize {
        self.seen - self.bad[c] as usize
    }

    /// The shared count guard, with the same error text as `ingest`.
    fn check_capacity(&self) -> Result<(), FederatedError> {
        if self.seen == self.expected {
            return Err(FederatedError::Aggregation(format!(
                "streaming trimmed mean declared {} updates but received more",
                self.expected
            )));
        }
        Ok(())
    }

    /// Lazily allocates the per-coordinate state on the first ingest.
    fn ensure_state(&mut self) {
        if self.sum.is_empty() {
            let coords: usize = self.shapes.iter().map(|&(rows, cols)| rows * cols).sum();
            self.sum = vec![0.0; coords];
            self.bad = vec![0; coords];
            self.lows = vec![0.0; coords * self.trim];
            self.highs = vec![0.0; coords * self.trim];
        }
    }

    /// Folds one value of flat coordinate `c` — the single fold body every
    /// ingest path (materialised or fused) routes through, so they cannot
    /// diverge on the containment rule.
    fn fold_value(&mut self, c: usize, v: f64) {
        if v.is_finite() {
            let filled = (self.seen - self.bad[c] as usize).min(self.trim);
            self.sum[c] += v;
            if self.trim > 0 {
                let base = c * self.trim;
                insert_low(&mut self.lows[base..base + self.trim], filled, v);
                insert_high(&mut self.highs[base..base + self.trim], filled, v);
            }
        } else {
            self.bad[c] += 1;
        }
    }
}

impl StreamingAggregator for StreamingTrimmedMean {
    fn ingest(&mut self, update: &LocalUpdate) -> Result<(), FederatedError> {
        self.check_capacity()?;
        check_shapes(&mut self.shapes, update)?;
        self.ensure_state();
        let mut c = 0;
        for m in &update.weights {
            for &v in m.as_slice() {
                self.fold_value(c, v);
                c += 1;
            }
        }
        self.seen += 1;
        Ok(())
    }

    fn ingest_quantized(
        &mut self,
        client_id: &str,
        sample_count: usize,
        payload: &[u8],
    ) -> Result<(), FederatedError> {
        let _ = sample_count; // trimmed mean is unweighted
        self.check_capacity()?;
        let view = wire::quantized_view(payload).map_err(|e| bad_payload(client_id, "EVQ8", e))?;
        check_view_shapes(
            &mut self.shapes,
            client_id,
            view.tensors().map(|t| t.shape()),
        )?;
        self.ensure_state();
        let mut c = 0;
        for t in view.tensors() {
            for v in t.values() {
                self.fold_value(c, v);
                c += 1;
            }
        }
        self.seen += 1;
        Ok(())
    }

    fn ingest_topk(
        &mut self,
        client_id: &str,
        sample_count: usize,
        base: &[Matrix],
        payload: &[u8],
    ) -> Result<(), FederatedError> {
        let _ = sample_count; // trimmed mean is unweighted
        self.check_capacity()?;
        let view = wire::sparse_view(payload).map_err(|e| bad_payload(client_id, "EVSK", e))?;
        check_view_shapes(
            &mut self.shapes,
            client_id,
            view.tensors().map(|t| t.shape()),
        )?;
        assert_eq!(view.tensor_count(), base.len(), "sparse apply tensor count");
        self.ensure_state();
        let mut c = 0;
        for (b, t) in base.iter().zip(view.tensors()) {
            assert_eq!(t.shape(), b.shape(), "sparse apply tensor shape");
            let mut entries = t.entries();
            let mut next = entries.next();
            for (i, &bv) in b.as_slice().iter().enumerate() {
                let x = match next {
                    Some((idx, v)) if idx as usize == i => {
                        next = entries.next();
                        bv + v
                    }
                    _ => bv,
                };
                self.fold_value(c, x);
                c += 1;
            }
        }
        self.seen += 1;
        Ok(())
    }

    fn ingested(&self) -> usize {
        self.seen
    }

    fn state_bytes(&self) -> usize {
        (self.sum.len() + self.lows.len() + self.highs.len()) * 8 + self.bad.len() * 4
    }

    fn finish(self: Box<Self>) -> Result<Vec<Matrix>, FederatedError> {
        if self.seen == 0 {
            return Err(FederatedError::NoClients);
        }
        if self.seen != self.expected {
            return Err(FederatedError::Aggregation(format!(
                "streaming trimmed mean declared {} updates but received {}",
                self.expected, self.seen
            )));
        }
        if 2 * self.trim >= self.seen {
            return Err(FederatedError::Aggregation(format!(
                "trim {} leaves no updates out of {}",
                self.trim, self.seen
            )));
        }
        let mut out = Vec::with_capacity(self.shapes.len());
        let mut c = 0;
        for &(rows, cols) in &self.shapes {
            let mut m = Matrix::zeros(rows, cols);
            for flat in 0..m.len() {
                let bad = self.bad[c] as usize;
                if bad > 2 * self.trim {
                    return Err(FederatedError::Aggregation(format!(
                        "trimmed mean: {bad} non-finite values at a coordinate exceed \
                         the 2 * trim = {} containment budget",
                        2 * self.trim
                    )));
                }
                let finite = self.finite_count(c);
                let (low, high) = trim_split(self.trim, bad);
                let filled = finite.min(self.trim);
                let base = c * self.trim;
                let mut total = self.sum[c];
                // Remove the `low` smallest and `high` largest finite
                // values — `low + high = 2 * trim - bad <= finite - 1`, and
                // both slices are fully tracked because
                // `low, high <= trim <= filled` whenever they are nonzero
                // (finite >= kept + low + high > trim when low or high > 0).
                for &v in &self.lows[base..base + low] {
                    total -= v;
                }
                for &v in &self.highs[base + filled - high..base + filled] {
                    total -= v;
                }
                let kept = finite - low - high;
                m.as_mut_slice()[flat] = total / kept as f64;
                c += 1;
            }
            out.push(m);
        }
        Ok(out)
    }
}

/// Keeps `slot[..min(filled + 1, slot.len())]` the ascending smallest
/// values after offering `v`. `filled` is how many entries were valid
/// before the call.
fn insert_low(slot: &mut [f64], filled: usize, v: f64) {
    let cap = slot.len();
    let mut len = filled;
    if len < cap {
        slot[len] = v;
        len += 1;
    } else if v < slot[cap - 1] {
        slot[cap - 1] = v;
    } else {
        return;
    }
    // Bubble the new value left to keep the prefix sorted ascending.
    let mut i = len - 1;
    while i > 0 && slot[i] < slot[i - 1] {
        slot.swap(i, i - 1);
        i -= 1;
    }
}

/// Keeps `slot[..min(filled + 1, slot.len())]` the ascending *largest*
/// values after offering `v`.
fn insert_high(slot: &mut [f64], filled: usize, v: f64) {
    let cap = slot.len();
    let mut len = filled;
    if len < cap {
        slot[len] = v;
        len += 1;
    } else if v > slot[0] {
        slot[0] = v;
        // Bubble right.
        let mut i = 0;
        while i + 1 < cap && slot[i] > slot[i + 1] {
            slot.swap(i, i + 1);
            i += 1;
        }
        return;
    } else {
        return;
    }
    let mut i = len - 1;
    while i > 0 && slot[i] < slot[i - 1] {
        slot.swap(i, i - 1);
        i -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn update(id: &str, values: &[f64], samples: usize) -> LocalUpdate {
        LocalUpdate {
            client_id: id.into(),
            weights: vec![
                Matrix::from_vec(1, values.len(), values.to_vec()),
                Matrix::filled(2, 1, values[0] * 10.0),
            ],
            sample_count: samples,
            train_loss: 0.0,
            duration: Duration::ZERO,
            simulated_extra_seconds: 0.0,
        }
    }

    fn stream(rule: Aggregator, updates: &[LocalUpdate]) -> Result<Vec<Matrix>, FederatedError> {
        let total: f64 = updates.iter().map(|u| u.sample_count as f64).sum();
        let mut agg = rule
            .streaming(total, updates.len())
            .expect("rule must stream");
        for u in updates {
            agg.ingest(u)?;
        }
        agg.finish()
    }

    #[test]
    fn streaming_fedavg_is_bitwise_identical_to_batch() {
        let ups = [
            update("a", &[0.1, -2.0, 3.7], 100),
            update("b", &[1.9, 0.3, -0.4], 17),
            update("c", &[-5.5, 2.2, 0.0], 311),
        ];
        let batch = Aggregator::FedAvg.aggregate(&ups).unwrap();
        let streamed = stream(Aggregator::FedAvg, &ups).unwrap();
        assert_eq!(batch, streamed, "same fold, same bits");
    }

    #[test]
    fn streaming_fedavg_zero_samples_matches_uniform_fallback() {
        let ups = [update("a", &[2.0], 0), update("b", &[4.0], 0)];
        let batch = Aggregator::FedAvg.aggregate(&ups).unwrap();
        let streamed = stream(Aggregator::FedAvg, &ups).unwrap();
        assert_eq!(batch, streamed);
        assert!((streamed[0][(0, 0)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn streaming_trimmed_mean_matches_batch_to_reassociation() {
        let ups = [
            update("a", &[0.0, 5.0], 10),
            update("b", &[1.0, 4.0], 10),
            update("c", &[2.0, 3.0], 10),
            update("evil", &[1e6, -1e6], 10),
            update("evil2", &[-1e6, 1e6], 10),
        ];
        let batch = Aggregator::TrimmedMean { trim: 1 }.aggregate(&ups).unwrap();
        let streamed = stream(Aggregator::TrimmedMean { trim: 1 }, &ups).unwrap();
        for (b, s) in batch.iter().zip(&streamed) {
            for (x, y) in b.as_slice().iter().zip(s.as_slice()) {
                assert!((x - y).abs() < 1e-9, "batch {x} vs streamed {y}");
            }
        }
    }

    #[test]
    fn streaming_trimmed_mean_contains_nan_floods_like_batch() {
        let nan = f64::NAN;
        let ups = [
            update("a", &[1.0], 10),
            update("b", &[2.0], 10),
            update("e1", &[nan], 10),
            update("e2", &[nan], 10),
        ];
        let streamed = stream(Aggregator::TrimmedMean { trim: 1 }, &ups).unwrap();
        assert!((streamed[0][(0, 0)] - 1.5).abs() < 1e-12);
        // One more flood exceeds the budget — error, like the batch rule.
        let over = [
            update("a", &[1.0], 10),
            update("b", &[2.0], 10),
            update("e1", &[nan], 10),
            update("e2", &[nan], 10),
            update("e3", &[nan], 10),
        ];
        assert!(matches!(
            stream(Aggregator::TrimmedMean { trim: 1 }, &over),
            Err(FederatedError::Aggregation(_))
        ));
    }

    #[test]
    fn streaming_state_is_o_model_not_o_clients() {
        let many: Vec<LocalUpdate> = (0..256)
            .map(|i| update(&format!("c{i}"), &[i as f64, -(i as f64), 0.5], 10))
            .collect();
        let total: f64 = many.iter().map(|u| u.sample_count as f64).sum();
        for rule in [Aggregator::FedAvg, Aggregator::TrimmedMean { trim: 2 }] {
            let mut agg = rule.streaming(total, many.len()).unwrap();
            let mut peak = 0usize;
            for u in &many {
                agg.ingest(u).unwrap();
                peak = peak.max(agg.state_bytes());
            }
            // 5 coordinates; generous constant factor, but nowhere near
            // 256 materialised updates (256 * 5 * 8 = 10240 bytes).
            assert!(peak <= 5 * 8 * 6, "{} state grew to {peak}", rule.name());
            assert_eq!(agg.ingested(), 256);
            assert!(agg.finish().unwrap().iter().all(Matrix::is_finite));
        }
    }

    #[test]
    fn streaming_state_is_constant_after_first_ingest() {
        // The trait contract the scale engine's O(model · workers) peak
        // bound rests on: state allocates on the first ingest and never
        // changes size afterwards.
        let many: Vec<LocalUpdate> = (0..64)
            .map(|i| update(&format!("c{i}"), &[i as f64, 1.0, -2.0], 7))
            .collect();
        let total: f64 = many.iter().map(|u| u.sample_count as f64).sum();
        for rule in [Aggregator::FedAvg, Aggregator::TrimmedMean { trim: 3 }] {
            let mut agg = rule.streaming(total, many.len()).unwrap();
            assert_eq!(agg.state_bytes(), 0, "{}: lazy allocation", rule.name());
            let mut settled = 0usize;
            for (i, u) in many.iter().enumerate() {
                agg.ingest(u).unwrap();
                if i == 0 {
                    settled = agg.state_bytes();
                    assert!(settled > 0, "{}: state after first ingest", rule.name());
                } else {
                    assert_eq!(
                        agg.state_bytes(),
                        settled,
                        "{}: state changed size at update {i}",
                        rule.name()
                    );
                }
            }
        }
    }

    #[test]
    fn shape_mismatch_is_rejected_mid_stream() {
        let good = update("a", &[1.0, 2.0], 5);
        let mut bad = update("b", &[1.0, 2.0], 5);
        bad.weights[1] = Matrix::zeros(3, 3);
        let mut agg = Aggregator::FedAvg.streaming(10.0, 2).unwrap();
        agg.ingest(&good).unwrap();
        assert!(matches!(
            agg.ingest(&bad),
            Err(FederatedError::Aggregation(_))
        ));
    }

    #[test]
    fn count_contract_is_enforced() {
        let u = update("a", &[1.0], 5);
        // Too many.
        let mut agg = Aggregator::FedAvg.streaming(5.0, 1).unwrap();
        agg.ingest(&u).unwrap();
        assert!(agg.ingest(&u).is_err());
        // Too few.
        let mut agg = Aggregator::TrimmedMean { trim: 0 }
            .streaming(10.0, 2)
            .unwrap();
        agg.ingest(&u).unwrap();
        assert!(matches!(agg.finish(), Err(FederatedError::Aggregation(_))));
        // Nothing at all.
        let agg = Aggregator::FedAvg.streaming(0.0, 0).unwrap();
        assert!(matches!(agg.finish(), Err(FederatedError::NoClients)));
    }

    #[test]
    fn median_and_krum_do_not_stream() {
        assert!(Aggregator::Median.streaming(1.0, 1).is_none());
        assert!(Aggregator::Krum { byzantine: 1 }
            .streaming(1.0, 1)
            .is_none());
    }

    fn assert_bitwise_eq(a: &[Matrix], b: &[Matrix], context: &str) {
        assert_eq!(a.len(), b.len(), "{context}: tensor count");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.shape(), y.shape(), "{context}: shape");
            for (p, q) in x.as_slice().iter().zip(y.as_slice()) {
                assert_eq!(p.to_bits(), q.to_bits(), "{context}: {p} vs {q}");
            }
        }
    }

    #[test]
    fn fused_quantized_ingest_is_bitwise_identical_to_decode_then_ingest() {
        use crate::compression::QuantizedUpdate;
        let nan = f64::NAN;
        let ups = [
            update("a", &[0.1, -2.0, 3.7], 100),
            update("b", &[nan, 0.3, -0.4], 17),
            update("c", &[-5.5, nan, nan], 311),
        ];
        let total: f64 = ups.iter().map(|u| u.sample_count as f64).sum();
        for rule in [Aggregator::FedAvg, Aggregator::TrimmedMean { trim: 1 }] {
            let mut materialized = rule.streaming(total, ups.len()).unwrap();
            let mut fused = rule.streaming(total, ups.len()).unwrap();
            for u in &ups {
                let blob = wire::encode_quantized(&QuantizedUpdate::quantize(&u.weights));
                let mut lossy = u.clone();
                lossy.weights = wire::decode_quantized(&blob).unwrap().dequantize();
                materialized.ingest(&lossy).unwrap();
                fused
                    .ingest_quantized(&u.client_id, u.sample_count, &blob)
                    .unwrap();
            }
            assert_bitwise_eq(
                &materialized.finish().unwrap(),
                &fused.finish().unwrap(),
                rule.name(),
            );
        }
    }

    #[test]
    fn fused_topk_ingest_is_bitwise_identical_to_apply_then_ingest() {
        use crate::compression::SparseDelta;
        let base = update("base", &[0.5, -1.0, 2.0], 0).weights;
        let ups = [
            update("a", &[0.6, -1.0, 2.5], 100),
            // Tie-heavy: equal-magnitude deltas exercise the deterministic
            // tie-break through the merge walk.
            update("b", &[1.5, -2.0, 3.0], 17),
            update("c", &[f64::NAN, -1.0, 2.0], 311),
        ];
        let total: f64 = ups.iter().map(|u| u.sample_count as f64).sum();
        for rule in [Aggregator::FedAvg, Aggregator::TrimmedMean { trim: 1 }] {
            for k in [1, 2, 8] {
                let mut materialized = rule.streaming(total, ups.len()).unwrap();
                let mut fused = rule.streaming(total, ups.len()).unwrap();
                for u in &ups {
                    let d = SparseDelta::top_k(&u.weights, &base, k);
                    let blob = wire::encode_sparse(&d);
                    let mut lossy = u.clone();
                    lossy.weights = wire::decode_sparse(&blob).unwrap().apply(&base);
                    materialized.ingest(&lossy).unwrap();
                    fused
                        .ingest_topk(&u.client_id, u.sample_count, &base, &blob)
                        .unwrap();
                }
                assert_bitwise_eq(
                    &materialized.finish().unwrap(),
                    &fused.finish().unwrap(),
                    &format!("{} k={k}", rule.name()),
                );
            }
        }
    }

    #[test]
    fn corrupt_payload_errors_before_touching_accumulator_state() {
        use crate::compression::QuantizedUpdate;
        let a = update("a", &[1.0, 2.0, 3.0], 10);
        let b = update("b", &[2.0, 1.0, 0.0], 20);
        let blob_a = wire::encode_quantized(&QuantizedUpdate::quantize(&a.weights));
        let blob_b = wire::encode_quantized(&QuantizedUpdate::quantize(&b.weights));
        let mut agg = Aggregator::FedAvg.streaming(30.0, 2).unwrap();
        agg.ingest_quantized("a", 10, &blob_a).unwrap();
        // Truncated payload: rejected up front, nothing folded.
        let truncated = &blob_b[..blob_b.len() - 1];
        assert!(matches!(
            agg.ingest_quantized("b", 20, truncated),
            Err(FederatedError::Aggregation(_))
        ));
        // Wrong codec: an EVSK payload on the quantized path is rejected.
        let d = crate::compression::SparseDelta::top_k(&b.weights, &a.weights, 2);
        assert!(agg
            .ingest_quantized("b", 20, &wire::encode_sparse(&d))
            .is_err());
        assert_eq!(agg.ingested(), 1, "failed ingests must not count");
        // A clean retry lands exactly where an unfailed stream would.
        agg.ingest_quantized("b", 20, &blob_b).unwrap();
        let mut fresh = Aggregator::FedAvg.streaming(30.0, 2).unwrap();
        fresh.ingest_quantized("a", 10, &blob_a).unwrap();
        fresh.ingest_quantized("b", 20, &blob_b).unwrap();
        assert_bitwise_eq(
            &agg.finish().unwrap(),
            &fresh.finish().unwrap(),
            "retry after corrupt payload",
        );
    }

    #[test]
    fn fused_count_and_shape_contracts_match_the_materialised_path() {
        use crate::compression::QuantizedUpdate;
        let u = update("a", &[1.0], 5);
        let blob = wire::encode_quantized(&QuantizedUpdate::quantize(&u.weights));
        let mut agg = Aggregator::FedAvg.streaming(5.0, 1).unwrap();
        agg.ingest_quantized("a", 5, &blob).unwrap();
        let err = agg.ingest_quantized("a", 5, &blob).unwrap_err();
        assert!(
            err.to_string()
                .contains("declared 1 updates but received more"),
            "{err}"
        );
        let mut agg = Aggregator::FedAvg.streaming(10.0, 2).unwrap();
        agg.ingest_quantized("a", 5, &blob).unwrap();
        let other = update("b", &[1.0, 2.0], 5);
        let wrong = wire::encode_quantized(&QuantizedUpdate::quantize(&other.weights));
        let err = agg.ingest_quantized("b", 5, &wrong).unwrap_err();
        assert!(
            err.to_string()
                .contains("client b has mismatched weight shapes"),
            "{err}"
        );
    }

    #[test]
    fn extreme_trackers_keep_the_right_values() {
        let mut lows = [0.0; 3];
        let mut highs = [0.0; 3];
        let vals = [5.0, -1.0, 3.0, 9.0, 0.0, -7.0, 2.0];
        for (i, &v) in vals.iter().enumerate() {
            insert_low(&mut lows, i.min(3), v);
            insert_high(&mut highs, i.min(3), v);
        }
        assert_eq!(lows, [-7.0, -1.0, 0.0]);
        assert_eq!(highs, [3.0, 5.0, 9.0]);
    }
}
