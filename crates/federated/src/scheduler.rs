//! Per-round participant scheduling: paper-style C-fraction sampling that
//! stays exact and cheap from 3 clients to 100k+.
//!
//! Two scale bugs in the original `sample_participants` are fixed here:
//!
//! * **The take-count is computed in integer arithmetic.** The old
//!   `(n as f64 * participation).round()` rounds the *product* to 53 bits
//!   before rounding to an integer; for populations in the tens of
//!   thousands that double rounding can land one client off the exact
//!   value of `round(n · participation)` (the f64 `participation` is a
//!   dyadic rational `m · 2^e`, so the exact product is computable in
//!   128-bit integer arithmetic — see [`exact_take`]).
//! * **The per-round RNG key uses the same FNV-1a mixing as the fault
//!   layer.** The old ad-hoc `seed ^ round * 0x9E37` key changes only two
//!   low bytes of the seed between consecutive rounds; FNV mixing
//!   decorrelates rounds the same way `faults.rs` decorrelates
//!   per-(rule, round, client) decisions.
//!
//! Sampling itself is Floyd's algorithm: `take` uniform draws without
//! replacement in O(take) memory and time, independent of the population
//! size — shuffling a 100k-element index vector per round is exactly the
//! kind of O(clients) server work the scale-out path removes.

use crate::faults::fnv1a;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Deterministic per-round C-fraction sampler over client indices
/// `0..population`.
///
/// # Examples
///
/// ```
/// use evfad_federated::scheduler::Scheduler;
///
/// let s = Scheduler::new(0.1, 7);
/// let round0 = s.sample(0, 10_000);
/// assert_eq!(round0.len(), 1_000);
/// assert!(round0.windows(2).all(|w| w[0] < w[1]), "sorted, no duplicates");
/// assert_eq!(round0, s.sample(0, 10_000), "deterministic per (seed, round)");
/// assert_ne!(round0, s.sample(1, 10_000));
/// ```
#[derive(Debug, Clone)]
pub struct Scheduler {
    participation: f64,
    seed: u64,
}

impl Scheduler {
    /// A sampler taking `participation` of the population each round
    /// (validated to `(0, 1]` by `FederatedConfig::validate` /
    /// `ScaleConfig::validate` before any round runs).
    pub fn new(participation: f64, seed: u64) -> Self {
        Self {
            participation,
            seed,
        }
    }

    /// The exact number of participants drawn from a population of `n`
    /// (floored at one so a tiny fraction of a small federation never
    /// yields an empty round).
    pub fn take_count(&self, n: usize) -> usize {
        exact_take(n, self.participation).clamp(1, n.max(1))
    }

    /// Indices of round `round`'s participants: sorted, duplicate-free,
    /// exactly [`Scheduler::take_count`] of them, deterministic per
    /// `(seed, round, n)`.
    ///
    /// Cost is O(take) via Floyd's algorithm, not O(n) — at the scale
    /// engine's 1M-client population with C = 0.1 a round samples 100k
    /// indices without ever touching the other 900k.
    pub fn sample(&self, round: usize, n: usize) -> Vec<usize> {
        if n == 0 {
            return Vec::new();
        }
        let take = self.take_count(n);
        if take == n {
            return (0..n).collect();
        }
        let key = fnv1a(&[round as u64, n as u64]);
        let mut rng = StdRng::seed_from_u64(self.seed ^ key);
        // Floyd's algorithm: uniform k-of-n without replacement, O(k).
        let mut chosen: HashSet<usize> = HashSet::with_capacity(take);
        for j in (n - take)..n {
            let t = rng.gen_range(0..=j);
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        let mut idx: Vec<usize> = chosen.into_iter().collect();
        idx.sort_unstable();
        idx
    }
}

/// `round(n · p)` computed exactly.
///
/// Every finite f64 is a dyadic rational `m · 2^e`; the product `n · m`
/// fits u128 for any `usize` population, so the scaled rounding is a shift
/// with carry — no double rounding, unlike `(n as f64 * p).round()`.
/// Rounds half away from zero, matching `f64::round` on the values the
/// old code computed when the product happened to be exact.
pub fn exact_take(n: usize, p: f64) -> usize {
    debug_assert!(p.is_finite() && p >= 0.0);
    if n == 0 || p == 0.0 {
        return 0;
    }
    let bits = p.to_bits();
    let raw_exponent = ((bits >> 52) & 0x7ff) as i64;
    let fraction = bits & ((1u64 << 52) - 1);
    // Normal numbers carry an implicit leading bit; subnormals do not.
    let (mantissa, exponent) = if raw_exponent == 0 {
        (fraction, -1074i64)
    } else {
        (fraction | (1u64 << 52), raw_exponent - 1075)
    };
    let product = n as u128 * mantissa as u128;
    if exponent >= 0 {
        // p >= 1.0 (participation caps at 1.0, but stay total).
        return usize::try_from(product << exponent).unwrap_or(usize::MAX);
    }
    let shift = (-exponent) as u32;
    if shift >= 128 {
        // product < 2^117 for any usize n, so the rounded value is 0.
        return 0;
    }
    let floor = product >> shift;
    let half_up = (product >> (shift - 1)) & 1;
    usize::try_from(floor + half_up).unwrap_or(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_take_matches_simple_cases() {
        assert_eq!(exact_take(10, 0.5), 5);
        assert_eq!(exact_take(3, 0.34), 1);
        assert_eq!(exact_take(100, 1.0), 100);
        assert_eq!(exact_take(7, 0.0), 0);
        assert_eq!(exact_take(0, 0.9), 0);
        assert_eq!(exact_take(100_000, 0.1), 10_000);
    }

    #[test]
    fn exact_take_agrees_with_rational_reference_at_scale() {
        // Fractions with no exact f64 representation, over large
        // populations: compare against exact rational arithmetic on the
        // dyadic value p actually holds.
        for &n in &[9_999usize, 10_000, 65_537, 100_000, 999_983] {
            for &p in &[0.1, 0.3, 1.0 / 3.0, 0.123456789, 0.0001, 0.999999] {
                let take = exact_take(n, p);
                // Reference: same decomposition, checked via the remainder.
                let bits = p.to_bits();
                let fraction = bits & ((1u64 << 52) - 1);
                let raw_exponent = ((bits >> 52) & 0x7ff) as i64;
                let (m, e) = if raw_exponent == 0 {
                    (fraction, -1074i64)
                } else {
                    (fraction | (1u64 << 52), raw_exponent - 1075)
                };
                let product = n as u128 * m as u128;
                let shift = (-e) as u32;
                let floor = (product >> shift) as usize;
                let rem2 = (product & ((1u128 << shift) - 1)) << 1;
                let expect = if rem2 >= (1u128 << shift) {
                    floor + 1
                } else {
                    floor
                };
                assert_eq!(take, expect, "n={n} p={p}");
            }
        }
    }

    #[test]
    fn exact_take_handles_subnormal_and_tiny_fractions() {
        assert_eq!(exact_take(1_000, f64::MIN_POSITIVE), 0);
        assert_eq!(exact_take(usize::MAX, 5e-324), 0);
        assert_eq!(exact_take(1_000_000, 1e-9), 0);
        assert_eq!(exact_take(2_000_000_000, 1e-9), 2);
    }

    #[test]
    fn sample_is_sorted_exact_and_deterministic() {
        let s = Scheduler::new(0.01, 42);
        let a = s.sample(3, 10_000);
        let b = s.sample(3, 10_000);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert!(a.iter().all(|&i| i < 10_000));
    }

    #[test]
    fn rounds_draw_different_subsets() {
        let s = Scheduler::new(0.05, 1);
        let r0 = s.sample(0, 2_000);
        let r1 = s.sample(1, 2_000);
        assert_eq!(r0.len(), 100);
        assert_ne!(r0, r1, "FNV keying must decorrelate rounds");
    }

    #[test]
    fn consecutive_rounds_are_not_shift_correlated() {
        // The old `seed ^ round * 0x9E37` key made round keys differ in two
        // low bytes only. With FNV mixing, overlap between consecutive
        // rounds should hover near the hypergeometric expectation
        // (take²/n = 10 here), not spike toward take.
        let s = Scheduler::new(0.01, 9);
        let n = 100_000;
        let r4: HashSet<usize> = s.sample(4, n).into_iter().collect();
        let r5 = s.sample(5, n);
        let overlap = r5.iter().filter(|i| r4.contains(i)).count();
        assert!(overlap < 100, "rounds look correlated: overlap {overlap}");
    }

    #[test]
    fn full_participation_is_the_identity() {
        let s = Scheduler::new(1.0, 0);
        assert_eq!(s.sample(0, 5), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn tiny_fraction_floors_at_one_participant() {
        let s = Scheduler::new(1e-9, 0);
        assert_eq!(s.take_count(1_000), 1);
        assert_eq!(s.sample(0, 1_000).len(), 1);
    }

    #[test]
    fn empty_population_yields_empty_round() {
        let s = Scheduler::new(0.5, 0);
        assert!(s.sample(0, 0).is_empty());
    }

    #[test]
    fn million_client_rounds_sample_exactly_and_stay_sorted() {
        // The 1M-client scale scenario: exact C-fraction, sorted and
        // duplicate-free, different across rounds, identical per seed.
        let s = Scheduler::new(0.1, 42);
        let a = s.sample(0, 1_000_000);
        assert_eq!(a.len(), 100_000);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted, no duplicates");
        assert!(*a.last().expect("non-empty") < 1_000_000);
        let b = s.sample(1, 1_000_000);
        assert_eq!(b.len(), 100_000);
        assert_ne!(a, b, "rounds draw different cohorts");
        assert_eq!(a, Scheduler::new(0.1, 42).sample(0, 1_000_000));
    }
}
