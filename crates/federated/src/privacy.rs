//! Differential-privacy machinery for client updates.
//!
//! The paper preserves privacy structurally (weights-only exchange). For
//! deployments needing formal guarantees this module adds the standard
//! DP-FedAvg client-side mechanism: clip the update delta to a norm bound
//! and add calibrated Gaussian noise.

use evfad_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Clipping and noise parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpConfig {
    /// L2 bound applied to the update delta (`new - global`).
    pub clip_norm: f64,
    /// Noise standard deviation as a multiple of `clip_norm`.
    pub noise_multiplier: f64,
}

impl DpConfig {
    /// A moderate default (`clip = 1.0`, `sigma = 0.1 * clip`).
    pub fn moderate() -> Self {
        Self {
            clip_norm: 1.0,
            noise_multiplier: 0.1,
        }
    }
}

/// Applies clipped Gaussian noise to a client's post-training weights,
/// relative to the global weights they started from.
///
/// Returns the privatized weights `global + clip(delta) + N(0, sigma²)`.
///
/// # Panics
///
/// Panics if `weights` and `global` have different shapes.
pub fn privatize(
    weights: &[Matrix],
    global: &[Matrix],
    config: DpConfig,
    seed: u64,
) -> Vec<Matrix> {
    assert_eq!(weights.len(), global.len(), "weight tensor count mismatch");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF_00FF);
    // Global L2 norm of the delta across all tensors.
    let mut norm_sq = 0.0;
    for (w, g) in weights.iter().zip(global) {
        assert_eq!(w.shape(), g.shape(), "weight shape mismatch");
        for (a, b) in w.as_slice().iter().zip(g.as_slice()) {
            let d = a - b;
            norm_sq += d * d;
        }
    }
    let norm = norm_sq.sqrt();
    let scale = if norm > config.clip_norm && norm > 0.0 {
        config.clip_norm / norm
    } else {
        1.0
    };
    let sigma = config.noise_multiplier * config.clip_norm;
    weights
        .iter()
        .zip(global)
        .map(|(w, g)| {
            Matrix::from_fn(w.rows(), w.cols(), |i, j| {
                let d = (w[(i, j)] - g[(i, j)]) * scale;
                g[(i, j)] + d + gaussian(&mut rng) * sigma
            })
        })
        .collect()
}

fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensors(v: f64) -> Vec<Matrix> {
        vec![Matrix::filled(2, 2, v)]
    }

    #[test]
    fn zero_noise_zero_clip_effect_is_identity() {
        let global = tensors(0.0);
        let w = tensors(0.1); // delta norm = 0.2 < clip 1.0
        let cfg = DpConfig {
            clip_norm: 1.0,
            noise_multiplier: 0.0,
        };
        let out = privatize(&w, &global, cfg, 1);
        for (a, b) in out[0].as_slice().iter().zip(w[0].as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn large_delta_is_clipped_to_norm_bound() {
        let global = tensors(0.0);
        let w = tensors(100.0);
        let cfg = DpConfig {
            clip_norm: 1.0,
            noise_multiplier: 0.0,
        };
        let out = privatize(&w, &global, cfg, 2);
        let norm: f64 = out[0].as_slice().iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9, "clipped norm {norm}");
    }

    #[test]
    fn noise_changes_weights_deterministically_per_seed() {
        let global = tensors(0.0);
        let w = tensors(0.1);
        let cfg = DpConfig::moderate();
        let a = privatize(&w, &global, cfg, 3);
        let b = privatize(&w, &global, cfg, 3);
        let c = privatize(&w, &global, cfg, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, w);
    }

    #[test]
    fn noise_scale_matches_config() {
        let global = tensors(0.0);
        let w = tensors(0.0); // zero delta: output is pure noise
        let cfg = DpConfig {
            clip_norm: 2.0,
            noise_multiplier: 0.5,
        };
        // sigma = 1.0; estimate std over many coordinates.
        let mut values = Vec::new();
        for seed in 0..200 {
            let out = privatize(&w, &global, cfg, seed);
            values.extend_from_slice(out[0].as_slice());
        }
        let mean: f64 = values.iter().sum::<f64>() / values.len() as f64;
        let var: f64 =
            values.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / values.len() as f64;
        assert!((var.sqrt() - 1.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn shape_mismatch_panics() {
        let _ = privatize(
            &tensors(1.0),
            &[Matrix::zeros(3, 3)],
            DpConfig::moderate(),
            1,
        );
    }
}
