//! Hierarchical large-population federation: 10k–1M lightweight clients,
//! parallel edge-tier streaming aggregation, O(model · workers) server
//! memory.
//!
//! The in-process [`crate::FederatedSimulation`] trains real models and
//! tops out at a few hundred clients. This engine scales the *protocol* —
//! scheduling, faults, traffic, aggregation — to paper-style populations
//! by replacing full clients with [`ClientSpec`]s: a zone profile drawn
//! from the data generator ([`evfad_data::ZoneProfile`]), a sample count,
//! and a seed, from which each round's update is synthesised
//! deterministically around the current global model. A configurable
//! sampled subset ([`ScaleConfig::trained_fraction`]) runs *real* tiny
//! local training instead ([`ScaleTrainer`]), so scale runs exercise the
//! fused train-step kernels rather than pure synthesis.
//!
//! # Topology, parallelism, and memory
//!
//! Clients are partitioned into `edges` contiguous shards. Each round:
//!
//! 1. the [`Scheduler`] samples a C-fraction of the population;
//! 2. a pure fault pre-pass ([`crate::faults`] decisions are functions of
//!    `(seed, round, client)`) fixes every shard's surviving update count
//!    and sample total, sizing the streaming accumulators up front;
//! 3. each edge streams its shard through a
//!    [`crate::streaming::StreamingAggregator`] and forwards **one**
//!    partial update to the root — the edge→root hop runs through the
//!    same fault model, keyed by ids `"edge-0"`, `"edge-1"`, …;
//! 4. the root streams the edge partials into the next global model.
//!
//! Shard folds are mutually independent, so step 3 fans out across the
//! deterministic [`evfad_tensor::parallel`] worker pool in *waves* of
//! [`ScaleConfig::threads`] shards: each wave folds up to `threads`
//! shards concurrently (one task per shard), then the root ingests the
//! wave's partials in **strict edge-index order** before the next wave
//! starts. Only the root fold is order-sensitive, and its order never
//! depends on scheduling, so the result is **bitwise identical to the
//! serial run at every thread count** — the same guarantee the tensor
//! kernels pin.
//!
//! Live aggregation state is one root accumulator plus at most
//! `min(threads, edges)` concurrent edge accumulators (a finished fold's
//! partial replaces its accumulator, same footprint): O(model · workers),
//! independent of the population. The batch path would materialise every
//! kept update: O(clients × model). Both numbers are reported per run
//! ([`ScaleOutcome::peak_aggregation_bytes`] vs
//! [`ScaleOutcome::materialized_equivalent_bytes`]) and gated by
//! `bench_scale`; [`ScaleConfig::verify_streaming`] additionally asserts
//! in-run that no accumulator grows after its first ingest.
//!
//! With `edges: 1` and FedAvg the hierarchy degenerates to the flat
//! streaming fold, which is bitwise-identical to the batch rule
//! ([`ScaleConfig::verify_streaming`] asserts this inline). With more
//! edges, FedAvg remains exact up to floating-point reassociation: each
//! partial is the sample-weighted mean of its shard and the root weighs
//! partials by shard sample totals, so the composition is the overall
//! weighted mean.

use crate::aggregate::Aggregator;
use crate::client::LocalUpdate;
use crate::compression::{CodecScratch, CompressionMode};
use crate::error::FederatedError;
use crate::faults::{fnv1a, FaultEvent, FaultKind, FaultPlan};
use crate::scheduler::Scheduler;
use crate::server::{Disposition, FaultGate};
use crate::transport::{MeteredChannel, TrafficTotals};
use crate::wire;
use bytes::BytesMut;
use evfad_data::{Zone, ZoneProfile};
use evfad_nn::{Sample, Sequential, TrainConfig};
use evfad_tensor::{parallel, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Schedule and topology of a large-population run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleConfig {
    /// Population size (the paper's federation, scaled: 10k–100k).
    pub clients: usize,
    /// Communication rounds.
    pub rounds: usize,
    /// C-fraction of clients sampled per round, in `(0, 1]`.
    pub participation: f64,
    /// Edge aggregators between clients and the root. `1` = flat
    /// (every client streams straight into the root accumulator).
    pub edges: usize,
    /// Aggregation rule — must stream
    /// ([`Aggregator::supports_streaming`]): FedAvg or TrimmedMean.
    pub aggregator: Aggregator,
    /// Seed for sampling, update synthesis, and population derivation.
    pub seed: u64,
    /// Edge fan-out width: how many shard folds may run concurrently on
    /// the [`evfad_tensor::parallel`] worker pool. `1` = serial, `0` =
    /// inherit the process-wide pool width (see
    /// [`ScaleConfig::effective_threads`]). Results are bitwise identical
    /// for every setting; [`Default`] is `1` (serial), so configs predating
    /// the fan-out reproduce bit-for-bit and host-independently.
    #[serde(default)]
    pub threads: usize,
    /// Fraction of *kept* clients per round that run real local training
    /// through the engine's [`ScaleTrainer`] instead of synthesising
    /// their update, in `[0, 1]`. Selection is a pure Bernoulli draw per
    /// `(seed, round, client)`. Requires [`ScaleEngine::with_trainer`]
    /// when non-zero.
    #[serde(default)]
    pub trained_fraction: f64,
    /// Client→edge uplink compression. Each kept client's update is
    /// encoded for real (per-worker [`CodecScratch`], zero-alloc when
    /// warm), metered at its exact wire byte length, and folded into the
    /// edge accumulator **straight from the encoded payload** via the
    /// fused [`crate::streaming::StreamingAggregator::ingest_quantized`] /
    /// [`ingest_topk`](crate::streaming::StreamingAggregator::ingest_topk)
    /// path — no per-update `Vec<Matrix>` is ever materialised. The
    /// broadcast downlink and the edge→root hop stay full precision
    /// (partials are already one-model-per-edge; compressing them would
    /// compound quantisation error at the root). Results are identical at
    /// every thread count, like everything else in this engine.
    #[serde(default)]
    pub compression: CompressionMode,
    /// Client-tier fault plan. Wildcard (`"*"`) probability rules express
    /// population-level drop-out/straggler/corruption rates.
    #[serde(default)]
    pub faults: Option<FaultPlan>,
    /// Edge-tier fault plan, consulted with client ids `"edge-{e}"` on the
    /// edge→root forward: a dropped edge loses its whole shard for the
    /// round; a timed-out edge partial is metered but discarded.
    #[serde(default)]
    pub edge_faults: Option<FaultPlan>,
    /// Also materialise every kept update and check the hierarchy against
    /// the batch aggregate each round: bitwise for flat FedAvg, ≤1e-9
    /// relative otherwise. Costs the O(clients × model) memory the
    /// streaming path avoids — a correctness gate, not a production mode.
    /// Ignored when an edge-tier fault plan is set (lost shards make the
    /// flat batch reference incomparable).
    #[serde(default)]
    pub verify_streaming: bool,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        Self {
            clients: 10_000,
            rounds: 5,
            participation: 0.1,
            edges: 16,
            aggregator: Aggregator::FedAvg,
            seed: 0,
            threads: 1,
            trained_fraction: 0.0,
            compression: CompressionMode::None,
            faults: None,
            edge_faults: None,
            verify_streaming: false,
        }
    }
}

impl ScaleConfig {
    /// Validates every knob before a run.
    ///
    /// # Errors
    ///
    /// [`FederatedError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), FederatedError> {
        let bad = |field: &str, message: String| FederatedError::InvalidConfig {
            field: field.to_string(),
            message,
        };
        if self.clients == 0 {
            return Err(bad("clients", "must be at least 1".to_string()));
        }
        if self.rounds == 0 {
            return Err(bad("rounds", "must be at least 1".to_string()));
        }
        if !(self.participation > 0.0 && self.participation <= 1.0) {
            return Err(bad(
                "participation",
                format!("must be in (0, 1], got {}", self.participation),
            ));
        }
        if self.edges == 0 || self.edges > self.clients {
            return Err(bad(
                "edges",
                format!(
                    "need between 1 and {} (the population), got {}",
                    self.clients, self.edges
                ),
            ));
        }
        if !self.aggregator.supports_streaming() {
            return Err(bad(
                "aggregator",
                format!(
                    "{} cannot stream; the scale engine supports FedAvg and TrimmedMean",
                    self.aggregator.name()
                ),
            ));
        }
        if let Aggregator::TrimmedMean { trim } = self.aggregator {
            if self.edges > 1 && self.edges <= 2 * trim {
                return Err(bad(
                    "edges",
                    format!(
                        "trimmed mean with trim {trim} at the root needs more than {} \
                         edge partials, got {}",
                        2 * trim,
                        self.edges
                    ),
                ));
            }
        }
        if !(self.trained_fraction >= 0.0 && self.trained_fraction <= 1.0) {
            return Err(bad(
                "trained_fraction",
                format!("must be in [0, 1], got {}", self.trained_fraction),
            ));
        }
        if let CompressionMode::TopKDelta { k } = self.compression {
            if k == 0 {
                return Err(bad(
                    "compression.k",
                    "TopKDelta must keep at least 1 coordinate per tensor".to_string(),
                ));
            }
        }
        if let Some(plan) = &self.faults {
            plan.validate()?;
        }
        if let Some(plan) = &self.edge_faults {
            plan.validate()?;
        }
        Ok(())
    }

    /// The edge fan-out width a run will use: `threads` itself, or — when
    /// `threads == 0` — the process-wide [`parallel::threads`], the same
    /// knob `FederatedConfig.threads` installs at the start of a
    /// simulation run. The two therefore compose: a simulation configures
    /// the pool once and a scale run with `threads: 0` inherits it.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            parallel::threads()
        } else {
            self.threads
        }
    }
}

/// A lightweight stand-in for a full federated client: everything the
/// protocol needs, nothing the model holds.
///
/// Specs are derived deterministically from the config seed and the data
/// generator's zone profiles — client `i` belongs to Shenzhen zone
/// `ALL[i % 3]`, carries a per-client dataset size, and synthesises
/// updates whose spread follows its zone's noise level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientSpec {
    /// Population index (also the shard key).
    pub index: usize,
    /// The Shenzhen zone whose profile shapes this client's updates.
    pub zone: Zone,
    /// Local dataset size (FedAvg weighting), 24–127 hourly windows.
    pub sample_count: usize,
    /// Update spread around the global model, from the zone profile's
    /// noise level scaled by its demand base.
    pub amplitude: f64,
}

impl ClientSpec {
    fn derive(index: usize, seed: u64) -> Self {
        let zone = Zone::ALL[index % Zone::ALL.len()];
        let profile = ZoneProfile::shenzhen(zone);
        let h = fnv1a(&[seed, index as u64]);
        Self {
            index,
            zone,
            sample_count: 24 + (h % 104) as usize,
            amplitude: profile.noise_level * profile.base / 40.0,
        }
    }

    /// The client's federation id (`"c000042"`), the key the fault plan
    /// matches against.
    pub fn id(&self) -> String {
        format!("c{:06}", self.index)
    }
}

/// Per-round statistics of a scale run. Event-level fault telemetry is
/// deliberately summarised to counters: at 100k clients a `Vec<FaultEvent>`
/// per round would be exactly the O(clients) state this engine exists to
/// avoid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleRoundStats {
    /// Zero-based round index.
    pub round: usize,
    /// Clients sampled by the scheduler.
    pub sampled: usize,
    /// Client updates folded into the final global (lost shards excluded).
    pub aggregated: usize,
    /// Sampled clients that dropped out before training.
    pub dropped: usize,
    /// Updates that crossed the channel but were discarded (timed-out
    /// stragglers, exhausted retries).
    pub wasted: usize,
    /// Updates corrupted in flight (and still aggregated — robustness is
    /// the aggregator's job).
    pub corrupted: usize,
    /// Kept clients that ran real local training this round (the
    /// [`ScaleConfig::trained_fraction`] subset; the rest synthesised).
    #[serde(default)]
    pub trained: usize,
    /// Edge partials the root aggregated.
    pub edges_kept: usize,
    /// Shards lost on the edge→root hop (edge drop-out/timeout).
    pub edges_lost: usize,
    /// Client→edge plus edge→root wire bytes, retries included.
    pub uplink_bytes: usize,
    /// Root→client broadcast bytes (zero in round 0).
    pub downlink_bytes: usize,
    /// Peak live aggregation state this round: the root accumulator plus
    /// one edge accumulator per concurrently active fold (at most
    /// `min(threads, edges)`).
    pub peak_state_bytes: usize,
    /// Wall-clock duration of the round on this host.
    #[serde(skip, default)]
    pub duration: Duration,
}

/// Result of a completed scale run.
#[derive(Debug, Clone)]
pub struct ScaleOutcome {
    /// Per-round statistics.
    pub rounds: Vec<ScaleRoundStats>,
    /// The final global weights.
    pub global_weights: Vec<Matrix>,
    /// Bytes/messages exchanged across both tiers.
    pub traffic: TrafficTotals,
    /// Peak live streaming-aggregation state across the run — the number
    /// `bench_scale` reports. O(model · workers), independent of the
    /// population.
    pub peak_aggregation_bytes: usize,
    /// What the batch path would have held at its worst round:
    /// `max_round(kept clients) × model bytes`. The streaming win is the
    /// ratio of this to [`ScaleOutcome::peak_aggregation_bytes`].
    pub materialized_equivalent_bytes: usize,
    /// One model's worth of f64 payload, for scale-free reporting.
    pub model_bytes: usize,
    /// Total wall-clock time.
    pub total_duration: Duration,
}

impl ScaleOutcome {
    /// FNV-1a checksum of the binary-encoded final global weights as 16
    /// lowercase hex digits — the determinism anchor for scale runs.
    pub fn weights_checksum(&self) -> String {
        format!("{:016x}", wire::weights_checksum(&self.global_weights))
    }
}

/// How a shard's partial fares on the edge→root hop.
enum EdgeForward {
    /// Shard had no kept clients this round — nothing to forward.
    Empty,
    /// Edge dropped out: the partial never leaves, the shard is lost.
    Dropped,
    /// Partial crossed the channel `attempts` times but the root discards
    /// it (edge straggler past the timeout, exhausted retries).
    Waste { attempts: usize },
    /// Partial reaches the root (possibly corrupted/delayed in flight).
    Keep {
        fault: Option<FaultKind>,
        attempts: usize,
    },
}

/// Real local training for the [`ScaleConfig::trained_fraction`] subset:
/// a pristine model template plus a tiny, deterministic per-client
/// forecasting task (a zone-shaped daily wave with per-client phase and
/// zone-scaled noise). A selected client clones the template fresh each
/// round — optimizer state (Adam moments) lives on the [`Sequential`], so
/// sharing one instance across clients would make results depend on
/// training order.
///
/// The dataset is deliberately small (default 8 windows, 1 epoch): the
/// point is to run the *real* fused train-step kernels inside the scale
/// path, not to converge a model per client.
#[derive(Debug, Clone)]
pub struct ScaleTrainer {
    /// Architecture template; its weights are replaced by each round's
    /// global model before training.
    model: Sequential,
    /// Input window length (the model consumes `lookback x 1` sequences).
    lookback: usize,
    /// Synthetic windows per client per round.
    samples_per_client: usize,
    /// The (tiny) local schedule.
    train: TrainConfig,
}

impl ScaleTrainer {
    /// A trainer over `model`, consuming `lookback x 1` input windows.
    /// Defaults to 8 windows and a single epoch per client per round.
    pub fn new(model: Sequential, lookback: usize) -> Self {
        Self {
            model,
            lookback: lookback.max(1),
            samples_per_client: 8,
            train: TrainConfig {
                epochs: 1,
                batch_size: 8,
                shuffle: false,
                ..TrainConfig::default()
            },
        }
    }

    /// Overrides the per-client synthetic dataset size.
    pub fn with_samples(mut self, samples: usize) -> Self {
        self.samples_per_client = samples.max(1);
        self
    }

    /// Trains one client for one round: fresh model clone, global weights
    /// in, a deterministic `(seed, round, index)`-keyed dataset, one tiny
    /// fit. Pure — no engine state is touched, so folds can call this
    /// from any worker thread.
    fn train_update(
        &self,
        spec: &ClientSpec,
        round: usize,
        seed: u64,
        global: &[Matrix],
    ) -> Result<LocalUpdate, FederatedError> {
        let mut model = self.model.clone();
        model
            .set_weights(global)
            .map_err(|e| FederatedError::Aggregation(format!("scale trainer: {e}")))?;
        let key = fnv1a(&[0xda7a, round as u64, spec.index as u64]);
        let mut rng = StdRng::seed_from_u64(seed ^ key);
        let n = self.samples_per_client;
        let phase = (spec.index % 24) as f64;
        let noise = spec.amplitude.min(0.25);
        let series: Vec<f64> = (0..self.lookback + n)
            .map(|t| {
                let hour = (t as f64 + phase) % 24.0;
                let daily = (std::f64::consts::TAU * hour / 24.0).sin();
                0.5 + 0.35 * daily + noise * (rng.gen::<f64>() - 0.5)
            })
            .collect();
        let samples: Vec<Sample> = (0..n)
            .map(|i| {
                Sample::new(
                    Matrix::column_vector(&series[i..i + self.lookback]),
                    Matrix::from_vec(1, 1, vec![series[i + self.lookback]]),
                )
            })
            .collect();
        let history = model
            .fit(&samples, &self.train)
            .map_err(|e| FederatedError::Aggregation(format!("scale trainer: {e}")))?;
        Ok(LocalUpdate {
            client_id: spec.id(),
            weights: model.weights(),
            // Keep the spec's FedAvg weight: the pre-pass sized the
            // accumulators from it before training ran.
            sample_count: spec.sample_count,
            train_loss: history.final_train_loss().unwrap_or(f64::NAN),
            duration: Duration::ZERO,
            simulated_extra_seconds: 0.0,
        })
    }
}

/// What one edge-shard fold returns from the parallel fan-out: everything
/// the join needs, nothing that aliases the engine.
struct EdgeFold {
    /// The shard aggregate (pending the edge→root forward decision), or
    /// the first error the fold hit. Errors surface at the join in
    /// edge-index order, exactly where a serial run would report them.
    partial: Result<Vec<Matrix>, FederatedError>,
    /// Largest live accumulator state during this fold.
    peak_state: usize,
    /// Whether the accumulator held a constant size after its first
    /// ingest — the in-run half of the O(model · workers) bound, checked
    /// under [`ScaleConfig::verify_streaming`].
    state_stable: bool,
    /// Kept clients that ran real local training in this shard.
    trained: usize,
    /// Exact uplink payload bytes per kept update, in shard order — the
    /// real encoded length under [`ScaleConfig::compression`] (equal to
    /// the full-precision size when uncompressed). A pure function of the
    /// update, so the join's metering is thread-invariant.
    kept_payload_bytes: Vec<usize>,
    /// Kept updates, materialised only under `verify_streaming`.
    batch_reference: Vec<LocalUpdate>,
}

/// The large-population engine. See the module docs for the topology.
///
/// # Examples
///
/// ```
/// use evfad_federated::scale::{ScaleConfig, ScaleEngine};
/// use evfad_tensor::Matrix;
///
/// let template = vec![Matrix::filled(4, 4, 0.1), Matrix::filled(1, 4, -0.2)];
/// let cfg = ScaleConfig { clients: 1_000, rounds: 2, edges: 4, ..ScaleConfig::default() };
/// let mut engine = ScaleEngine::new(template, cfg)?;
/// let out = engine.run()?;
/// assert_eq!(out.rounds.len(), 2);
/// assert_eq!(out.rounds[0].sampled, 100); // C = 0.1 of 1000
/// assert!(out.peak_aggregation_bytes < out.materialized_equivalent_bytes);
/// # Ok::<(), evfad_federated::FederatedError>(())
/// ```
#[derive(Debug)]
pub struct ScaleEngine {
    config: ScaleConfig,
    template: Vec<Matrix>,
    population: Vec<ClientSpec>,
    channel: MeteredChannel,
    trainer: Option<ScaleTrainer>,
}

impl ScaleEngine {
    /// Builds the engine and derives the population from the config seed.
    ///
    /// # Errors
    ///
    /// [`FederatedError::InvalidConfig`] (see [`ScaleConfig::validate`]),
    /// or [`FederatedError::Aggregation`] for an empty model template.
    pub fn new(template: Vec<Matrix>, config: ScaleConfig) -> Result<Self, FederatedError> {
        config.validate()?;
        if template.is_empty() {
            return Err(FederatedError::Aggregation(
                "scale engine needs a non-empty model template".to_string(),
            ));
        }
        let population = (0..config.clients)
            .map(|i| ClientSpec::derive(i, config.seed))
            .collect();
        Ok(Self {
            config,
            template,
            population,
            channel: MeteredChannel::new(),
            trainer: None,
        })
    }

    /// Installs the real-training path for the
    /// [`ScaleConfig::trained_fraction`] subset.
    ///
    /// # Errors
    ///
    /// [`FederatedError::Aggregation`] when the trainer's model cannot
    /// take the engine's template weights (shape mismatch) — caught here
    /// rather than mid-run on a worker thread.
    pub fn with_trainer(mut self, trainer: ScaleTrainer) -> Result<Self, FederatedError> {
        let mut probe = trainer.model.clone();
        probe.set_weights(&self.template).map_err(|e| {
            FederatedError::Aggregation(format!(
                "scale trainer model does not fit the engine template: {e}"
            ))
        })?;
        self.trainer = Some(trainer);
        Ok(self)
    }

    /// The derived population specs.
    pub fn population(&self) -> &[ClientSpec] {
        &self.population
    }

    /// The configured run.
    pub fn config(&self) -> &ScaleConfig {
        &self.config
    }

    /// The edge shard client `index` belongs to: contiguous, balanced.
    fn edge_of(&self, index: usize) -> usize {
        index * self.config.edges / self.population.len()
    }

    /// Synthesises client `spec`'s round update: the current global model
    /// plus zone-scaled noise that damps as rounds progress, seeded by
    /// `(seed, round, index)` — deterministic, thread-free.
    fn synth_update(&self, spec: &ClientSpec, round: usize, global: &[Matrix]) -> LocalUpdate {
        let key = fnv1a(&[0x5ca1e, round as u64, spec.index as u64]);
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ key);
        let damp = 1.0 / (1.0 + round as f64);
        let weights = global
            .iter()
            .map(|g| {
                let mut m = g.clone();
                for v in m.as_mut_slice() {
                    *v += spec.amplitude * damp * (rng.gen::<f64>() - 0.5);
                }
                m
            })
            .collect();
        LocalUpdate {
            client_id: spec.id(),
            weights,
            sample_count: spec.sample_count,
            train_loss: spec.amplitude * damp,
            duration: Duration::ZERO,
            simulated_extra_seconds: 0.0,
        }
    }

    /// Pure per-`(seed, round, client)` Bernoulli draw selecting the
    /// real-training subset among kept clients. Independent of fault
    /// decisions and of every other client — thread-free by construction.
    fn trains_this_round(&self, index: usize, round: usize) -> bool {
        if self.trainer.is_none() || self.config.trained_fraction <= 0.0 {
            return false;
        }
        let key = fnv1a(&[0xf17ed, round as u64, index as u64]);
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ key);
        rng.gen::<f64>() < self.config.trained_fraction
    }

    /// Streams one shard's kept updates through a fresh accumulator and
    /// returns the shard aggregate plus the join's bookkeeping. Shared by
    /// the flat path (where the result *is* the next global) and the
    /// hierarchical path (where it becomes an edge partial).
    ///
    /// This is the unit of parallel work: it takes `&self` only, touches
    /// no channel or round state, and synthesises/trains, disposes, and
    /// ingests in shard order — so a fold's output is a pure function of
    /// its inputs and identical on every thread. `plan` entries are the
    /// pure pre-pass decisions; `dispose` re-derives them identically
    /// while recording (discarded) side effects. Metering happens at the
    /// join, from the same plan.
    fn fold_shard(
        &self,
        round: usize,
        global: &[Matrix],
        plan: &[(usize, Option<FaultKind>, usize)],
        shard_total: f64,
        gate: &FaultGate,
        verify: bool,
    ) -> EdgeFold {
        let mut agg = self
            .config
            .aggregator
            .streaming(shard_total, plan.len())
            .expect("validated streamable");
        // Event/wait sinks: the scale engine keeps counters, not O(clients)
        // event telemetry, and reports wall-clock only.
        let mut events: Vec<FaultEvent> = Vec::new();
        let mut timeout_wait = 0.0_f64;
        let mut fold = EdgeFold {
            partial: Ok(Vec::new()),
            peak_state: 0,
            state_stable: true,
            trained: 0,
            kept_payload_bytes: Vec::with_capacity(plan.len()),
            batch_reference: Vec::new(),
        };
        // Per-fold codec scratch: the first client of the shard warms the
        // buffers, every later encode in this fold reuses them. The
        // payload buffer holds the encoded uplink the fused ingest reads.
        let mode = self.config.compression;
        let raw_len = wire::encoded_size(global);
        let mut scratch = CodecScratch::default();
        let mut payload = BytesMut::new();
        let mut settled_state = 0usize;
        for &(ci, fault, _attempts) in plan {
            let spec = &self.population[ci];
            let mut update = if self.trains_this_round(ci, round) {
                fold.trained += 1;
                let trainer = self.trainer.as_ref().expect("trains_this_round gated");
                match trainer.train_update(spec, round, self.config.seed, global) {
                    Ok(update) => update,
                    Err(e) => {
                        fold.partial = Err(e);
                        return fold;
                    }
                }
            } else {
                self.synth_update(spec, round, global)
            };
            let disposed = gate.dispose(
                round,
                fault,
                &mut update,
                &mut events,
                &mut timeout_wait,
                true,
            );
            debug_assert!(matches!(disposed, Disposition::Keep { .. }));
            events.clear();
            // Uplink encode + fused edge fold. The lossy modes build the
            // real compressed payload (post-fault, so corruption crosses
            // the wire exactly as the protocol ships it) and stream it
            // into the accumulator without materialising a decode.
            let ingested = match mode {
                CompressionMode::None => {
                    fold.kept_payload_bytes.push(raw_len);
                    agg.ingest(&update)
                }
                CompressionMode::Quant8 => {
                    crate::compression::QuantizedUpdate::quantize_into(
                        &update.weights,
                        &mut scratch.quant,
                    );
                    wire::encode_quantized_into(&mut payload, &scratch.quant);
                    fold.kept_payload_bytes.push(payload.len());
                    agg.ingest_quantized(&update.client_id, update.sample_count, &payload)
                }
                CompressionMode::TopKDelta { k } => {
                    crate::compression::SparseDelta::top_k_into(
                        &update.weights,
                        global,
                        k,
                        &mut scratch.picked,
                        &mut scratch.sparse,
                    );
                    wire::encode_sparse_into(&mut payload, &scratch.sparse);
                    fold.kept_payload_bytes.push(payload.len());
                    agg.ingest_topk(&update.client_id, update.sample_count, global, &payload)
                }
            };
            if let Err(e) = ingested {
                fold.partial = Err(e);
                return fold;
            }
            let state = agg.state_bytes();
            if settled_state == 0 {
                settled_state = state;
            } else if state != settled_state {
                fold.state_stable = false;
            }
            fold.peak_state = fold.peak_state.max(state);
            if verify {
                // The batch reference must see what the aggregator saw:
                // the server-side decode of the encoded payload.
                scratch.decode_into(mode, global, &mut update.weights);
                fold.batch_reference.push(update);
            }
        }
        fold.partial = agg.finish();
        fold
    }

    /// Runs the full schedule.
    ///
    /// # Errors
    ///
    /// * [`FederatedError::InvalidConfig`] from up-front validation;
    /// * [`FederatedError::InsufficientParticipants`] when faults starve a
    ///   round below the plan's floor (or lose every shard);
    /// * [`FederatedError::Aggregation`] from the streaming rules (e.g. a
    ///   NaN-flooded coordinate exceeding trimmed mean's containment
    ///   budget) or a failed [`ScaleConfig::verify_streaming`] check.
    pub fn run(&mut self) -> Result<ScaleOutcome, FederatedError> {
        self.config.validate()?;
        if self.config.trained_fraction > 0.0 && self.trainer.is_none() {
            return Err(FederatedError::InvalidConfig {
                field: "trained_fraction".to_string(),
                message: format!(
                    "{} of kept clients should train for real, but no trainer is \
                     installed (ScaleEngine::with_trainer)",
                    self.config.trained_fraction
                ),
            });
        }
        self.channel.reset();
        let start = Instant::now();
        let cfg = self.config.clone();
        let gate = FaultGate::new(cfg.faults.clone());
        let edge_gate = FaultGate::new(cfg.edge_faults.clone());
        let scheduler = Scheduler::new(cfg.participation, cfg.seed);
        let n = self.population.len();
        let mut global = self.template.clone();
        let update_bytes = wire::encoded_size(&global);
        let model_bytes: usize = global.iter().map(|m| m.len() * 8).sum();
        let verify = cfg.verify_streaming && cfg.edge_faults.is_none();
        // Wave width for the parallel fan-out: at most this many shard
        // folds (and thus live edge accumulators) exist at once.
        let fanout = cfg.effective_threads().max(1).min(cfg.edges);
        // Scratch for metering wasted uploads in the (serial) pre-pass;
        // the per-shard folds carry their own.
        let mut waste_scratch = CodecScratch::default();
        let mut rounds = Vec::with_capacity(cfg.rounds);
        let mut peak_aggregation_bytes = 0usize;
        let mut materialized_equivalent_bytes = 0usize;

        for round in 0..cfg.rounds {
            let round_start = Instant::now();
            let participants = scheduler.sample(round, n);
            let sampled = participants.len();
            let mut downlink_bytes = 0usize;
            if round > 0 {
                for _ in 0..sampled {
                    self.channel.record_bytes(update_bytes);
                }
                downlink_bytes = update_bytes * sampled;
            }

            // Pure fault pre-pass: shard membership, surviving counts, and
            // sample totals — everything the streaming constructors need —
            // before a single update is synthesised. `fault_for` is a pure
            // function of (seed, round, id), so the main pass below sees
            // the identical decisions.
            let mut shard_kept: Vec<Vec<(usize, Option<FaultKind>, usize)>> =
                vec![Vec::new(); cfg.edges];
            // Summed as f64 in kept order — the exact fold the batch
            // FedAvg performs over its updates.
            let mut shard_samples: Vec<f64> = vec![0.0; cfg.edges];
            let mut dropped = 0usize;
            let mut wasted = 0usize;
            let mut corrupted = 0usize;
            let mut uplink_bytes = 0usize;
            for &ci in &participants {
                let spec = &self.population[ci];
                let fault = gate.fault_for(round, &spec.id());
                if matches!(fault, Some(FaultKind::DropOut)) {
                    dropped += 1;
                    continue;
                }
                if matches!(fault, Some(FaultKind::Corrupt { .. })) {
                    corrupted += 1;
                }
                match gate.decide(fault) {
                    Disposition::Keep { attempts } => {
                        let e = self.edge_of(ci);
                        shard_kept[e].push((ci, fault, attempts));
                        shard_samples[e] += spec.sample_count as f64;
                    }
                    Disposition::Waste { attempts } => {
                        // Discarded uploads still crossed the channel —
                        // at their real encoded length. A wasted client
                        // never reaches a fold, so its payload is the
                        // synthesised update (waste dispositions never
                        // mutate the payload, and the real-training draw
                        // applies to kept clients only).
                        wasted += 1;
                        let len = match cfg.compression {
                            CompressionMode::None => update_bytes,
                            mode => {
                                let u = self.synth_update(spec, round, &global);
                                waste_scratch.encoded_len(mode, &u.weights, &global)
                            }
                        };
                        self.channel.record_attempts_bytes(len, attempts);
                        uplink_bytes += len * attempts;
                    }
                }
            }
            let kept_total: usize = shard_kept.iter().map(Vec::len).sum();
            if kept_total < gate.min_participants {
                return Err(FederatedError::InsufficientParticipants {
                    round,
                    survivors: kept_total,
                    required: gate.min_participants,
                });
            }

            // Edge-tier pre-pass (pure): which partials will reach the
            // root. The flat topology has no forward hop — its single
            // shard's aggregate *is* the next global.
            let forwards: Option<Vec<EdgeForward>> = if cfg.edges == 1 {
                None
            } else {
                Some(
                    (0..cfg.edges)
                        .map(|e| {
                            if shard_kept[e].is_empty() {
                                return EdgeForward::Empty;
                            }
                            let fault = edge_gate.fault_for(round, &format!("edge-{e}"));
                            if matches!(fault, Some(FaultKind::DropOut)) {
                                return EdgeForward::Dropped;
                            }
                            match edge_gate.decide(fault) {
                                Disposition::Keep { attempts } => {
                                    EdgeForward::Keep { fault, attempts }
                                }
                                Disposition::Waste { attempts } => EdgeForward::Waste { attempts },
                            }
                        })
                        .collect(),
                )
            };
            let mut root = match &forwards {
                None => None,
                Some(forwards) => {
                    let root_expected = forwards
                        .iter()
                        .filter(|f| matches!(f, EdgeForward::Keep { .. }))
                        .count();
                    if root_expected == 0 {
                        return Err(FederatedError::InsufficientParticipants {
                            round,
                            survivors: 0,
                            required: gate.min_participants.max(1),
                        });
                    }
                    let root_total: f64 = forwards
                        .iter()
                        .enumerate()
                        .filter(|(_, f)| matches!(f, EdgeForward::Keep { .. }))
                        .map(|(e, _)| shard_samples[e])
                        .sum();
                    Some(
                        cfg.aggregator
                            .streaming(root_total, root_expected)
                            .expect("validated streamable"),
                    )
                }
            };

            // Main pass: fold the shards in waves of `fanout` across the
            // worker pool, then join every wave at the root in strict
            // edge-index order. At most `fanout` edge accumulators are
            // live at once (a chunk holds one shard at a time), and the
            // root ingest order is a pure function of the edge index —
            // bitwise identical at every thread count.
            let mut aggregated = 0usize;
            let mut edges_kept = 0usize;
            let mut edges_lost = 0usize;
            let mut trained = 0usize;
            let mut round_peak_edge = 0usize;
            let mut batch_reference: Vec<LocalUpdate> = Vec::new();
            let mut flat_global: Option<Vec<Matrix>> = None;
            let mut slots: Vec<Option<EdgeFold>> = Vec::with_capacity(fanout);
            let mut wave_start = 0usize;
            while wave_start < cfg.edges {
                let wave = fanout.min(cfg.edges - wave_start);
                slots.clear();
                slots.resize_with(wave, || None);
                parallel::distribute(&mut slots, wave, |k, slot| {
                    let e = wave_start + k;
                    // Empty hierarchical shards have nothing to fold; the
                    // flat shard always folds so an empty round surfaces
                    // the streaming rule's own error.
                    if shard_kept[e].is_empty() && cfg.edges > 1 {
                        return;
                    }
                    *slot = Some(self.fold_shard(
                        round,
                        &global,
                        &shard_kept[e],
                        shard_samples[e],
                        &gate,
                        verify,
                    ));
                });
                for (k, slot) in slots.iter_mut().enumerate() {
                    let e = wave_start + k;
                    let Some(fold) = slot.take() else {
                        continue; // empty shard
                    };
                    // Kept clients' uploads crossed the channel whatever
                    // the edge's fate — meter them from the fold's exact
                    // per-update encoded lengths, in shard order.
                    for (&(_, _, attempts), &len) in
                        shard_kept[e].iter().zip(&fold.kept_payload_bytes)
                    {
                        self.channel.record_attempts_bytes(len, attempts);
                        uplink_bytes += len * attempts;
                    }
                    trained += fold.trained;
                    round_peak_edge = round_peak_edge.max(fold.peak_state);
                    if verify && !fold.state_stable {
                        return Err(FederatedError::Aggregation(format!(
                            "round {round}: edge {e} accumulator grew after its first \
                             ingest — the O(model · workers) bound is broken"
                        )));
                    }
                    let partial_weights = fold.partial?;
                    if verify {
                        batch_reference.extend(fold.batch_reference);
                    }
                    match (&mut root, &forwards) {
                        (None, _) => {
                            // Flat: the shard aggregate is the next global.
                            aggregated += shard_kept[e].len();
                            edges_kept += 1;
                            flat_global = Some(partial_weights);
                        }
                        (Some(root), Some(forwards)) => match forwards[e] {
                            EdgeForward::Empty => unreachable!("empty shards leave no fold"),
                            EdgeForward::Dropped => edges_lost += 1,
                            EdgeForward::Waste { attempts } => {
                                edges_lost += 1;
                                self.channel.record_attempts_bytes(update_bytes, attempts);
                                uplink_bytes += update_bytes * attempts;
                            }
                            EdgeForward::Keep { fault, attempts } => {
                                let mut partial = LocalUpdate {
                                    client_id: format!("edge-{e}"),
                                    weights: partial_weights,
                                    sample_count: shard_samples[e] as usize,
                                    train_loss: 0.0,
                                    duration: Duration::ZERO,
                                    simulated_extra_seconds: 0.0,
                                };
                                let mut edge_events: Vec<FaultEvent> = Vec::new();
                                let mut edge_wait = 0.0f64;
                                edge_gate.dispose(
                                    round,
                                    fault,
                                    &mut partial,
                                    &mut edge_events,
                                    &mut edge_wait,
                                    true,
                                );
                                self.channel.record_attempts_bytes(update_bytes, attempts);
                                uplink_bytes += update_bytes * attempts;
                                root.ingest(&partial)?;
                                edges_kept += 1;
                                aggregated += shard_kept[e].len();
                            }
                        },
                        (Some(_), None) => unreachable!("root implies forwards"),
                    }
                }
                wave_start += wave;
            }

            // Peak live state this round: the root accumulator plus one
            // edge accumulator per concurrently active fold. `active` is
            // exact, not a bound: waves are `fanout` wide and a chunk
            // never holds more than one shard.
            let nonempty = shard_kept.iter().filter(|plan| !plan.is_empty()).count();
            let active = fanout.min(nonempty.max(1));
            let (next_global, root_state) = match root {
                None => (flat_global.expect("flat shard always folds"), 0),
                Some(root) => {
                    let state = root.state_bytes();
                    (root.finish()?, state)
                }
            };
            let round_peak = root_state + active * round_peak_edge;
            if verify {
                check_against_batch(
                    cfg.aggregator,
                    cfg.edges,
                    &batch_reference,
                    &next_global,
                    round,
                )?;
            }
            global = next_global;
            peak_aggregation_bytes = peak_aggregation_bytes.max(round_peak);
            materialized_equivalent_bytes =
                materialized_equivalent_bytes.max(kept_total * model_bytes);
            rounds.push(ScaleRoundStats {
                round,
                sampled,
                aggregated,
                dropped,
                wasted,
                corrupted,
                trained,
                edges_kept,
                edges_lost,
                uplink_bytes,
                downlink_bytes,
                peak_state_bytes: round_peak,
                duration: round_start.elapsed(),
            });
        }

        Ok(ScaleOutcome {
            rounds,
            global_weights: global,
            traffic: self.channel.totals(),
            peak_aggregation_bytes,
            materialized_equivalent_bytes,
            model_bytes,
            total_duration: start.elapsed(),
        })
    }
}

/// The [`ScaleConfig::verify_streaming`] gate: the hierarchical streaming
/// result must match the flat batch aggregate over the same kept updates —
/// bitwise for flat FedAvg (same fold, same order), within 1e-9 relative
/// otherwise (reassociation across shards).
fn check_against_batch(
    aggregator: Aggregator,
    edges: usize,
    kept: &[LocalUpdate],
    streamed: &[Matrix],
    round: usize,
) -> Result<(), FederatedError> {
    let batch = aggregator.aggregate(kept)?;
    let exact = edges == 1 && matches!(aggregator, Aggregator::FedAvg);
    for (b, s) in batch.iter().zip(streamed) {
        for (x, y) in b.as_slice().iter().zip(s.as_slice()) {
            let ok = if exact {
                x.to_bits() == y.to_bits()
            } else {
                (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0)
            };
            if !ok {
                return Err(FederatedError::Aggregation(format!(
                    "round {round}: streaming result {y:e} diverged from batch {x:e} \
                     ({} check, {edges} edges)",
                    if exact { "bitwise" } else { "tolerance" }
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{Corruption, RoundSelector};

    fn template() -> Vec<Matrix> {
        vec![
            Matrix::filled(3, 4, 0.25),
            Matrix::filled(4, 1, -0.5),
            Matrix::filled(1, 1, 1.0),
        ]
    }

    fn cfg(clients: usize, edges: usize) -> ScaleConfig {
        ScaleConfig {
            clients,
            rounds: 3,
            edges,
            ..ScaleConfig::default()
        }
    }

    #[test]
    fn flat_fedavg_is_bitwise_identical_to_batch() {
        let mut engine = ScaleEngine::new(
            template(),
            ScaleConfig {
                verify_streaming: true,
                ..cfg(500, 1)
            },
        )
        .expect("engine");
        // verify_streaming asserts bitwise equality inside run().
        let out = engine.run().expect("flat run must match batch bitwise");
        assert!(out.global_weights.iter().all(Matrix::is_finite));
    }

    #[test]
    fn hierarchical_fedavg_matches_batch_to_tolerance() {
        let mut engine = ScaleEngine::new(
            template(),
            ScaleConfig {
                verify_streaming: true,
                ..cfg(1_000, 8)
            },
        )
        .expect("engine");
        engine.run().expect("hierarchical run within tolerance");
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut e = ScaleEngine::new(
                template(),
                ScaleConfig {
                    seed,
                    ..cfg(2_000, 4)
                },
            )
            .expect("engine");
            e.run().expect("run")
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.weights_checksum(), b.weights_checksum());
        assert_eq!(a.traffic, b.traffic);
        // Compare through serde: `duration` is wall-clock and #[serde(skip)].
        assert_eq!(
            serde_json::to_string(&a.rounds).expect("serialize"),
            serde_json::to_string(&b.rounds).expect("serialize"),
        );
        assert_ne!(run(8).weights_checksum(), a.weights_checksum());
    }

    #[test]
    fn peak_memory_is_o_model_not_o_clients() {
        let small = {
            let mut e = ScaleEngine::new(template(), cfg(1_000, 4)).expect("engine");
            e.run().expect("run")
        };
        let large = {
            let mut e = ScaleEngine::new(template(), cfg(10_000, 4)).expect("engine");
            e.run().expect("run")
        };
        // 10x the population: materialised-equivalent memory grows ~10x,
        // live streaming state does not grow at all.
        assert_eq!(large.peak_aggregation_bytes, small.peak_aggregation_bytes);
        assert!(large.materialized_equivalent_bytes > 8 * small.materialized_equivalent_bytes);
        // FedAvg live state: root + one edge accumulator = 2 models.
        assert_eq!(large.peak_aggregation_bytes, 2 * large.model_bytes);
    }

    #[test]
    fn population_follows_the_zone_profiles() {
        let engine = ScaleEngine::new(template(), cfg(999, 4)).expect("engine");
        let pop = engine.population();
        assert_eq!(pop.len(), 999);
        assert_eq!(pop[0].zone, Zone::Z102);
        assert_eq!(pop[1].zone, Zone::Z105);
        assert_eq!(pop[2].zone, Zone::Z108);
        assert!(pop.iter().all(|s| (24..128).contains(&s.sample_count)));
        assert!(pop.iter().all(|s| s.amplitude > 0.0));
        assert_eq!(pop[41].id(), "c000041");
    }

    #[test]
    fn wildcard_dropout_thins_every_round() {
        let plan = FaultPlan::new(3).with_rule(
            "*",
            RoundSelector::Probability { p: 0.2 },
            FaultKind::DropOut,
        );
        let mut engine = ScaleEngine::new(
            template(),
            ScaleConfig {
                faults: Some(plan),
                ..cfg(5_000, 4)
            },
        )
        .expect("engine");
        let out = engine.run().expect("run");
        for r in &out.rounds {
            let rate = r.dropped as f64 / r.sampled as f64;
            assert!(
                (0.1..0.3).contains(&rate),
                "round {} drop rate {rate} far from the configured 0.2",
                r.round
            );
            assert_eq!(r.sampled, r.aggregated + r.dropped + r.wasted);
        }
    }

    #[test]
    fn edge_dropout_loses_the_shard() {
        let edge_plan =
            FaultPlan::new(1).with_rule("edge-2", RoundSelector::Every, FaultKind::DropOut);
        let clean = {
            let mut e = ScaleEngine::new(template(), cfg(4_000, 4)).expect("engine");
            e.run().expect("run")
        };
        let faulty = {
            let mut e = ScaleEngine::new(
                template(),
                ScaleConfig {
                    edge_faults: Some(edge_plan),
                    ..cfg(4_000, 4)
                },
            )
            .expect("engine");
            e.run().expect("run")
        };
        for (c, f) in clean.rounds.iter().zip(&faulty.rounds) {
            assert_eq!(f.edges_lost, 1);
            assert_eq!(f.edges_kept, 3);
            assert!(f.aggregated < c.aggregated);
        }
        assert_ne!(clean.weights_checksum(), faulty.weights_checksum());
    }

    #[test]
    fn trimmed_mean_contains_wildcard_nan_floods_at_scale() {
        // 1% of clients NaN-flood every round; per-shard trimmed mean with
        // budget to spare must keep the global finite.
        let plan = FaultPlan::new(9).with_rule(
            "*",
            RoundSelector::Probability { p: 0.01 },
            FaultKind::Corrupt {
                corruption: Corruption::NanFlood,
            },
        );
        let mut engine = ScaleEngine::new(
            template(),
            ScaleConfig {
                aggregator: Aggregator::TrimmedMean { trim: 20 },
                faults: Some(plan),
                edges: 1,
                rounds: 2,
                ..cfg(2_000, 1)
            },
        )
        .expect("engine");
        let out = engine.run().expect("contained");
        assert!(out.global_weights.iter().all(Matrix::is_finite));
        assert!(out.rounds.iter().all(|r| r.corrupted > 0));
    }

    #[test]
    fn traffic_accounts_both_tiers() {
        let mut engine = ScaleEngine::new(template(), cfg(1_000, 4)).expect("engine");
        let out = engine.run().expect("run");
        let model = template();
        let update_bytes = wire::encoded_size(&model);
        for r in &out.rounds {
            // kept client uplinks + 4 edge partials, no waste in a clean run.
            assert_eq!(r.uplink_bytes, (r.aggregated + r.edges_kept) * update_bytes);
            if r.round > 0 {
                assert_eq!(r.downlink_bytes, r.sampled * update_bytes);
            }
        }
        let accounted: usize = out
            .rounds
            .iter()
            .map(|r| r.uplink_bytes + r.downlink_bytes)
            .sum();
        assert_eq!(accounted, out.traffic.bytes);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let reject = |c: ScaleConfig, field: &str| match ScaleEngine::new(template(), c)
            .map(|_| ())
            .unwrap_err()
        {
            FederatedError::InvalidConfig { field: f, .. } => assert_eq!(f, field),
            other => panic!("expected InvalidConfig for {field}, got {other}"),
        };
        reject(
            ScaleConfig {
                clients: 0,
                ..ScaleConfig::default()
            },
            "clients",
        );
        reject(
            ScaleConfig {
                rounds: 0,
                ..ScaleConfig::default()
            },
            "rounds",
        );
        reject(
            ScaleConfig {
                participation: 0.0,
                ..ScaleConfig::default()
            },
            "participation",
        );
        reject(
            ScaleConfig {
                edges: 0,
                ..ScaleConfig::default()
            },
            "edges",
        );
        reject(
            ScaleConfig {
                aggregator: Aggregator::Median,
                ..ScaleConfig::default()
            },
            "aggregator",
        );
        reject(
            ScaleConfig {
                aggregator: Aggregator::TrimmedMean { trim: 8 },
                edges: 16,
                ..ScaleConfig::default()
            },
            "edges",
        );
    }

    /// Zeroes the one legitimately thread-dependent stat so round stats
    /// can be compared across thread counts.
    fn stats_without_peak(rounds: &[ScaleRoundStats]) -> String {
        let stripped: Vec<ScaleRoundStats> = rounds
            .iter()
            .map(|r| ScaleRoundStats {
                peak_state_bytes: 0,
                ..r.clone()
            })
            .collect();
        serde_json::to_string(&stripped).expect("serialize")
    }

    #[test]
    fn parallel_fanout_is_bitwise_identical_to_serial() {
        let plan = FaultPlan::new(2)
            .with_rule(
                "*",
                RoundSelector::Probability { p: 0.15 },
                FaultKind::DropOut,
            )
            .with_rule(
                "*",
                RoundSelector::Probability { p: 0.05 },
                FaultKind::Transient { failures: 2 },
            );
        let run = |threads: usize| {
            let mut e = ScaleEngine::new(
                template(),
                ScaleConfig {
                    threads,
                    faults: Some(plan.clone()),
                    ..cfg(2_000, 8)
                },
            )
            .expect("engine");
            e.run().expect("run")
        };
        let serial = run(1);
        for threads in [2usize, 4, 8, 16] {
            let par = run(threads);
            assert_eq!(
                par.weights_checksum(),
                serial.weights_checksum(),
                "threads={threads}"
            );
            assert_eq!(par.traffic, serial.traffic, "threads={threads}");
            assert_eq!(
                stats_without_peak(&par.rounds),
                stats_without_peak(&serial.rounds),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn peak_state_grows_with_workers_not_population() {
        let run = |clients: usize, threads: usize| {
            let mut e = ScaleEngine::new(
                template(),
                ScaleConfig {
                    threads,
                    verify_streaming: true,
                    ..cfg(clients, 8)
                },
            )
            .expect("engine");
            e.run().expect("run")
        };
        // FedAvg: root + min(threads, edges) live edge accumulators.
        let serial = run(2_000, 1);
        assert_eq!(serial.peak_aggregation_bytes, 2 * serial.model_bytes);
        let par = run(2_000, 4);
        assert_eq!(par.peak_aggregation_bytes, 5 * par.model_bytes);
        // Population-invariant at a fixed worker count.
        let wide = run(8_000, 4);
        assert_eq!(wide.peak_aggregation_bytes, par.peak_aggregation_bytes);
    }

    #[test]
    fn real_training_runs_in_the_loop_and_stays_deterministic() {
        let model = evfad_nn::forecaster_model(4, 7);
        let weights = model.weights();
        let mk = |threads: usize, trained_fraction: f64| {
            let c = ScaleConfig {
                clients: 300,
                rounds: 2,
                edges: 4,
                threads,
                trained_fraction,
                ..ScaleConfig::default()
            };
            ScaleEngine::new(weights.clone(), c)
                .expect("engine")
                .with_trainer(ScaleTrainer::new(model.clone(), 6).with_samples(4))
                .expect("trainer fits the template")
        };
        let a = mk(1, 0.2).run().expect("run");
        let b = mk(1, 0.2).run().expect("run");
        assert_eq!(a.weights_checksum(), b.weights_checksum());
        assert!(a.rounds.iter().all(|r| r.trained > 0));
        assert!(a.rounds.iter().all(|r| r.trained < r.aggregated));
        assert!(a.global_weights.iter().all(Matrix::is_finite));
        // The parallel fan-out trains the same clients with the same
        // data: bitwise-identical global.
        let par = mk(4, 0.2).run().expect("run");
        assert_eq!(par.weights_checksum(), a.weights_checksum());
        assert_eq!(
            stats_without_peak(&par.rounds),
            stats_without_peak(&a.rounds)
        );
        // And the trained subset genuinely moves the model relative to
        // pure synthesis.
        let synth_only = mk(1, 0.0).run().expect("run");
        assert!(synth_only.rounds.iter().all(|r| r.trained == 0));
        assert_ne!(synth_only.weights_checksum(), a.weights_checksum());
    }

    #[test]
    fn trained_fraction_without_trainer_is_rejected() {
        let mut e = ScaleEngine::new(
            template(),
            ScaleConfig {
                trained_fraction: 0.5,
                ..cfg(100, 2)
            },
        )
        .expect("engine");
        match e.run().unwrap_err() {
            FederatedError::InvalidConfig { field, .. } => assert_eq!(field, "trained_fraction"),
            other => panic!("expected InvalidConfig, got {other}"),
        }
    }

    #[test]
    fn trained_fraction_out_of_range_is_rejected() {
        for bad_value in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let err = ScaleConfig {
                trained_fraction: bad_value,
                ..ScaleConfig::default()
            }
            .validate()
            .unwrap_err();
            match err {
                FederatedError::InvalidConfig { field, .. } => {
                    assert_eq!(field, "trained_fraction", "value {bad_value}");
                }
                other => panic!("expected InvalidConfig for {bad_value}, got {other}"),
            }
        }
    }

    #[test]
    fn edges_over_clients_message_is_exact() {
        let err = ScaleConfig {
            clients: 100,
            edges: 101,
            ..ScaleConfig::default()
        }
        .validate()
        .unwrap_err();
        match err {
            FederatedError::InvalidConfig { field, message } => {
                assert_eq!(field, "edges");
                assert_eq!(message, "need between 1 and 100 (the population), got 101");
            }
            other => panic!("expected InvalidConfig, got {other}"),
        }
    }

    #[test]
    fn threads_zero_inherits_the_process_pool_width() {
        // Explicit widths stand alone…
        let explicit = ScaleConfig {
            threads: 5,
            ..ScaleConfig::default()
        };
        assert_eq!(explicit.effective_threads(), 5);
        // …while 0 composes with the process-wide knob that
        // `FederatedConfig.threads` installs at the start of a simulation
        // run (`parallel::set_threads`).
        parallel::set_threads(3);
        let inherited = ScaleConfig {
            threads: 0,
            ..ScaleConfig::default()
        }
        .effective_threads();
        parallel::set_threads(0);
        assert_eq!(inherited, 3);
    }

    #[test]
    fn compressed_uplink_is_deterministic_across_thread_counts() {
        // The fused Quant8 path end to end: encode per client, meter the
        // exact payload length, fold straight from the payload. Checksums,
        // traffic, and stats must be identical at every fan-out width.
        let run = |threads: usize, compression: CompressionMode| {
            let mut e = ScaleEngine::new(
                template(),
                ScaleConfig {
                    threads,
                    compression,
                    ..cfg(2_000, 8)
                },
            )
            .expect("engine");
            e.run().expect("run")
        };
        let serial = run(1, CompressionMode::Quant8);
        for threads in [2usize, 4] {
            let par = run(threads, CompressionMode::Quant8);
            assert_eq!(
                par.weights_checksum(),
                serial.weights_checksum(),
                "threads={threads}"
            );
            assert_eq!(par.traffic, serial.traffic, "threads={threads}");
            assert_eq!(
                stats_without_peak(&par.rounds),
                stats_without_peak(&serial.rounds),
                "threads={threads}"
            );
        }
        // Quantisation genuinely changes the fold (it is lossy) and
        // genuinely shrinks the uplink; the downlink stays full precision.
        let raw = run(1, CompressionMode::None);
        assert_ne!(serial.weights_checksum(), raw.weights_checksum());
        for (q, r) in serial.rounds.iter().zip(&raw.rounds) {
            assert!(q.uplink_bytes < r.uplink_bytes);
            assert_eq!(q.downlink_bytes, r.downlink_bytes);
        }
        // Peak aggregation state is unchanged: the fused fold never
        // materialises a decoded update.
        assert_eq!(serial.peak_aggregation_bytes, raw.peak_aggregation_bytes);
    }

    #[test]
    fn compressed_flat_fold_matches_batch_over_decoded_updates() {
        // verify_streaming under compression checks the fused streamed
        // fold against the batch aggregate over the server-side decodes
        // of the same payloads — bitwise for flat FedAvg.
        for compression in [CompressionMode::Quant8, CompressionMode::TopKDelta { k: 5 }] {
            let mut e = ScaleEngine::new(
                template(),
                ScaleConfig {
                    compression,
                    verify_streaming: true,
                    rounds: 2,
                    ..cfg(400, 1)
                },
            )
            .expect("engine");
            e.run()
                .expect("fused fold must match the batch over decoded payloads bitwise");
        }
    }

    #[test]
    fn compressed_waste_is_metered_at_encoded_length() {
        // Exhausted-transient uploads cross the channel at their real
        // (compressed) length, and the accounting identity still holds:
        // total traffic == Σ uplink + downlink.
        let plan = FaultPlan::new(5).with_rule(
            "*",
            RoundSelector::Probability { p: 0.1 },
            FaultKind::Transient { failures: 3 },
        );
        let mut e = ScaleEngine::new(
            template(),
            ScaleConfig {
                compression: CompressionMode::Quant8,
                faults: Some(plan),
                ..cfg(2_000, 4)
            },
        )
        .expect("engine");
        let out = e.run().expect("run");
        assert!(out.rounds.iter().any(|r| r.wasted > 0));
        let accounted: usize = out
            .rounds
            .iter()
            .map(|r| r.uplink_bytes + r.downlink_bytes)
            .sum();
        assert_eq!(accounted, out.traffic.bytes);
    }

    #[test]
    fn topk_k_zero_is_rejected() {
        let err = ScaleConfig {
            compression: CompressionMode::TopKDelta { k: 0 },
            ..ScaleConfig::default()
        }
        .validate()
        .unwrap_err();
        match err {
            FederatedError::InvalidConfig { field, .. } => assert_eq!(field, "compression.k"),
            other => panic!("expected InvalidConfig, got {other}"),
        }
    }

    #[test]
    fn scale_config_serde_round_trips() {
        let cfg = ScaleConfig {
            faults: Some(FaultPlan::new(3).with_rule(
                "*",
                RoundSelector::Probability { p: 0.05 },
                FaultKind::DropOut,
            )),
            ..ScaleConfig::default()
        };
        let json = serde_json::to_string(&cfg).expect("serialize");
        let back: ScaleConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(cfg, back);
    }
}
