//! Hierarchical large-population federation: 10k–100k lightweight clients,
//! edge-tier streaming aggregation, O(model) server memory.
//!
//! The in-process [`crate::FederatedSimulation`] trains real models and
//! tops out at a few hundred clients. This engine scales the *protocol* —
//! scheduling, faults, traffic, aggregation — to paper-style populations
//! by replacing full clients with [`ClientSpec`]s: a zone profile drawn
//! from the data generator ([`evfad_data::ZoneProfile`]), a sample count,
//! and a seed, from which each round's update is synthesised
//! deterministically around the current global model.
//!
//! # Topology and memory
//!
//! Clients are partitioned into `edges` contiguous shards. Each round:
//!
//! 1. the [`Scheduler`] samples a C-fraction of the population;
//! 2. a pure fault pre-pass ([`crate::faults`] decisions are functions of
//!    `(seed, round, client)`) fixes every shard's surviving update count
//!    and sample total, sizing the streaming accumulators up front;
//! 3. each edge streams its shard through a
//!    [`crate::streaming::StreamingAggregator`] and forwards **one**
//!    partial update to the root — the edge→root hop runs through the
//!    same fault model, keyed by ids `"edge-0"`, `"edge-1"`, …;
//! 4. the root streams the edge partials into the next global model.
//!
//! Shards are processed sequentially, so live aggregation state is one
//! root accumulator plus one edge accumulator — O(model), independent of
//! the population. The batch path would materialise every kept update:
//! O(clients × model). Both numbers are reported per run
//! ([`ScaleOutcome::peak_aggregation_bytes`] vs
//! [`ScaleOutcome::materialized_equivalent_bytes`]) and gated by
//! `bench_scale`.
//!
//! With `edges: 1` and FedAvg the hierarchy degenerates to the flat
//! streaming fold, which is bitwise-identical to the batch rule
//! ([`ScaleConfig::verify_streaming`] asserts this inline). With more
//! edges, FedAvg remains exact up to floating-point reassociation: each
//! partial is the sample-weighted mean of its shard and the root weighs
//! partials by shard sample totals, so the composition is the overall
//! weighted mean.

use crate::aggregate::Aggregator;
use crate::client::LocalUpdate;
use crate::error::FederatedError;
use crate::faults::{fnv1a, FaultEvent, FaultKind, FaultPlan};
use crate::scheduler::Scheduler;
use crate::server::{Disposition, FaultGate};
use crate::transport::{MeteredChannel, TrafficTotals};
use crate::wire;
use evfad_data::{Zone, ZoneProfile};
use evfad_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Schedule and topology of a large-population run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleConfig {
    /// Population size (the paper's federation, scaled: 10k–100k).
    pub clients: usize,
    /// Communication rounds.
    pub rounds: usize,
    /// C-fraction of clients sampled per round, in `(0, 1]`.
    pub participation: f64,
    /// Edge aggregators between clients and the root. `1` = flat
    /// (every client streams straight into the root accumulator).
    pub edges: usize,
    /// Aggregation rule — must stream
    /// ([`Aggregator::supports_streaming`]): FedAvg or TrimmedMean.
    pub aggregator: Aggregator,
    /// Seed for sampling, update synthesis, and population derivation.
    pub seed: u64,
    /// Client-tier fault plan. Wildcard (`"*"`) probability rules express
    /// population-level drop-out/straggler/corruption rates.
    #[serde(default)]
    pub faults: Option<FaultPlan>,
    /// Edge-tier fault plan, consulted with client ids `"edge-{e}"` on the
    /// edge→root forward: a dropped edge loses its whole shard for the
    /// round; a timed-out edge partial is metered but discarded.
    #[serde(default)]
    pub edge_faults: Option<FaultPlan>,
    /// Also materialise every kept update and check the hierarchy against
    /// the batch aggregate each round: bitwise for flat FedAvg, ≤1e-9
    /// relative otherwise. Costs the O(clients × model) memory the
    /// streaming path avoids — a correctness gate, not a production mode.
    /// Ignored when an edge-tier fault plan is set (lost shards make the
    /// flat batch reference incomparable).
    #[serde(default)]
    pub verify_streaming: bool,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        Self {
            clients: 10_000,
            rounds: 5,
            participation: 0.1,
            edges: 16,
            aggregator: Aggregator::FedAvg,
            seed: 0,
            faults: None,
            edge_faults: None,
            verify_streaming: false,
        }
    }
}

impl ScaleConfig {
    /// Validates every knob before a run.
    ///
    /// # Errors
    ///
    /// [`FederatedError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), FederatedError> {
        let bad = |field: &str, message: String| FederatedError::InvalidConfig {
            field: field.to_string(),
            message,
        };
        if self.clients == 0 {
            return Err(bad("clients", "must be at least 1".to_string()));
        }
        if self.rounds == 0 {
            return Err(bad("rounds", "must be at least 1".to_string()));
        }
        if !(self.participation > 0.0 && self.participation <= 1.0) {
            return Err(bad(
                "participation",
                format!("must be in (0, 1], got {}", self.participation),
            ));
        }
        if self.edges == 0 || self.edges > self.clients {
            return Err(bad(
                "edges",
                format!(
                    "need between 1 and {} (the population), got {}",
                    self.clients, self.edges
                ),
            ));
        }
        if !self.aggregator.supports_streaming() {
            return Err(bad(
                "aggregator",
                format!(
                    "{} cannot stream; the scale engine supports FedAvg and TrimmedMean",
                    self.aggregator.name()
                ),
            ));
        }
        if let Aggregator::TrimmedMean { trim } = self.aggregator {
            if self.edges > 1 && self.edges <= 2 * trim {
                return Err(bad(
                    "edges",
                    format!(
                        "trimmed mean with trim {trim} at the root needs more than {} \
                         edge partials, got {}",
                        2 * trim,
                        self.edges
                    ),
                ));
            }
        }
        if let Some(plan) = &self.faults {
            plan.validate()?;
        }
        if let Some(plan) = &self.edge_faults {
            plan.validate()?;
        }
        Ok(())
    }
}

/// A lightweight stand-in for a full federated client: everything the
/// protocol needs, nothing the model holds.
///
/// Specs are derived deterministically from the config seed and the data
/// generator's zone profiles — client `i` belongs to Shenzhen zone
/// `ALL[i % 3]`, carries a per-client dataset size, and synthesises
/// updates whose spread follows its zone's noise level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientSpec {
    /// Population index (also the shard key).
    pub index: usize,
    /// The Shenzhen zone whose profile shapes this client's updates.
    pub zone: Zone,
    /// Local dataset size (FedAvg weighting), 24–127 hourly windows.
    pub sample_count: usize,
    /// Update spread around the global model, from the zone profile's
    /// noise level scaled by its demand base.
    pub amplitude: f64,
}

impl ClientSpec {
    fn derive(index: usize, seed: u64) -> Self {
        let zone = Zone::ALL[index % Zone::ALL.len()];
        let profile = ZoneProfile::shenzhen(zone);
        let h = fnv1a(&[seed, index as u64]);
        Self {
            index,
            zone,
            sample_count: 24 + (h % 104) as usize,
            amplitude: profile.noise_level * profile.base / 40.0,
        }
    }

    /// The client's federation id (`"c000042"`), the key the fault plan
    /// matches against.
    pub fn id(&self) -> String {
        format!("c{:06}", self.index)
    }
}

/// Per-round statistics of a scale run. Event-level fault telemetry is
/// deliberately summarised to counters: at 100k clients a `Vec<FaultEvent>`
/// per round would be exactly the O(clients) state this engine exists to
/// avoid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleRoundStats {
    /// Zero-based round index.
    pub round: usize,
    /// Clients sampled by the scheduler.
    pub sampled: usize,
    /// Client updates folded into the final global (lost shards excluded).
    pub aggregated: usize,
    /// Sampled clients that dropped out before training.
    pub dropped: usize,
    /// Updates that crossed the channel but were discarded (timed-out
    /// stragglers, exhausted retries).
    pub wasted: usize,
    /// Updates corrupted in flight (and still aggregated — robustness is
    /// the aggregator's job).
    pub corrupted: usize,
    /// Edge partials the root aggregated.
    pub edges_kept: usize,
    /// Shards lost on the edge→root hop (edge drop-out/timeout).
    pub edges_lost: usize,
    /// Client→edge plus edge→root wire bytes, retries included.
    pub uplink_bytes: usize,
    /// Root→client broadcast bytes (zero in round 0).
    pub downlink_bytes: usize,
    /// Peak live aggregation state this round (root + one edge).
    pub peak_state_bytes: usize,
    /// Wall-clock duration of the round on this host.
    #[serde(skip, default)]
    pub duration: Duration,
}

/// Result of a completed scale run.
#[derive(Debug, Clone)]
pub struct ScaleOutcome {
    /// Per-round statistics.
    pub rounds: Vec<ScaleRoundStats>,
    /// The final global weights.
    pub global_weights: Vec<Matrix>,
    /// Bytes/messages exchanged across both tiers.
    pub traffic: TrafficTotals,
    /// Peak live streaming-aggregation state across the run — the number
    /// `bench_scale` reports. O(model), independent of the population.
    pub peak_aggregation_bytes: usize,
    /// What the batch path would have held at its worst round:
    /// `max_round(kept clients) × model bytes`. The streaming win is the
    /// ratio of this to [`ScaleOutcome::peak_aggregation_bytes`].
    pub materialized_equivalent_bytes: usize,
    /// One model's worth of f64 payload, for scale-free reporting.
    pub model_bytes: usize,
    /// Total wall-clock time.
    pub total_duration: Duration,
}

impl ScaleOutcome {
    /// FNV-1a checksum of the binary-encoded final global weights as 16
    /// lowercase hex digits — the determinism anchor for scale runs.
    pub fn weights_checksum(&self) -> String {
        format!("{:016x}", wire::weights_checksum(&self.global_weights))
    }
}

/// How a shard's partial fares on the edge→root hop.
enum EdgeForward {
    /// Shard had no kept clients this round — nothing to forward.
    Empty,
    /// Edge dropped out: the partial never leaves, the shard is lost.
    Dropped,
    /// Partial crossed the channel `attempts` times but the root discards
    /// it (edge straggler past the timeout, exhausted retries).
    Waste { attempts: usize },
    /// Partial reaches the root (possibly corrupted/delayed in flight).
    Keep {
        fault: Option<FaultKind>,
        attempts: usize,
    },
}

/// Mutable per-round bookkeeping threaded through [`ScaleEngine::stream_shard`].
struct RoundScratch {
    /// Largest live aggregation state seen this round (root + edge).
    round_peak: usize,
    /// Wire bytes uplinked this round, retries included.
    uplink_bytes: usize,
    /// Accumulated simulated straggler wait (discarded — the scale engine
    /// reports wall-clock only).
    timeout_wait: f64,
    /// Whether kept updates are also materialised for the batch check.
    verify: bool,
    /// Reusable event buffer for `dispose` (cleared after every shard —
    /// event-level telemetry would be O(clients)).
    events: Vec<FaultEvent>,
    /// Every kept update, materialised only under `verify`.
    batch_reference: Vec<LocalUpdate>,
}

/// The large-population engine. See the module docs for the topology.
///
/// # Examples
///
/// ```
/// use evfad_federated::scale::{ScaleConfig, ScaleEngine};
/// use evfad_tensor::Matrix;
///
/// let template = vec![Matrix::filled(4, 4, 0.1), Matrix::filled(1, 4, -0.2)];
/// let cfg = ScaleConfig { clients: 1_000, rounds: 2, edges: 4, ..ScaleConfig::default() };
/// let mut engine = ScaleEngine::new(template, cfg)?;
/// let out = engine.run()?;
/// assert_eq!(out.rounds.len(), 2);
/// assert_eq!(out.rounds[0].sampled, 100); // C = 0.1 of 1000
/// assert!(out.peak_aggregation_bytes < out.materialized_equivalent_bytes);
/// # Ok::<(), evfad_federated::FederatedError>(())
/// ```
#[derive(Debug)]
pub struct ScaleEngine {
    config: ScaleConfig,
    template: Vec<Matrix>,
    population: Vec<ClientSpec>,
    channel: MeteredChannel,
}

impl ScaleEngine {
    /// Builds the engine and derives the population from the config seed.
    ///
    /// # Errors
    ///
    /// [`FederatedError::InvalidConfig`] (see [`ScaleConfig::validate`]),
    /// or [`FederatedError::Aggregation`] for an empty model template.
    pub fn new(template: Vec<Matrix>, config: ScaleConfig) -> Result<Self, FederatedError> {
        config.validate()?;
        if template.is_empty() {
            return Err(FederatedError::Aggregation(
                "scale engine needs a non-empty model template".to_string(),
            ));
        }
        let population = (0..config.clients)
            .map(|i| ClientSpec::derive(i, config.seed))
            .collect();
        Ok(Self {
            config,
            template,
            population,
            channel: MeteredChannel::new(),
        })
    }

    /// The derived population specs.
    pub fn population(&self) -> &[ClientSpec] {
        &self.population
    }

    /// The configured run.
    pub fn config(&self) -> &ScaleConfig {
        &self.config
    }

    /// The edge shard client `index` belongs to: contiguous, balanced.
    fn edge_of(&self, index: usize) -> usize {
        index * self.config.edges / self.population.len()
    }

    /// Synthesises client `spec`'s round update: the current global model
    /// plus zone-scaled noise that damps as rounds progress, seeded by
    /// `(seed, round, index)` — deterministic, thread-free.
    fn synth_update(&self, spec: &ClientSpec, round: usize, global: &[Matrix]) -> LocalUpdate {
        let key = fnv1a(&[0x5ca1e, round as u64, spec.index as u64]);
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ key);
        let damp = 1.0 / (1.0 + round as f64);
        let weights = global
            .iter()
            .map(|g| {
                let mut m = g.clone();
                for v in m.as_mut_slice() {
                    *v += spec.amplitude * damp * (rng.gen::<f64>() - 0.5);
                }
                m
            })
            .collect();
        LocalUpdate {
            client_id: spec.id(),
            weights,
            sample_count: spec.sample_count,
            train_loss: spec.amplitude * damp,
            duration: Duration::ZERO,
            simulated_extra_seconds: 0.0,
        }
    }

    /// Streams one shard's kept updates through a fresh accumulator and
    /// returns the shard aggregate. Shared by the flat path (where the
    /// result *is* the next global) and the hierarchical path (where it
    /// becomes an edge partial). `plan` entries are the pure pre-pass
    /// decisions; `dispose` re-derives them identically while recording
    /// side effects.
    #[allow(clippy::too_many_arguments)]
    fn stream_shard(
        &mut self,
        round: usize,
        global: &[Matrix],
        plan: &[(usize, Option<FaultKind>, usize)],
        shard_total: f64,
        gate: &FaultGate,
        update_bytes: usize,
        root_bytes: usize,
        scratch: &mut RoundScratch,
    ) -> Result<Vec<Matrix>, FederatedError> {
        let mut agg = self
            .config
            .aggregator
            .streaming(shard_total, plan.len())
            .expect("validated streamable");
        for &(ci, fault, attempts) in plan {
            let mut update = {
                let spec = &self.population[ci];
                self.synth_update(spec, round, global)
            };
            let disposed = gate.dispose(
                round,
                fault,
                &mut update,
                &mut scratch.events,
                &mut scratch.timeout_wait,
                true,
            );
            debug_assert!(matches!(disposed, Disposition::Keep { .. }));
            self.channel.record_attempts_bytes(update_bytes, attempts);
            scratch.uplink_bytes += update_bytes * attempts;
            agg.ingest(&update)?;
            scratch.round_peak = scratch.round_peak.max(root_bytes + agg.state_bytes());
            if scratch.verify {
                scratch.batch_reference.push(update);
            }
        }
        scratch.events.clear();
        agg.finish()
    }

    /// Runs the full schedule.
    ///
    /// # Errors
    ///
    /// * [`FederatedError::InvalidConfig`] from up-front validation;
    /// * [`FederatedError::InsufficientParticipants`] when faults starve a
    ///   round below the plan's floor (or lose every shard);
    /// * [`FederatedError::Aggregation`] from the streaming rules (e.g. a
    ///   NaN-flooded coordinate exceeding trimmed mean's containment
    ///   budget) or a failed [`ScaleConfig::verify_streaming`] check.
    pub fn run(&mut self) -> Result<ScaleOutcome, FederatedError> {
        self.config.validate()?;
        self.channel.reset();
        let start = Instant::now();
        let cfg = self.config.clone();
        let gate = FaultGate::new(cfg.faults.clone());
        let edge_gate = FaultGate::new(cfg.edge_faults.clone());
        let scheduler = Scheduler::new(cfg.participation, cfg.seed);
        let n = self.population.len();
        let mut global = self.template.clone();
        let update_bytes = wire::encoded_size(&global);
        let model_bytes: usize = global.iter().map(|m| m.len() * 8).sum();
        let verify = cfg.verify_streaming && cfg.edge_faults.is_none();
        let mut rounds = Vec::with_capacity(cfg.rounds);
        let mut peak_aggregation_bytes = 0usize;
        let mut materialized_equivalent_bytes = 0usize;
        let mut scratch_events: Vec<FaultEvent> = Vec::new();

        for round in 0..cfg.rounds {
            let round_start = Instant::now();
            let participants = scheduler.sample(round, n);
            let sampled = participants.len();
            let mut downlink_bytes = 0usize;
            if round > 0 {
                for _ in 0..sampled {
                    self.channel.record_bytes(update_bytes);
                }
                downlink_bytes = update_bytes * sampled;
            }

            // Pure fault pre-pass: shard membership, surviving counts, and
            // sample totals — everything the streaming constructors need —
            // before a single update is synthesised. `fault_for` is a pure
            // function of (seed, round, id), so the main pass below sees
            // the identical decisions.
            let mut shard_kept: Vec<Vec<(usize, Option<FaultKind>, usize)>> =
                vec![Vec::new(); cfg.edges];
            // Summed as f64 in kept order — the exact fold the batch
            // FedAvg performs over its updates.
            let mut shard_samples: Vec<f64> = vec![0.0; cfg.edges];
            let mut dropped = 0usize;
            let mut wasted = 0usize;
            let mut corrupted = 0usize;
            let mut uplink_bytes = 0usize;
            for &ci in &participants {
                let spec = &self.population[ci];
                let fault = gate.fault_for(round, &spec.id());
                if matches!(fault, Some(FaultKind::DropOut)) {
                    dropped += 1;
                    continue;
                }
                if matches!(fault, Some(FaultKind::Corrupt { .. })) {
                    corrupted += 1;
                }
                match gate.decide(fault) {
                    Disposition::Keep { attempts } => {
                        let e = self.edge_of(ci);
                        shard_kept[e].push((ci, fault, attempts));
                        shard_samples[e] += spec.sample_count as f64;
                    }
                    Disposition::Waste { attempts } => {
                        // Discarded uploads still crossed the channel.
                        wasted += 1;
                        self.channel.record_attempts_bytes(update_bytes, attempts);
                        uplink_bytes += update_bytes * attempts;
                    }
                }
            }
            let kept_total: usize = shard_kept.iter().map(Vec::len).sum();
            if kept_total < gate.min_participants {
                return Err(FederatedError::InsufficientParticipants {
                    round,
                    survivors: kept_total,
                    required: gate.min_participants,
                });
            }

            let mut aggregated = 0usize;
            let mut edges_kept = 0usize;
            let mut edges_lost = 0usize;
            let mut scratch = RoundScratch {
                round_peak: 0,
                uplink_bytes,
                timeout_wait: 0.0,
                verify,
                events: std::mem::take(&mut scratch_events),
                batch_reference: Vec::new(),
            };

            let next_global = if cfg.edges == 1 {
                // Flat: the single shard streams straight into the root
                // accumulator — no forward hop, no partial. For FedAvg this
                // is the exact batch fold, bit for bit.
                let g = self.stream_shard(
                    round,
                    &global,
                    &shard_kept[0],
                    shard_samples[0],
                    &gate,
                    update_bytes,
                    0,
                    &mut scratch,
                )?;
                aggregated = shard_kept[0].len();
                edges_kept = 1;
                g
            } else {
                // Edge-tier pre-pass: which partials will reach the root.
                let forwards: Vec<EdgeForward> = (0..cfg.edges)
                    .map(|e| {
                        if shard_kept[e].is_empty() {
                            return EdgeForward::Empty;
                        }
                        let fault = edge_gate.fault_for(round, &format!("edge-{e}"));
                        if matches!(fault, Some(FaultKind::DropOut)) {
                            return EdgeForward::Dropped;
                        }
                        match edge_gate.decide(fault) {
                            Disposition::Keep { attempts } => EdgeForward::Keep { fault, attempts },
                            Disposition::Waste { attempts } => EdgeForward::Waste { attempts },
                        }
                    })
                    .collect();
                let root_expected = forwards
                    .iter()
                    .filter(|f| matches!(f, EdgeForward::Keep { .. }))
                    .count();
                if root_expected == 0 {
                    return Err(FederatedError::InsufficientParticipants {
                        round,
                        survivors: 0,
                        required: gate.min_participants.max(1),
                    });
                }
                let root_total: f64 = forwards
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| matches!(f, EdgeForward::Keep { .. }))
                    .map(|(e, _)| shard_samples[e])
                    .sum();

                // Main pass: one edge accumulator live at a time, the root
                // accumulator underneath — O(model) total.
                let mut root = cfg
                    .aggregator
                    .streaming(root_total, root_expected)
                    .expect("validated streamable");
                for (e, forward) in forwards.iter().enumerate() {
                    if matches!(forward, EdgeForward::Empty) {
                        continue;
                    }
                    let partial_weights = self.stream_shard(
                        round,
                        &global,
                        &shard_kept[e],
                        shard_samples[e],
                        &gate,
                        update_bytes,
                        root.state_bytes(),
                        &mut scratch,
                    )?;
                    let mut partial = LocalUpdate {
                        client_id: format!("edge-{e}"),
                        weights: partial_weights,
                        sample_count: shard_samples[e] as usize,
                        train_loss: 0.0,
                        duration: Duration::ZERO,
                        simulated_extra_seconds: 0.0,
                    };
                    match *forward {
                        EdgeForward::Empty => unreachable!("skipped above"),
                        EdgeForward::Dropped => edges_lost += 1,
                        EdgeForward::Waste { attempts } => {
                            edges_lost += 1;
                            self.channel.record_attempts_bytes(update_bytes, attempts);
                            scratch.uplink_bytes += update_bytes * attempts;
                        }
                        EdgeForward::Keep { fault, attempts } => {
                            let mut edge_wait = 0.0f64;
                            edge_gate.dispose(
                                round,
                                fault,
                                &mut partial,
                                &mut scratch.events,
                                &mut edge_wait,
                                true,
                            );
                            scratch.events.clear();
                            self.channel.record_attempts_bytes(update_bytes, attempts);
                            scratch.uplink_bytes += update_bytes * attempts;
                            root.ingest(&partial)?;
                            edges_kept += 1;
                            aggregated += shard_kept[e].len();
                        }
                    }
                    scratch.round_peak = scratch.round_peak.max(root.state_bytes());
                }
                root.finish()?
            };
            if verify {
                check_against_batch(
                    cfg.aggregator,
                    cfg.edges,
                    &scratch.batch_reference,
                    &next_global,
                    round,
                )?;
            }
            global = next_global;
            peak_aggregation_bytes = peak_aggregation_bytes.max(scratch.round_peak);
            materialized_equivalent_bytes =
                materialized_equivalent_bytes.max(kept_total * model_bytes);
            rounds.push(ScaleRoundStats {
                round,
                sampled,
                aggregated,
                dropped,
                wasted,
                corrupted,
                edges_kept,
                edges_lost,
                uplink_bytes: scratch.uplink_bytes,
                downlink_bytes,
                peak_state_bytes: scratch.round_peak,
                duration: round_start.elapsed(),
            });
            scratch_events = scratch.events;
        }

        Ok(ScaleOutcome {
            rounds,
            global_weights: global,
            traffic: self.channel.totals(),
            peak_aggregation_bytes,
            materialized_equivalent_bytes,
            model_bytes,
            total_duration: start.elapsed(),
        })
    }
}

/// The [`ScaleConfig::verify_streaming`] gate: the hierarchical streaming
/// result must match the flat batch aggregate over the same kept updates —
/// bitwise for flat FedAvg (same fold, same order), within 1e-9 relative
/// otherwise (reassociation across shards).
fn check_against_batch(
    aggregator: Aggregator,
    edges: usize,
    kept: &[LocalUpdate],
    streamed: &[Matrix],
    round: usize,
) -> Result<(), FederatedError> {
    let batch = aggregator.aggregate(kept)?;
    let exact = edges == 1 && matches!(aggregator, Aggregator::FedAvg);
    for (b, s) in batch.iter().zip(streamed) {
        for (x, y) in b.as_slice().iter().zip(s.as_slice()) {
            let ok = if exact {
                x.to_bits() == y.to_bits()
            } else {
                (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0)
            };
            if !ok {
                return Err(FederatedError::Aggregation(format!(
                    "round {round}: streaming result {y:e} diverged from batch {x:e} \
                     ({} check, {edges} edges)",
                    if exact { "bitwise" } else { "tolerance" }
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{Corruption, RoundSelector};

    fn template() -> Vec<Matrix> {
        vec![
            Matrix::filled(3, 4, 0.25),
            Matrix::filled(4, 1, -0.5),
            Matrix::filled(1, 1, 1.0),
        ]
    }

    fn cfg(clients: usize, edges: usize) -> ScaleConfig {
        ScaleConfig {
            clients,
            rounds: 3,
            edges,
            ..ScaleConfig::default()
        }
    }

    #[test]
    fn flat_fedavg_is_bitwise_identical_to_batch() {
        let mut engine = ScaleEngine::new(
            template(),
            ScaleConfig {
                verify_streaming: true,
                ..cfg(500, 1)
            },
        )
        .expect("engine");
        // verify_streaming asserts bitwise equality inside run().
        let out = engine.run().expect("flat run must match batch bitwise");
        assert!(out.global_weights.iter().all(Matrix::is_finite));
    }

    #[test]
    fn hierarchical_fedavg_matches_batch_to_tolerance() {
        let mut engine = ScaleEngine::new(
            template(),
            ScaleConfig {
                verify_streaming: true,
                ..cfg(1_000, 8)
            },
        )
        .expect("engine");
        engine.run().expect("hierarchical run within tolerance");
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut e = ScaleEngine::new(
                template(),
                ScaleConfig {
                    seed,
                    ..cfg(2_000, 4)
                },
            )
            .expect("engine");
            e.run().expect("run")
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.weights_checksum(), b.weights_checksum());
        assert_eq!(a.traffic, b.traffic);
        // Compare through serde: `duration` is wall-clock and #[serde(skip)].
        assert_eq!(
            serde_json::to_string(&a.rounds).expect("serialize"),
            serde_json::to_string(&b.rounds).expect("serialize"),
        );
        assert_ne!(run(8).weights_checksum(), a.weights_checksum());
    }

    #[test]
    fn peak_memory_is_o_model_not_o_clients() {
        let small = {
            let mut e = ScaleEngine::new(template(), cfg(1_000, 4)).expect("engine");
            e.run().expect("run")
        };
        let large = {
            let mut e = ScaleEngine::new(template(), cfg(10_000, 4)).expect("engine");
            e.run().expect("run")
        };
        // 10x the population: materialised-equivalent memory grows ~10x,
        // live streaming state does not grow at all.
        assert_eq!(large.peak_aggregation_bytes, small.peak_aggregation_bytes);
        assert!(large.materialized_equivalent_bytes > 8 * small.materialized_equivalent_bytes);
        // FedAvg live state: root + one edge accumulator = 2 models.
        assert_eq!(large.peak_aggregation_bytes, 2 * large.model_bytes);
    }

    #[test]
    fn population_follows_the_zone_profiles() {
        let engine = ScaleEngine::new(template(), cfg(999, 4)).expect("engine");
        let pop = engine.population();
        assert_eq!(pop.len(), 999);
        assert_eq!(pop[0].zone, Zone::Z102);
        assert_eq!(pop[1].zone, Zone::Z105);
        assert_eq!(pop[2].zone, Zone::Z108);
        assert!(pop.iter().all(|s| (24..128).contains(&s.sample_count)));
        assert!(pop.iter().all(|s| s.amplitude > 0.0));
        assert_eq!(pop[41].id(), "c000041");
    }

    #[test]
    fn wildcard_dropout_thins_every_round() {
        let plan = FaultPlan::new(3).with_rule(
            "*",
            RoundSelector::Probability { p: 0.2 },
            FaultKind::DropOut,
        );
        let mut engine = ScaleEngine::new(
            template(),
            ScaleConfig {
                faults: Some(plan),
                ..cfg(5_000, 4)
            },
        )
        .expect("engine");
        let out = engine.run().expect("run");
        for r in &out.rounds {
            let rate = r.dropped as f64 / r.sampled as f64;
            assert!(
                (0.1..0.3).contains(&rate),
                "round {} drop rate {rate} far from the configured 0.2",
                r.round
            );
            assert_eq!(r.sampled, r.aggregated + r.dropped + r.wasted);
        }
    }

    #[test]
    fn edge_dropout_loses_the_shard() {
        let edge_plan =
            FaultPlan::new(1).with_rule("edge-2", RoundSelector::Every, FaultKind::DropOut);
        let clean = {
            let mut e = ScaleEngine::new(template(), cfg(4_000, 4)).expect("engine");
            e.run().expect("run")
        };
        let faulty = {
            let mut e = ScaleEngine::new(
                template(),
                ScaleConfig {
                    edge_faults: Some(edge_plan),
                    ..cfg(4_000, 4)
                },
            )
            .expect("engine");
            e.run().expect("run")
        };
        for (c, f) in clean.rounds.iter().zip(&faulty.rounds) {
            assert_eq!(f.edges_lost, 1);
            assert_eq!(f.edges_kept, 3);
            assert!(f.aggregated < c.aggregated);
        }
        assert_ne!(clean.weights_checksum(), faulty.weights_checksum());
    }

    #[test]
    fn trimmed_mean_contains_wildcard_nan_floods_at_scale() {
        // 1% of clients NaN-flood every round; per-shard trimmed mean with
        // budget to spare must keep the global finite.
        let plan = FaultPlan::new(9).with_rule(
            "*",
            RoundSelector::Probability { p: 0.01 },
            FaultKind::Corrupt {
                corruption: Corruption::NanFlood,
            },
        );
        let mut engine = ScaleEngine::new(
            template(),
            ScaleConfig {
                aggregator: Aggregator::TrimmedMean { trim: 20 },
                faults: Some(plan),
                edges: 1,
                rounds: 2,
                ..cfg(2_000, 1)
            },
        )
        .expect("engine");
        let out = engine.run().expect("contained");
        assert!(out.global_weights.iter().all(Matrix::is_finite));
        assert!(out.rounds.iter().all(|r| r.corrupted > 0));
    }

    #[test]
    fn traffic_accounts_both_tiers() {
        let mut engine = ScaleEngine::new(template(), cfg(1_000, 4)).expect("engine");
        let out = engine.run().expect("run");
        let model = template();
        let update_bytes = wire::encoded_size(&model);
        for r in &out.rounds {
            // kept client uplinks + 4 edge partials, no waste in a clean run.
            assert_eq!(r.uplink_bytes, (r.aggregated + r.edges_kept) * update_bytes);
            if r.round > 0 {
                assert_eq!(r.downlink_bytes, r.sampled * update_bytes);
            }
        }
        let accounted: usize = out
            .rounds
            .iter()
            .map(|r| r.uplink_bytes + r.downlink_bytes)
            .sum();
        assert_eq!(accounted, out.traffic.bytes);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let reject = |c: ScaleConfig, field: &str| match ScaleEngine::new(template(), c)
            .map(|_| ())
            .unwrap_err()
        {
            FederatedError::InvalidConfig { field: f, .. } => assert_eq!(f, field),
            other => panic!("expected InvalidConfig for {field}, got {other}"),
        };
        reject(
            ScaleConfig {
                clients: 0,
                ..ScaleConfig::default()
            },
            "clients",
        );
        reject(
            ScaleConfig {
                rounds: 0,
                ..ScaleConfig::default()
            },
            "rounds",
        );
        reject(
            ScaleConfig {
                participation: 0.0,
                ..ScaleConfig::default()
            },
            "participation",
        );
        reject(
            ScaleConfig {
                edges: 0,
                ..ScaleConfig::default()
            },
            "edges",
        );
        reject(
            ScaleConfig {
                aggregator: Aggregator::Median,
                ..ScaleConfig::default()
            },
            "aggregator",
        );
        reject(
            ScaleConfig {
                aggregator: Aggregator::TrimmedMean { trim: 8 },
                edges: 16,
                ..ScaleConfig::default()
            },
            "edges",
        );
    }

    #[test]
    fn scale_config_serde_round_trips() {
        let cfg = ScaleConfig {
            faults: Some(FaultPlan::new(3).with_rule(
                "*",
                RoundSelector::Probability { p: 0.05 },
                FaultKind::DropOut,
            )),
            ..ScaleConfig::default()
        };
        let json = serde_json::to_string(&cfg).expect("serialize");
        let back: ScaleConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(cfg, back);
    }
}
