//! Seeded fault injection for the federated loop.
//!
//! The paper's schedule assumes every client returns a clean update every
//! round, but its own threat model (data-integrity attacks on charging
//! telemetry) implies clients that stall, vanish, or return garbage. This
//! module makes those failure modes first-class and *deterministic*: a
//! [`FaultPlan`] describes which client misbehaves when and how, a
//! [`FaultInjector`] evaluates it, and every probabilistic decision flows
//! from a seeded RNG keyed on `(seed, rule, round, client)` — so a chaos
//! schedule is bit-reproducible regardless of thread interleaving.
//!
//! Fault taxonomy (see DESIGN §7):
//!
//! | fault | models | server-side handling |
//! |---|---|---|
//! | [`FaultKind::DropOut`] | node vanishes | round proceeds without it |
//! | [`FaultKind::Straggler`] | degraded link / slow node | excluded when later than the round timeout |
//! | [`FaultKind::Corrupt`] | integrity attack at the weight level | left to the aggregator (robust rules survive) |
//! | [`FaultKind::Transient`] | flaky upload | retried with exponential backoff up to a budget |

use crate::error::FederatedError;
use evfad_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How a corrupted client mangles its update payload.
///
/// These model the paper's data-integrity attacks escalated from the
/// telemetry path to the weight path (a compromised *client* rather than a
/// compromised *meter*).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Corruption {
    /// Every weight becomes NaN — destroys any mean-style aggregate
    /// outright and stress-tests NaN tolerance in the robust rules.
    NanFlood,
    /// Every weight is negated (gradient-inversion style poisoning).
    SignFlip,
    /// Every weight is multiplied by `factor` (model-boosting attack).
    Scale {
        /// Multiplier applied to every weight.
        factor: f64,
    },
}

impl Corruption {
    /// Applies this corruption to a weight payload in place.
    pub fn apply(self, weights: &mut [Matrix]) {
        for m in weights.iter_mut() {
            match self {
                Corruption::NanFlood => {
                    for v in m.as_mut_slice() {
                        *v = f64::NAN;
                    }
                }
                Corruption::SignFlip => {
                    for v in m.as_mut_slice() {
                        *v = -*v;
                    }
                }
                Corruption::Scale { factor } => {
                    for v in m.as_mut_slice() {
                        *v *= factor;
                    }
                }
            }
        }
    }
}

/// One fault a [`FaultRule`] can inject into a client's round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The client never reports this round (no update, no traffic).
    DropOut,
    /// The client reports `delay_seconds` of *simulated* time late. The
    /// delay counts toward [`simulated_distributed_seconds`]; if it exceeds
    /// the plan's round timeout the update arrives too late and is excluded
    /// from aggregation (its upload is still metered — the bytes crossed).
    ///
    /// [`simulated_distributed_seconds`]:
    ///   crate::FederatedOutcome::simulated_distributed_seconds
    Straggler {
        /// Simulated extra seconds before the update arrives.
        delay_seconds: f64,
    },
    /// The client's trained update is corrupted before upload.
    Corrupt {
        /// How the payload is mangled.
        corruption: Corruption,
    },
    /// The upload fails `failures` times before succeeding. The server
    /// retries with exponential backoff within [`FaultPlan::retry_budget`];
    /// each attempt is metered. If `failures` exceeds the budget the update
    /// is lost this round.
    Transient {
        /// Number of failed upload attempts before one would succeed.
        failures: usize,
    },
}

impl FaultKind {
    /// Stable identifier for logs and reports.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::DropOut => "drop_out",
            FaultKind::Straggler { .. } => "straggler",
            FaultKind::Corrupt { .. } => "corrupt",
            FaultKind::Transient { .. } => "transient",
        }
    }
}

/// Which rounds a [`FaultRule`] fires in.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RoundSelector {
    /// Every round.
    Every,
    /// Exactly one round.
    Only {
        /// Zero-based round index.
        round: usize,
    },
    /// This round and every later one.
    From {
        /// Zero-based first affected round.
        round: usize,
    },
    /// Independently each round with probability `p`, drawn from the
    /// plan's seeded RNG (deterministic for a given plan).
    Probability {
        /// Per-round fire probability in `[0, 1]`.
        p: f64,
    },
}

/// A fault bound to one client and a round schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRule {
    /// Id of the client this rule targets (exact match), or `"*"` to
    /// target every client. Wildcard rules combined with
    /// [`RoundSelector::Probability`] express population-level fault rates
    /// (each client draws independently, keyed by its own id) — the form
    /// the 10k–100k client [`crate::scale`] engine uses, where per-client
    /// rules would be impractical.
    pub client: String,
    /// Rounds in which the rule fires.
    pub rounds: RoundSelector,
    /// The fault injected when the rule fires.
    pub fault: FaultKind,
}

/// A complete, seeded chaos schedule plus the server-side resilience knobs.
///
/// # Examples
///
/// ```
/// use evfad_federated::faults::{FaultKind, FaultPlan, RoundSelector};
///
/// let plan = FaultPlan::new(7)
///     .with_rule("z105", RoundSelector::Every, FaultKind::DropOut)
///     .with_min_participants(2);
/// assert!(plan.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for every probabilistic decision in the plan.
    pub seed: u64,
    /// The chaos schedule; for a client matched by several rules, the
    /// first rule that fires in a round wins.
    pub rules: Vec<FaultRule>,
    /// Server-side round timeout in simulated seconds; updates delayed
    /// beyond it are excluded from aggregation. `None` waits forever.
    pub round_timeout_seconds: Option<f64>,
    /// Maximum upload retries per client per round (beyond the first
    /// attempt) before the server gives the client up for the round.
    pub retry_budget: usize,
    /// First retry backoff in simulated seconds; attempt `k` waits
    /// `backoff_base_seconds * 2^(k-1)`.
    pub backoff_base_seconds: f64,
    /// A round errors ([`FederatedError::InsufficientParticipants`]) when
    /// fewer than this many updates survive the fault model.
    pub min_participants: usize,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            rules: Vec::new(),
            round_timeout_seconds: None,
            retry_budget: 2,
            backoff_base_seconds: 1.0,
            min_participants: 1,
        }
    }
}

impl FaultPlan {
    /// A plan with no rules and the default knobs.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Adds a rule (builder style).
    pub fn with_rule(
        mut self,
        client: impl Into<String>,
        rounds: RoundSelector,
        fault: FaultKind,
    ) -> Self {
        self.rules.push(FaultRule {
            client: client.into(),
            rounds,
            fault,
        });
        self
    }

    /// Sets the round timeout (builder style).
    pub fn with_timeout(mut self, seconds: f64) -> Self {
        self.round_timeout_seconds = Some(seconds);
        self
    }

    /// Sets the retry budget and backoff base (builder style).
    pub fn with_retry(mut self, budget: usize, backoff_base_seconds: f64) -> Self {
        self.retry_budget = budget;
        self.backoff_base_seconds = backoff_base_seconds;
        self
    }

    /// Sets the per-round participant floor (builder style).
    pub fn with_min_participants(mut self, n: usize) -> Self {
        self.min_participants = n;
        self
    }

    /// Checks every knob for sanity.
    ///
    /// # Errors
    ///
    /// [`FederatedError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), FederatedError> {
        let bad = |field: &str, message: String| FederatedError::InvalidConfig {
            field: field.to_string(),
            message,
        };
        if let Some(t) = self.round_timeout_seconds {
            if !t.is_finite() || t <= 0.0 {
                return Err(bad(
                    "faults.round_timeout_seconds",
                    format!("timeout must be finite and positive, got {t}"),
                ));
            }
        }
        if !self.backoff_base_seconds.is_finite() || self.backoff_base_seconds < 0.0 {
            return Err(bad(
                "faults.backoff_base_seconds",
                format!(
                    "backoff base must be finite and non-negative, got {}",
                    self.backoff_base_seconds
                ),
            ));
        }
        if self.min_participants == 0 {
            return Err(bad(
                "faults.min_participants",
                "a round needs at least one surviving participant".to_string(),
            ));
        }
        for (i, rule) in self.rules.iter().enumerate() {
            if let RoundSelector::Probability { p } = rule.rounds {
                if !(0.0..=1.0).contains(&p) || p.is_nan() {
                    return Err(bad(
                        "faults.rules",
                        format!("rule {i} ({}) probability {p} outside [0, 1]", rule.client),
                    ));
                }
            }
            match rule.fault {
                FaultKind::Straggler { delay_seconds }
                    if !delay_seconds.is_finite() || delay_seconds < 0.0 =>
                {
                    return Err(bad(
                        "faults.rules",
                        format!(
                            "rule {i} ({}) straggler delay {delay_seconds} must be \
                             finite and non-negative",
                            rule.client
                        ),
                    ));
                }
                FaultKind::Corrupt {
                    corruption: Corruption::Scale { factor },
                } if factor.is_nan() => {
                    return Err(bad(
                        "faults.rules",
                        format!(
                            "rule {i} ({}) scale factor must not be NaN \
                             (use Corruption::NanFlood to inject NaN)",
                            rule.client
                        ),
                    ));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Simulated seconds spent backing off before a success on attempt
    /// `failures + 1`: `base * (2^failures - 1)`.
    pub fn backoff_total_seconds(&self, failures: usize) -> f64 {
        // Saturate the exponent: a plan with a pathological failure count
        // should yield a huge-but-finite delay, not overflow.
        let doublings = failures.min(60) as u32;
        self.backoff_base_seconds * ((1u64 << doublings) - 1) as f64
    }

    /// Seconds a client waits after its `attempt`-th failed upload
    /// (0-based) before retrying: `base * 2^attempt`. The per-step view
    /// of the same schedule [`FaultPlan::backoff_total_seconds`] sums —
    /// `Σ step(0..failures) == total(failures)` for *every* failure
    /// count — used by the live TCP client, which actually sleeps between
    /// attempts instead of having the server account the wait in one lump.
    pub fn backoff_step_seconds(&self, attempt: usize) -> f64 {
        // Saturate consistently with the total: the total's exponent caps
        // at 60, so past that point the schedule stops growing and every
        // further step contributes zero wait. Capping the *step* at
        // `base * 2^60` instead would both break the sum identity above
        // and (uncapped) overflow the shift, panicking in debug builds
        // from attempt 64 on.
        if attempt >= 60 {
            return 0.0;
        }
        self.backoff_base_seconds * (1u64 << attempt as u32) as f64
    }
}

/// Evaluates a [`FaultPlan`] deterministically.
///
/// The injector is consulted *serially on the server*, before and after
/// client training, so its RNG consumption never depends on thread
/// scheduling.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// Wraps a plan.
    pub fn new(plan: FaultPlan) -> Self {
        Self { plan }
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The fault (if any) hitting `client_id` in `round`: the first rule
    /// matching the client (exactly, or via the `"*"` wildcard) that fires
    /// this round.
    pub fn fault_for(&self, round: usize, client_id: &str) -> Option<FaultKind> {
        self.plan
            .rules
            .iter()
            .enumerate()
            .filter(|(_, rule)| rule.client == client_id || rule.client == "*")
            .find(|(idx, rule)| self.fires(rule, *idx, round, client_id))
            .map(|(_, rule)| rule.fault)
    }

    fn fires(&self, rule: &FaultRule, rule_idx: usize, round: usize, client_id: &str) -> bool {
        match rule.rounds {
            RoundSelector::Every => true,
            RoundSelector::Only { round: r } => r == round,
            RoundSelector::From { round: r } => round >= r,
            RoundSelector::Probability { p } => {
                // Keyed by the *affected* client, not the rule's pattern:
                // identical to the old keying for exact-match rules (where
                // the two strings coincide), and gives every client an
                // independent draw under a wildcard rule.
                let key = fnv1a(&[
                    rule_idx as u64,
                    round as u64,
                    fnv1a_bytes(client_id.as_bytes()),
                ]);
                StdRng::seed_from_u64(self.plan.seed ^ key).gen_bool(p)
            }
        }
    }
}

/// What actually happened when a fault fired — the per-round telemetry the
/// chaos harness asserts on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultOutcome {
    /// The client never reported (drop-out).
    Dropped,
    /// The update arrived `delay_seconds` late but within the timeout and
    /// was aggregated.
    Delayed {
        /// Simulated lateness in seconds.
        delay_seconds: f64,
    },
    /// The update arrived after the round timeout and was excluded; the
    /// server waited the full `timeout_seconds`.
    TimedOut {
        /// Simulated lateness in seconds.
        delay_seconds: f64,
        /// The timeout the server enforced.
        timeout_seconds: f64,
    },
    /// The corrupted update was sent and left to the aggregator.
    Corrupted,
    /// The upload succeeded after `failed_attempts` retries costing
    /// `backoff_seconds` of simulated backoff.
    Recovered {
        /// Failed attempts before the success.
        failed_attempts: usize,
        /// Total simulated backoff seconds.
        backoff_seconds: f64,
    },
    /// Every attempt within the retry budget failed; the update was lost.
    RetriesExhausted {
        /// Attempts made (initial try + retries).
        failed_attempts: usize,
    },
}

/// One fault occurrence, recorded in [`RoundStats::faults`].
///
/// [`RoundStats::faults`]: crate::RoundStats::faults
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Round in which the fault fired.
    pub round: usize,
    /// Affected client.
    pub client_id: String,
    /// The injected fault.
    pub fault: FaultKind,
    /// How the server resolved it.
    pub outcome: FaultOutcome,
}

/// FNV-1a over a word sequence (stable, dependency-free mixing for the
/// per-(rule, round, client) RNG keys — also used by
/// [`crate::scheduler`] to key the per-round participant sampling).
pub(crate) fn fnv1a(words: &[u64]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for byte in w.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// FNV-1a over raw bytes.
pub(crate) fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corruption_nan_flood_poisons_every_weight() {
        let mut w = vec![Matrix::filled(2, 2, 1.5)];
        Corruption::NanFlood.apply(&mut w);
        assert!(w[0].as_slice().iter().all(|v| v.is_nan()));
    }

    #[test]
    fn corruption_sign_flip_negates() {
        let mut w = vec![Matrix::filled(2, 2, 1.5)];
        Corruption::SignFlip.apply(&mut w);
        assert!(w[0].as_slice().iter().all(|&v| v == -1.5));
    }

    #[test]
    fn corruption_scale_multiplies() {
        let mut w = vec![Matrix::filled(1, 3, 2.0)];
        Corruption::Scale { factor: -10.0 }.apply(&mut w);
        assert!(w[0].as_slice().iter().all(|&v| v == -20.0));
    }

    #[test]
    fn selectors_fire_on_the_right_rounds() {
        let plan = FaultPlan::new(0)
            .with_rule("a", RoundSelector::Every, FaultKind::DropOut)
            .with_rule("b", RoundSelector::Only { round: 2 }, FaultKind::DropOut)
            .with_rule("c", RoundSelector::From { round: 1 }, FaultKind::DropOut);
        let inj = FaultInjector::new(plan);
        for round in 0..4 {
            assert!(inj.fault_for(round, "a").is_some());
            assert_eq!(inj.fault_for(round, "b").is_some(), round == 2);
            assert_eq!(inj.fault_for(round, "c").is_some(), round >= 1);
            assert!(inj.fault_for(round, "unknown").is_none());
        }
    }

    #[test]
    fn first_matching_rule_wins() {
        let plan = FaultPlan::new(0)
            .with_rule("a", RoundSelector::Only { round: 1 }, FaultKind::DropOut)
            .with_rule(
                "a",
                RoundSelector::Every,
                FaultKind::Straggler { delay_seconds: 3.0 },
            );
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.fault_for(1, "a"), Some(FaultKind::DropOut));
        assert!(matches!(
            inj.fault_for(0, "a"),
            Some(FaultKind::Straggler { .. })
        ));
    }

    #[test]
    fn probability_is_deterministic_per_seed() {
        let plan = |seed| {
            FaultPlan::new(seed).with_rule(
                "a",
                RoundSelector::Probability { p: 0.5 },
                FaultKind::DropOut,
            )
        };
        let x = FaultInjector::new(plan(9));
        let y = FaultInjector::new(plan(9));
        let z = FaultInjector::new(plan(10));
        let draws = |inj: &FaultInjector| -> Vec<bool> {
            (0..64).map(|r| inj.fault_for(r, "a").is_some()).collect()
        };
        assert_eq!(draws(&x), draws(&y), "same seed, same schedule");
        assert_ne!(draws(&x), draws(&z), "different seed, different schedule");
        let hits = draws(&x).iter().filter(|&&b| b).count();
        assert!((16..=48).contains(&hits), "p=0.5 should fire about half");
    }

    #[test]
    fn probability_extremes_fire_never_and_always() {
        let plan = FaultPlan::new(3)
            .with_rule(
                "never",
                RoundSelector::Probability { p: 0.0 },
                FaultKind::DropOut,
            )
            .with_rule(
                "always",
                RoundSelector::Probability { p: 1.0 },
                FaultKind::DropOut,
            );
        let inj = FaultInjector::new(plan);
        for round in 0..32 {
            assert!(inj.fault_for(round, "never").is_none());
            assert!(inj.fault_for(round, "always").is_some());
        }
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        let bad_timeout = FaultPlan::new(0).with_timeout(0.0);
        assert!(matches!(
            bad_timeout.validate(),
            Err(FederatedError::InvalidConfig { .. })
        ));
        let bad_backoff = FaultPlan {
            backoff_base_seconds: f64::NAN,
            ..FaultPlan::default()
        };
        assert!(bad_backoff.validate().is_err());
        let bad_floor = FaultPlan {
            min_participants: 0,
            ..FaultPlan::default()
        };
        assert!(bad_floor.validate().is_err());
        let bad_prob = FaultPlan::new(0).with_rule(
            "a",
            RoundSelector::Probability { p: 1.5 },
            FaultKind::DropOut,
        );
        assert!(bad_prob.validate().is_err());
        let bad_delay = FaultPlan::new(0).with_rule(
            "a",
            RoundSelector::Every,
            FaultKind::Straggler {
                delay_seconds: -1.0,
            },
        );
        assert!(bad_delay.validate().is_err());
        let bad_scale = FaultPlan::new(0).with_rule(
            "a",
            RoundSelector::Every,
            FaultKind::Corrupt {
                corruption: Corruption::Scale { factor: f64::NAN },
            },
        );
        assert!(bad_scale.validate().is_err());
        assert!(FaultPlan::default().validate().is_ok());
    }

    #[test]
    fn backoff_grows_exponentially_and_saturates() {
        let plan = FaultPlan::new(0).with_retry(8, 1.0);
        assert_eq!(plan.backoff_total_seconds(0), 0.0);
        assert_eq!(plan.backoff_total_seconds(1), 1.0);
        assert_eq!(plan.backoff_total_seconds(2), 3.0);
        assert_eq!(plan.backoff_total_seconds(3), 7.0);
        assert!(plan.backoff_total_seconds(10_000).is_finite());
    }

    #[test]
    fn per_step_backoff_sums_to_the_total() {
        // The live client sleeps step by step; the engine accounts the
        // lump sum. Both views of the schedule must agree exactly.
        let plan = FaultPlan::new(0).with_retry(8, 0.25);
        for failures in (0..12).chain([59, 60, 61, 63, 64, 100, 200]) {
            let stepped: f64 = (0..failures).map(|a| plan.backoff_step_seconds(a)).sum();
            assert_eq!(stepped, plan.backoff_total_seconds(failures), "{failures}");
        }
    }

    #[test]
    fn backoff_step_saturates_past_the_exponent_cap() {
        // Regression: a shift by the raw attempt count would wrap (or
        // panic in debug) from attempt 64 on, and a per-step cap at
        // `base * 2^60` would let the stepped sum race past the saturated
        // total. Past the cap the schedule is flat: zero extra wait.
        let plan = FaultPlan::new(0).with_retry(8, 1.5);
        assert_eq!(plan.backoff_step_seconds(59), 1.5 * (1u64 << 59) as f64);
        for attempt in [60usize, 63, 64, 65, 127, 10_000] {
            let step = plan.backoff_step_seconds(attempt);
            assert!(step.is_finite(), "attempt {attempt}");
            assert_eq!(step, 0.0, "attempt {attempt}: schedule must stay flat");
        }
        assert!(plan.backoff_total_seconds(10_000).is_finite());
    }

    #[test]
    fn fault_names_are_stable() {
        assert_eq!(FaultKind::DropOut.name(), "drop_out");
        assert_eq!(
            FaultKind::Straggler { delay_seconds: 1.0 }.name(),
            "straggler"
        );
        assert_eq!(
            FaultKind::Corrupt {
                corruption: Corruption::SignFlip
            }
            .name(),
            "corrupt"
        );
        assert_eq!(FaultKind::Transient { failures: 1 }.name(), "transient");
    }

    #[test]
    fn plan_serde_round_trips() {
        let plan = FaultPlan::new(5)
            .with_rule(
                "z102",
                RoundSelector::Probability { p: 0.25 },
                FaultKind::Corrupt {
                    corruption: Corruption::Scale { factor: -2.0 },
                },
            )
            .with_timeout(30.0)
            .with_retry(3, 0.5)
            .with_min_participants(2);
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: FaultPlan = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(plan, back);
    }
}
