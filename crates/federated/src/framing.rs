//! Length-prefixed framing for the TCP transport.
//!
//! A TCP stream is a byte pipe with no message boundaries: a single
//! `write` of an EVMS envelope may arrive split across many `read`s, and
//! several envelopes may coalesce into one. This module restores record
//! boundaries with the simplest scheme that is still self-describing:
//!
//! ```text
//! | len: u32 LE | payload: len bytes |
//! ```
//!
//! where `payload` is one encoded [`wire`](crate::wire) record (in
//! practice an EVMS envelope, which itself carries EVFD/EVQ8/EVSK blobs).
//! The length prefix is transport overhead and is *not* metered — the
//! traffic accounting in [`transport`](crate::transport) counts payload
//! bytes only, which is what keeps socket-path byte counts identical to
//! the in-process `encoded_size` arithmetic.
//!
//! [`FrameDecoder`] is an incremental reassembler: feed it arbitrary
//! chunks (down to one byte at a time, including splits inside the
//! length header) and it yields exactly the payload sequence that was
//! framed, in order. Malformed input — a declared length above
//! [`MAX_FRAME_BYTES`] — surfaces as a typed [`WireError`], never a
//! panic or an unbounded allocation.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::wire::WireError;

/// Size of the frame length prefix in bytes.
pub const FRAME_HEADER_BYTES: usize = 4;

/// Upper bound on a single frame's payload (256 MiB), mirroring the
/// per-blob bound inside the EVMS envelope. A peer declaring more is
/// malformed or hostile; the decoder rejects the length before
/// allocating anything.
pub const MAX_FRAME_BYTES: usize = 256 << 20;

/// Appends one length-prefixed frame wrapping `payload` to `buf`.
///
/// The buffer is *not* cleared: callers batch several frames into one
/// `write` by calling this repeatedly.
///
/// # Panics
///
/// Panics if `payload.len() > MAX_FRAME_BYTES`; the transport never
/// produces such a payload (the wire encoders bound tensor counts and
/// blob sizes well below it).
pub fn encode_frame(buf: &mut BytesMut, payload: &[u8]) {
    assert!(
        payload.len() <= MAX_FRAME_BYTES,
        "frame payload exceeds MAX_FRAME_BYTES"
    );
    buf.put_u32_le(payload.len() as u32);
    buf.put_slice(payload);
}

/// Total wire footprint of a frame carrying `payload_len` payload bytes.
pub fn frame_size(payload_len: usize) -> usize {
    FRAME_HEADER_BYTES + payload_len
}

/// Writes one length-prefixed frame to `writer` without assembling it
/// first: the 4-byte header and the payload go out in a single vectored
/// write (gathered by the kernel into one TCP segment where possible),
/// with a resume loop for short writes. This replaces the per-send
/// "allocate a framed buffer, copy payload, write" dance in the socket
/// transport — the payload is written from wherever it already lives.
///
/// # Errors
///
/// Any I/O error from the underlying writer; a zero-length vectored
/// write surfaces as [`std::io::ErrorKind::WriteZero`].
///
/// # Panics
///
/// Panics if `payload.len() > MAX_FRAME_BYTES`, exactly like
/// [`encode_frame`].
pub fn write_frame<W: std::io::Write>(writer: &mut W, payload: &[u8]) -> std::io::Result<()> {
    assert!(
        payload.len() <= MAX_FRAME_BYTES,
        "frame payload exceeds MAX_FRAME_BYTES"
    );
    let header = (payload.len() as u32).to_le_bytes();
    let total = FRAME_HEADER_BYTES + payload.len();
    let mut written = 0usize;
    while written < total {
        let n = if written < FRAME_HEADER_BYTES {
            writer.write_vectored(&[
                std::io::IoSlice::new(&header[written..]),
                std::io::IoSlice::new(payload),
            ])?
        } else {
            writer.write(&payload[written - FRAME_HEADER_BYTES..])?
        };
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::WriteZero,
                "failed to write whole frame",
            ));
        }
        written += n;
    }
    Ok(())
}

/// Incremental frame reassembler.
///
/// Bytes go in via [`feed`](Self::feed) in whatever chunks the socket
/// delivers; completed payloads come out via
/// [`next_frame`](Self::next_frame). The decoder owns a single
/// contiguous buffer with a consumed-prefix offset, compacted
/// opportunistically so a long-lived connection does not accrete memory.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Offset of the first unconsumed byte in `buf`.
    start: usize,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes received from the stream.
    pub fn feed(&mut self, chunk: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(chunk);
    }

    /// Number of buffered, not-yet-consumed bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Minimum additional bytes required before [`next_frame`](Self::next_frame)
    /// can yield another payload: the rest of the length header if it is
    /// split, otherwise the rest of the declared payload. Returns 0 when
    /// a complete frame is already buffered.
    pub fn needed(&self) -> usize {
        let pending = &self.buf[self.start..];
        if pending.len() < FRAME_HEADER_BYTES {
            return FRAME_HEADER_BYTES - pending.len();
        }
        let mut cursor = pending;
        let declared = cursor.get_u32_le() as usize;
        (FRAME_HEADER_BYTES + declared).saturating_sub(pending.len())
    }

    /// Extracts the next complete payload, if one is buffered.
    ///
    /// Returns `Ok(None)` when more bytes are needed (see
    /// [`needed`](Self::needed)), and `Err(WireError::OversizedFrame)`
    /// when the declared length exceeds [`MAX_FRAME_BYTES`]. The error is
    /// sticky in effect: the bad header is not consumed, so a poisoned
    /// stream keeps reporting the same error — the connection must be
    /// dropped, there is no resynchronization point in a length-prefixed
    /// stream.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, WireError> {
        let pending = &self.buf[self.start..];
        if pending.len() < FRAME_HEADER_BYTES {
            return Ok(None);
        }
        let mut cursor = pending;
        let declared = cursor.get_u32_le() as usize;
        if declared > MAX_FRAME_BYTES {
            return Err(WireError::OversizedFrame { declared });
        }
        if cursor.len() < declared {
            return Ok(None);
        }
        let payload = Bytes::copy_from_slice(&cursor[..declared]);
        self.start += FRAME_HEADER_BYTES + declared;
        self.compact();
        Ok(Some(payload))
    }

    /// Drops the consumed prefix once it dominates the buffer, bounding
    /// resident memory to roughly one frame plus one read chunk.
    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= 4096 && self.start >= self.buf.len() / 2 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(payloads: &[&[u8]]) -> Vec<u8> {
        let mut buf = BytesMut::new();
        for p in payloads {
            encode_frame(&mut buf, p);
        }
        buf.to_vec()
    }

    #[test]
    fn single_frame_round_trips() {
        let mut dec = FrameDecoder::new();
        dec.feed(&frames(&[b"hello"]));
        assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), b"hello");
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn empty_payload_is_a_valid_frame() {
        let mut dec = FrameDecoder::new();
        dec.feed(&frames(&[b"", b"x"]));
        assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), b"");
        assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), b"x");
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn byte_at_a_time_reassembly_preserves_the_sequence() {
        let stream = frames(&[b"alpha", b"", b"bravo-charlie"]);
        let mut dec = FrameDecoder::new();
        let mut out: Vec<Vec<u8>> = Vec::new();
        for b in &stream {
            dec.feed(std::slice::from_ref(b));
            while let Some(frame) = dec.next_frame().unwrap() {
                out.push(frame.to_vec());
            }
        }
        assert_eq!(
            out,
            vec![b"alpha".to_vec(), vec![], b"bravo-charlie".to_vec()]
        );
    }

    #[test]
    fn needed_tracks_header_then_payload() {
        let mut dec = FrameDecoder::new();
        assert_eq!(dec.needed(), FRAME_HEADER_BYTES);
        dec.feed(&5u32.to_le_bytes()[..2]);
        assert_eq!(dec.needed(), 2);
        dec.feed(&5u32.to_le_bytes()[2..]);
        assert_eq!(dec.needed(), 5);
        dec.feed(b"ab");
        assert_eq!(dec.needed(), 3);
        assert_eq!(dec.next_frame().unwrap(), None);
        dec.feed(b"cde");
        assert_eq!(dec.needed(), 0);
        assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), b"abcde");
    }

    #[test]
    fn oversized_declaration_is_rejected_before_buffering_the_body() {
        let mut dec = FrameDecoder::new();
        dec.feed(&(u32::MAX).to_le_bytes());
        assert_eq!(
            dec.next_frame(),
            Err(WireError::OversizedFrame {
                declared: u32::MAX as usize
            })
        );
        // Sticky: the poisoned header stays at the front of the stream.
        assert!(matches!(
            dec.next_frame(),
            Err(WireError::OversizedFrame { .. })
        ));
    }

    #[test]
    fn exactly_max_frame_bytes_is_accepted_as_a_length() {
        // Only the header is fed — the check must pass on the declared
        // length without requiring the (huge) body.
        let mut dec = FrameDecoder::new();
        dec.feed(&(MAX_FRAME_BYTES as u32).to_le_bytes());
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.needed(), MAX_FRAME_BYTES);
    }

    #[test]
    fn coalesced_frames_drain_in_order() {
        let stream = frames(&[b"1", b"22", b"333"]);
        let mut dec = FrameDecoder::new();
        dec.feed(&stream);
        assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), b"1");
        assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), b"22");
        assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), b"333");
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn compaction_bounds_resident_memory() {
        let payload = vec![7u8; 2048];
        let mut dec = FrameDecoder::new();
        for _ in 0..64 {
            let mut buf = BytesMut::new();
            encode_frame(&mut buf, &payload);
            dec.feed(&buf);
            assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), &payload[..]);
        }
        // Everything consumed: the buffer must have been reset, not grown
        // to 64 frames.
        assert_eq!(dec.buffered(), 0);
        assert!(dec.buf.capacity() < 16 * (FRAME_HEADER_BYTES + payload.len()));
    }

    #[test]
    fn frame_size_matches_encoder_output() {
        let mut buf = BytesMut::new();
        encode_frame(&mut buf, b"abc");
        assert_eq!(buf.len(), frame_size(3));
    }

    #[test]
    fn write_frame_matches_encode_frame_bytes() {
        let mut framed = BytesMut::new();
        encode_frame(&mut framed, b"payload-bytes");
        let mut written = Vec::new();
        write_frame(&mut written, b"payload-bytes").unwrap();
        assert_eq!(written, framed.to_vec());
    }

    /// A writer that accepts at most one byte per call, exercising every
    /// resume point of the short-write loop (inside the header, at the
    /// header/payload boundary, inside the payload).
    struct Dribble(Vec<u8>);

    impl std::io::Write for Dribble {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if buf.is_empty() {
                return Ok(0);
            }
            self.0.push(buf[0]);
            Ok(1)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_frame_survives_short_writes() {
        let mut expected = BytesMut::new();
        encode_frame(&mut expected, b"short-write-survivor");
        let mut dribble = Dribble(Vec::new());
        write_frame(&mut dribble, b"short-write-survivor").unwrap();
        assert_eq!(dribble.0, expected.to_vec());

        let mut dec = FrameDecoder::new();
        dec.feed(&dribble.0);
        assert_eq!(
            dec.next_frame().unwrap().unwrap().as_ref(),
            b"short-write-survivor"
        );
    }
}
