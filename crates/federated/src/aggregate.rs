//! Server-side aggregation rules.

use crate::client::LocalUpdate;
use crate::error::FederatedError;
use evfad_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Rule combining client updates into the next global model.
///
/// The paper uses sample-weighted Federated Averaging
/// ([`Aggregator::FedAvg`]). The Byzantine-robust rules harden the server
/// against poisoned updates — relevant because the paper's threat model is
/// an adversary attacking the *data* path; a natural escalation (bench
/// `ablation_aggregation`, exercised end-to-end by the chaos harness in
/// `tests/chaos.rs` via [`crate::faults`]) is an adversary compromising a
/// *client*.
///
/// The robust rules tolerate non-finite updates (a NaN-flood attack must
/// not panic the server): the median ignores non-finite contributions, the
/// trimmed mean counts non-finite values per coordinate and spends its trim
/// budget on them before any honest extreme, and a candidate whose Krum
/// score is non-finite is never selected. `FedAvg` deliberately propagates
/// NaN — it is the paper's baseline the robust rules are measured against.
///
/// Two semantic fixes over earlier revisions of this module:
///
/// * **Krum with no finite-scored candidate now errors.** Previously, when
///   every candidate's score was NaN (e.g. every client NaN-flooded, or
///   `f` too small to exclude the floods from every neighbour sum), the
///   selection loop never fired and the server silently returned the
///   *first* update — exactly the possibly-poisoned payload Krum exists to
///   reject. It now returns [`FederatedError::Aggregation`].
/// * **Trimmed mean bounds the non-finite count per coordinate.** IEEE
///   total ordering sorts every (positive) NaN to the same end, so two
///   NaN-flooded clients under `trim: 1` used to leave one NaN inside the
///   kept slice and the aggregated coordinate went NaN. Non-finite values
///   now consume trim slots first (high side first, matching the old
///   placement of positive NaN) and aggregation errors when more than
///   `2 * trim` values of a coordinate are non-finite. The clean path is
///   bitwise unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Aggregator {
    /// Sample-count-weighted mean of client weights (McMahan et al.).
    #[default]
    FedAvg,
    /// Coordinate-wise median (unweighted).
    Median,
    /// Coordinate-wise trimmed mean: drop the lowest and highest
    /// `trim` values per coordinate, average the rest.
    TrimmedMean {
        /// How many extreme values to drop from each side.
        trim: usize,
    },
    /// Krum: select the single update minimising the summed squared
    /// distance to its `n - f - 2` nearest neighbours.
    Krum {
        /// Upper bound on the number of Byzantine clients `f`.
        byzantine: usize,
    },
}

impl Aggregator {
    /// Stable identifier for bench output.
    pub fn name(self) -> &'static str {
        match self {
            Aggregator::FedAvg => "fedavg",
            Aggregator::Median => "median",
            Aggregator::TrimmedMean { .. } => "trimmed_mean",
            Aggregator::Krum { .. } => "krum",
        }
    }

    /// Combines updates into new global weights.
    ///
    /// # Errors
    ///
    /// * [`FederatedError::NoClients`] for an empty update set;
    /// * [`FederatedError::Aggregation`] if shapes disagree, trimming
    ///   removes everything, more than `2 * trim` values of a coordinate
    ///   are non-finite, Krum lacks clients (`n >= f + 3`), or no Krum
    ///   candidate has a finite score.
    pub fn aggregate(self, updates: &[LocalUpdate]) -> Result<Vec<Matrix>, FederatedError> {
        if updates.is_empty() {
            return Err(FederatedError::NoClients);
        }
        let reference: Vec<(usize, usize)> = updates[0].weights.iter().map(Matrix::shape).collect();
        for u in updates {
            let shapes: Vec<(usize, usize)> = u.weights.iter().map(Matrix::shape).collect();
            if shapes != reference {
                return Err(FederatedError::Aggregation(format!(
                    "client {} has mismatched weight shapes",
                    u.client_id
                )));
            }
        }
        match self {
            Aggregator::FedAvg => Ok(fed_avg(updates)),
            Aggregator::Median => coordinate_wise(updates, |vals| Ok(robust_median(vals))),
            Aggregator::TrimmedMean { trim } => {
                if 2 * trim >= updates.len() {
                    return Err(FederatedError::Aggregation(format!(
                        "trim {trim} leaves no updates out of {}",
                        updates.len()
                    )));
                }
                coordinate_wise(updates, move |vals| trimmed_mean(vals, trim))
            }
            Aggregator::Krum { byzantine } => krum(updates, byzantine),
        }
    }

    /// Whether this rule can consume updates one at a time in O(model)
    /// memory (see [`crate::streaming::StreamingAggregator`]). Median and
    /// Krum need every update at once by construction.
    pub fn supports_streaming(self) -> bool {
        matches!(self, Aggregator::FedAvg | Aggregator::TrimmedMean { .. })
    }
}

/// How many trim slots the non-finite values of a coordinate consume on
/// each side: `(low_honest, high_honest)` — the number of *honest* (finite)
/// extremes still trimmed from each end after non-finite values have eaten
/// into the `2 * trim` budget, high side first (positive NaN used to sort
/// to the positive end, so this keeps the single-flood behaviour
/// identical).
///
/// Shared by the batch path below and the streaming path in
/// [`crate::streaming`], so both agree on semantics exactly.
pub(crate) fn trim_split(trim: usize, non_finite: usize) -> (usize, usize) {
    let high_honest = trim - non_finite.min(trim);
    let low_honest = trim - non_finite.saturating_sub(trim);
    (low_honest, high_honest)
}

/// The per-coordinate trimmed mean with bounded non-finite tolerance.
///
/// Non-finite values consume trim capacity before any honest extreme; with
/// `bad` of them, `2 * trim - bad` honest extremes are still trimmed
/// (allocated by [`trim_split`]). On an all-finite coordinate this is the
/// classic trimmed mean, bitwise identical to sorting and averaging the
/// middle slice.
///
/// # Errors
///
/// [`FederatedError::Aggregation`] when more than `2 * trim` values are
/// non-finite — too many corrupted clients to contain.
fn trimmed_mean(vals: &[f64], trim: usize) -> Result<f64, FederatedError> {
    let bad = vals.iter().filter(|v| !v.is_finite()).count();
    if bad > 2 * trim {
        return Err(FederatedError::Aggregation(format!(
            "trimmed mean: {bad} non-finite values at a coordinate exceed \
             the 2 * trim = {} containment budget",
            2 * trim
        )));
    }
    let mut sorted: Vec<f64> = vals.iter().copied().filter(|v| v.is_finite()).collect();
    sorted.sort_by(f64::total_cmp);
    let (low, high) = trim_split(trim, bad);
    let kept = &sorted[low..sorted.len() - high];
    Ok(kept.iter().sum::<f64>() / kept.len() as f64)
}

fn fed_avg(updates: &[LocalUpdate]) -> Vec<Matrix> {
    let total: f64 = updates.iter().map(|u| u.sample_count as f64).sum();
    let mut out: Vec<Matrix> = updates[0]
        .weights
        .iter()
        .map(|m| Matrix::zeros(m.rows(), m.cols()))
        .collect();
    for u in updates {
        // Degenerate all-zero-samples federations fall back to uniform.
        let w = if total > 0.0 {
            u.sample_count as f64 / total
        } else {
            1.0 / updates.len() as f64
        };
        for (acc, m) in out.iter_mut().zip(&u.weights) {
            acc.axpy(w, m);
        }
    }
    out
}

/// Coordinate-wise median over the *finite* contributions; NaN/∞ values
/// (a corrupted client) cannot be "the middle" under any robust reading,
/// so they are ignored. All-non-finite coordinates yield NaN.
fn robust_median(vals: &[f64]) -> f64 {
    let finite: Vec<f64> = vals.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return f64::NAN;
    }
    evfad_tensor::stats::median(&finite)
}

fn coordinate_wise(
    updates: &[LocalUpdate],
    combine: impl Fn(&[f64]) -> Result<f64, FederatedError>,
) -> Result<Vec<Matrix>, FederatedError> {
    let mut out = Vec::with_capacity(updates[0].weights.len());
    for t in 0..updates[0].weights.len() {
        let shape = updates[0].weights[t].shape();
        let mut m = Matrix::zeros(shape.0, shape.1);
        let mut column = vec![0.0; updates.len()];
        for flat in 0..m.len() {
            for (ci, u) in updates.iter().enumerate() {
                column[ci] = u.weights[t].as_slice()[flat];
            }
            m.as_mut_slice()[flat] = combine(&column)?;
        }
        out.push(m);
    }
    Ok(out)
}

fn krum(updates: &[LocalUpdate], byzantine: usize) -> Result<Vec<Matrix>, FederatedError> {
    let n = updates.len();
    if n < byzantine + 3 {
        return Err(FederatedError::Aggregation(format!(
            "Krum needs at least f + 3 = {} clients, got {n}",
            byzantine + 3
        )));
    }
    let neighbours = n - byzantine - 2;
    let dist = |a: &LocalUpdate, b: &LocalUpdate| -> f64 {
        a.weights
            .iter()
            .zip(&b.weights)
            .map(|(x, y)| {
                x.as_slice()
                    .iter()
                    .zip(y.as_slice())
                    .map(|(p, q)| (p - q) * (p - q))
                    .sum::<f64>()
            })
            .sum()
    };
    // Only a candidate with a *finite* score may win. A NaN score means the
    // candidate is itself corrupted; an infinite score means its neighbour
    // distances overflowed. If no candidate qualifies the server must
    // refuse rather than fall back to an arbitrary update: the old code
    // left `best = 0` in that case and silently returned the first —
    // possibly poisoned — payload.
    let mut best: Option<(usize, f64)> = None;
    for i in 0..n {
        let mut distances: Vec<f64> = (0..n)
            .filter(|&j| j != i)
            .map(|j| dist(&updates[i], &updates[j]))
            .collect();
        // Total ordering: distances to a NaN-corrupted update sort last,
        // past the honest neighbours, instead of panicking.
        distances.sort_by(f64::total_cmp);
        let score: f64 = distances.iter().take(neighbours).sum();
        if score.is_finite() && best.is_none_or(|(_, s)| score < s) {
            best = Some((i, score));
        }
    }
    match best {
        Some((i, _)) => Ok(updates[i].weights.clone()),
        None => Err(FederatedError::Aggregation(
            "no Krum candidate has a finite score; every update may be corrupted \
             (raise f or investigate the federation)"
                .to_string(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn update(id: &str, value: f64, samples: usize) -> LocalUpdate {
        LocalUpdate {
            client_id: id.into(),
            weights: vec![
                Matrix::filled(2, 2, value),
                Matrix::filled(1, 2, value * 10.0),
            ],
            sample_count: samples,
            train_loss: 0.0,
            duration: Duration::ZERO,
            simulated_extra_seconds: 0.0,
        }
    }

    #[test]
    fn fedavg_weighted_by_samples() {
        let ups = [update("a", 0.0, 100), update("b", 1.0, 300)];
        let agg = Aggregator::FedAvg.aggregate(&ups).unwrap();
        assert!((agg[0][(0, 0)] - 0.75).abs() < 1e-12);
        assert!((agg[1][(0, 1)] - 7.5).abs() < 1e-12);
    }

    #[test]
    fn fedavg_equal_samples_is_plain_mean() {
        let ups = [update("a", 2.0, 50), update("b", 4.0, 50)];
        let agg = Aggregator::FedAvg.aggregate(&ups).unwrap();
        assert!((agg[0][(1, 1)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn fedavg_zero_samples_falls_back_to_uniform() {
        let ups = [update("a", 2.0, 0), update("b", 4.0, 0)];
        let agg = Aggregator::FedAvg.aggregate(&ups).unwrap();
        assert!((agg[0][(0, 0)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn median_ignores_one_outlier() {
        let ups = [
            update("a", 1.0, 10),
            update("b", 1.2, 10),
            update("evil", 1e9, 10),
        ];
        let agg = Aggregator::Median.aggregate(&ups).unwrap();
        assert!((agg[0][(0, 0)] - 1.2).abs() < 1e-12);
    }

    #[test]
    fn trimmed_mean_discards_extremes() {
        let ups = [
            update("a", 0.0, 10),
            update("b", 1.0, 10),
            update("c", 2.0, 10),
            update("evil", 1e6, 10),
            update("evil2", -1e6, 10),
        ];
        let agg = Aggregator::TrimmedMean { trim: 1 }.aggregate(&ups).unwrap();
        assert!((agg[0][(0, 0)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trimmed_mean_rejects_overtrim() {
        let ups = [update("a", 0.0, 1), update("b", 1.0, 1)];
        assert!(Aggregator::TrimmedMean { trim: 1 }.aggregate(&ups).is_err());
    }

    #[test]
    fn krum_selects_inlier_against_byzantine() {
        let ups = [
            update("a", 1.0, 10),
            update("b", 1.05, 10),
            update("c", 0.95, 10),
            update("evil", 500.0, 10),
        ];
        let agg = Aggregator::Krum { byzantine: 1 }.aggregate(&ups).unwrap();
        let v = agg[0][(0, 0)];
        assert!((0.9..=1.1).contains(&v), "krum picked {v}");
    }

    fn nan_update(id: &str) -> LocalUpdate {
        let mut u = update(id, 0.0, 10);
        for m in &mut u.weights {
            for v in m.as_mut_slice() {
                *v = f64::NAN;
            }
        }
        u
    }

    #[test]
    fn median_ignores_a_nan_flooded_client() {
        let ups = [
            update("a", 1.0, 10),
            update("b", 1.2, 10),
            update("c", 1.4, 10),
            nan_update("evil"),
        ];
        let agg = Aggregator::Median.aggregate(&ups).unwrap();
        assert!((agg[0][(0, 0)] - 1.2).abs() < 1e-12);
        assert!(agg.iter().all(Matrix::is_finite));
    }

    #[test]
    fn median_of_all_nan_is_nan_not_a_panic() {
        let ups = [nan_update("e1"), nan_update("e2")];
        let agg = Aggregator::Median.aggregate(&ups).unwrap();
        assert!(agg[0][(0, 0)].is_nan());
    }

    #[test]
    fn trimmed_mean_trims_a_nan_flooded_client() {
        let ups = [
            update("a", 1.0, 10),
            update("b", 2.0, 10),
            update("c", 3.0, 10),
            nan_update("evil"),
        ];
        let agg = Aggregator::TrimmedMean { trim: 1 }.aggregate(&ups).unwrap();
        // NaN sorts as an extreme and is trimmed; kept = {2.0, 3.0}.
        assert!((agg[0][(0, 0)] - 2.5).abs() < 1e-12);
        assert!(agg.iter().all(Matrix::is_finite));
    }

    #[test]
    fn krum_with_no_finite_score_errors_instead_of_returning_first_update() {
        // Regression: every client NaN-flooded. Every pairwise distance is
        // NaN, so every candidate score is NaN and nothing may win. The old
        // code silently returned updates[0] — the poisoned payload itself.
        let ups = [
            nan_update("e1"),
            nan_update("e2"),
            nan_update("e3"),
            nan_update("e4"),
        ];
        match (Aggregator::Krum { byzantine: 1 }).aggregate(&ups) {
            Err(FederatedError::Aggregation(msg)) => {
                assert!(msg.contains("finite score"), "unexpected message: {msg}");
            }
            other => panic!("expected an aggregation error, got {other:?}"),
        }
    }

    #[test]
    fn trimmed_mean_contains_two_nan_floods_with_trim_one() {
        // Regression: total_cmp sorts both (positive) NaNs to the same end,
        // so the old `[trim..len - trim]` slice kept one NaN and the
        // aggregate went NaN. Both floods must now consume the trim budget.
        let ups = [
            update("a", 1.0, 10),
            update("b", 2.0, 10),
            nan_update("evil1"),
            nan_update("evil2"),
        ];
        let agg = Aggregator::TrimmedMean { trim: 1 }.aggregate(&ups).unwrap();
        assert!(
            agg.iter().all(Matrix::is_finite),
            "two NaN floods must not leak into the aggregate"
        );
        // Both trim slots went to the floods; both honest values are kept.
        assert!((agg[0][(0, 0)] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn trimmed_mean_errors_when_floods_exceed_the_containment_budget() {
        let ups = [
            update("a", 1.0, 10),
            update("b", 2.0, 10),
            nan_update("e1"),
            nan_update("e2"),
            nan_update("e3"),
        ];
        match (Aggregator::TrimmedMean { trim: 1 }).aggregate(&ups) {
            Err(FederatedError::Aggregation(msg)) => {
                assert!(msg.contains("non-finite"), "unexpected message: {msg}");
            }
            other => panic!("expected an aggregation error, got {other:?}"),
        }
    }

    #[test]
    fn trim_split_spends_budget_on_non_finite_high_side_first() {
        assert_eq!(trim_split(1, 0), (1, 1));
        assert_eq!(trim_split(1, 1), (1, 0));
        assert_eq!(trim_split(1, 2), (0, 0));
        assert_eq!(trim_split(2, 1), (2, 1));
        assert_eq!(trim_split(2, 3), (1, 0));
        assert_eq!(trim_split(2, 4), (0, 0));
        assert_eq!(trim_split(0, 0), (0, 0));
    }

    #[test]
    fn streaming_support_matrix() {
        assert!(Aggregator::FedAvg.supports_streaming());
        assert!(Aggregator::TrimmedMean { trim: 2 }.supports_streaming());
        assert!(!Aggregator::Median.supports_streaming());
        assert!(!Aggregator::Krum { byzantine: 1 }.supports_streaming());
    }

    #[test]
    fn krum_never_selects_a_nan_flooded_client() {
        let ups = [
            update("a", 1.0, 10),
            update("b", 1.1, 10),
            update("c", 0.9, 10),
            nan_update("evil"),
        ];
        let agg = Aggregator::Krum { byzantine: 1 }.aggregate(&ups).unwrap();
        assert!(agg.iter().all(Matrix::is_finite));
        let v = agg[0][(0, 0)];
        assert!((0.8..=1.2).contains(&v), "krum picked {v}");
    }

    #[test]
    fn fedavg_propagates_nan_by_design() {
        let ups = [update("a", 1.0, 10), nan_update("evil")];
        let agg = Aggregator::FedAvg.aggregate(&ups).unwrap();
        assert!(agg[0][(0, 0)].is_nan());
    }

    #[test]
    fn krum_needs_enough_clients() {
        let ups = [update("a", 1.0, 1), update("b", 1.0, 1)];
        assert!(Aggregator::Krum { byzantine: 1 }.aggregate(&ups).is_err());
    }

    #[test]
    fn empty_updates_rejected() {
        assert_eq!(
            Aggregator::FedAvg.aggregate(&[]),
            Err(FederatedError::NoClients)
        );
    }

    #[test]
    fn mismatched_shapes_rejected() {
        let mut bad = update("bad", 1.0, 1);
        bad.weights[0] = Matrix::zeros(3, 3);
        let ups = [update("a", 1.0, 1), bad];
        assert!(matches!(
            Aggregator::FedAvg.aggregate(&ups),
            Err(FederatedError::Aggregation(_))
        ));
    }

    #[test]
    fn aggregate_preserves_shapes() {
        let ups = [update("a", 1.0, 5), update("b", 2.0, 5)];
        for agg in [
            Aggregator::FedAvg,
            Aggregator::Median,
            Aggregator::Krum { byzantine: 0 },
        ] {
            if let Ok(w) = agg.aggregate(&ups) {
                assert_eq!(w[0].shape(), (2, 2));
                assert_eq!(w[1].shape(), (1, 2));
            }
        }
    }

    #[test]
    fn names() {
        assert_eq!(Aggregator::FedAvg.name(), "fedavg");
        assert_eq!(Aggregator::Median.name(), "median");
        assert_eq!(Aggregator::TrimmedMean { trim: 1 }.name(), "trimmed_mean");
        assert_eq!(Aggregator::Krum { byzantine: 1 }.name(), "krum");
        assert_eq!(Aggregator::default(), Aggregator::FedAvg);
    }
}
