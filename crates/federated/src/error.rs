//! Error type for the federated stack.

use std::error::Error;
use std::fmt;

/// Errors surfaced by federated training.
#[derive(Debug, Clone, PartialEq)]
pub enum FederatedError {
    /// The simulation has no clients.
    NoClients,
    /// Client models/updates disagree on parameter shapes.
    IncompatibleUpdate {
        /// Client whose update did not match.
        client: String,
    },
    /// A client's local training failed.
    ClientTraining {
        /// Client whose training failed.
        client: String,
        /// Underlying message.
        message: String,
    },
    /// Aggregation could not run (e.g. Krum with too few clients).
    Aggregation(String),
}

impl fmt::Display for FederatedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FederatedError::NoClients => write!(f, "simulation has no clients"),
            FederatedError::IncompatibleUpdate { client } => {
                write!(f, "client {client} produced an incompatible update")
            }
            FederatedError::ClientTraining { client, message } => {
                write!(f, "training failed on client {client}: {message}")
            }
            FederatedError::Aggregation(msg) => write!(f, "aggregation failed: {msg}"),
        }
    }
}

impl Error for FederatedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(FederatedError::NoClients.to_string().contains("no clients"));
        assert!(FederatedError::IncompatibleUpdate {
            client: "c1".into()
        }
        .to_string()
        .contains("c1"));
        assert!(FederatedError::ClientTraining {
            client: "c2".into(),
            message: "boom".into()
        }
        .to_string()
        .contains("boom"));
        assert!(FederatedError::Aggregation("few".into())
            .to_string()
            .contains("few"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<FederatedError>();
    }
}
