//! Error type for the federated stack.

use std::error::Error;
use std::fmt;

/// Errors surfaced by federated training.
#[derive(Debug, Clone, PartialEq)]
pub enum FederatedError {
    /// The simulation has no clients.
    NoClients,
    /// Client models/updates disagree on parameter shapes.
    IncompatibleUpdate {
        /// Client whose update did not match.
        client: String,
    },
    /// A client's local training failed.
    ClientTraining {
        /// Client whose training failed.
        client: String,
        /// Underlying message.
        message: String,
    },
    /// Aggregation could not run (e.g. Krum with too few clients).
    Aggregation(String),
    /// A configuration knob failed up-front validation.
    InvalidConfig {
        /// Offending field (e.g. `"participation"`).
        field: String,
        /// Why the value was rejected.
        message: String,
    },
    /// Too few updates survived a round's fault model to aggregate.
    InsufficientParticipants {
        /// Round that starved.
        round: usize,
        /// Updates that survived the fault model.
        survivors: usize,
        /// The configured `min_participants` floor.
        required: usize,
    },
    /// The socket transport failed: I/O errors, protocol violations
    /// (unexpected message, malformed frame), handshake timeouts, or a
    /// server-sent abort.
    Transport {
        /// What went wrong, including the peer where known.
        message: String,
    },
}

impl fmt::Display for FederatedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FederatedError::NoClients => write!(f, "simulation has no clients"),
            FederatedError::IncompatibleUpdate { client } => {
                write!(f, "client {client} produced an incompatible update")
            }
            FederatedError::ClientTraining { client, message } => {
                write!(f, "training failed on client {client}: {message}")
            }
            FederatedError::Aggregation(msg) => write!(f, "aggregation failed: {msg}"),
            FederatedError::InvalidConfig { field, message } => {
                write!(f, "invalid federated config: {field}: {message}")
            }
            FederatedError::InsufficientParticipants {
                round,
                survivors,
                required,
            } => write!(
                f,
                "round {round} starved: {survivors} participants survived the fault \
                 model but min_participants = {required}"
            ),
            FederatedError::Transport { message } => {
                write!(f, "socket transport failed: {message}")
            }
        }
    }
}

impl Error for FederatedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(FederatedError::NoClients.to_string().contains("no clients"));
        assert!(FederatedError::IncompatibleUpdate {
            client: "c1".into()
        }
        .to_string()
        .contains("c1"));
        assert!(FederatedError::ClientTraining {
            client: "c2".into(),
            message: "boom".into()
        }
        .to_string()
        .contains("boom"));
        assert!(FederatedError::Aggregation("few".into())
            .to_string()
            .contains("few"));
        assert!(FederatedError::InvalidConfig {
            field: "participation".into(),
            message: "must be in (0, 1]".into()
        }
        .to_string()
        .contains("participation"));
        let starved = FederatedError::InsufficientParticipants {
            round: 3,
            survivors: 1,
            required: 2,
        }
        .to_string();
        assert!(starved.contains("round 3") && starved.contains("min_participants = 2"));
        assert!(FederatedError::Transport {
            message: "connection reset by z105".into()
        }
        .to_string()
        .contains("z105"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<FederatedError>();
    }
}
