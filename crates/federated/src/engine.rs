//! The shared federated round loop, factored out of
//! [`FederatedSimulation`](crate::FederatedSimulation) so the in-process
//! and socket paths execute the *same* code for everything the digest
//! observes: participant sampling, fault admission and disposition,
//! metering, the `min_participants` floor, aggregation, and round stats.
//!
//! A [`RoundPool`] abstracts the one thing that differs — where the
//! trained updates come from. The in-process pool trains
//! [`FedClient`](crate::FedClient)s on local threads; the socket pool
//! (see [`socket`](crate::socket)) requests training over TCP and decodes
//! the uplinks it receives. Because every protocol decision lives here,
//! digest byte-identity between the two paths is a property of the code
//! shape, not a coincidence to re-verify per feature — the loopback
//! integration suite pins it anyway.
//!
//! The large-population path ([`crate::scale`]) deliberately does *not*
//! implement [`RoundPool`]: it replaces per-client training with
//! synthesis plus a sampled real-training subset, folds shards on the
//! [`evfad_tensor::parallel`] pool in waves, and keeps counters instead
//! of per-client vectors — the O(clients) stats this loop builds are
//! exactly what it exists to avoid. The two paths share the scheduler,
//! fault gate, metering, and streaming rules instead.

use crate::client::LocalUpdate;
use crate::compression::CodecScratch;
use crate::error::FederatedError;
use crate::faults::{FaultEvent, FaultKind};
use crate::scheduler::Scheduler;
use crate::server::{self, Disposition, FaultGate};
use crate::simulation::{FederatedConfig, FederatedOutcome, RoundStats};
use crate::transport::MeteredChannel;
use crate::wire;
use bytes::BytesMut;
use evfad_tensor::Matrix;
use std::time::Instant;

/// One trained update as delivered by a [`RoundPool`].
pub(crate) struct PoolUpdate {
    /// The update itself. On the socket path the weights are already the
    /// server-side decode of the received payload.
    pub(crate) update: LocalUpdate,
    /// Exact uplink payload bytes this update cost on a real wire
    /// (`None` on the in-process path, where metering encodes locally).
    pub(crate) wire_len: Option<usize>,
}

impl PoolUpdate {
    /// An in-process update: no wire crossed, metering will encode.
    pub(crate) fn local(update: LocalUpdate) -> Self {
        Self {
            update,
            wire_len: None,
        }
    }
}

/// Source of trained updates for [`run_rounds`] — the only part of the
/// round loop that differs between the in-process simulation and the TCP
/// transport.
pub(crate) trait RoundPool {
    /// Number of registered clients (constant over the run).
    fn client_count(&self) -> usize;

    /// Stable id of client `ci` — the admission key the fault plan hashes.
    fn client_id(&self, ci: usize) -> &str;

    /// Delivers the new global model to every client. `encoded` is the
    /// EVFD broadcast payload; the engine has already metered it once per
    /// client. Called after each aggregation (i.e. at the top of rounds
    /// `1..`), never before round 0 — clients start from the shared
    /// initialisation.
    fn broadcast(&mut self, global: &[Matrix], encoded: &[u8]) -> Result<(), FederatedError>;

    /// Trains the `active` clients for one round and returns their
    /// updates **in `active` order** — the engine's fault disposition
    /// walks them positionally against `active_faults`. `active_faults`
    /// carries the admitted fault per client (a live pool forwards it so
    /// clients can act faults out; the in-process pool ignores it and
    /// lets the gate simulate them).
    fn round_updates(
        &mut self,
        round: usize,
        active: &[usize],
        active_faults: &[Option<FaultKind>],
        global: &[Matrix],
    ) -> Result<Vec<PoolUpdate>, FederatedError>;

    /// Whether payload-visible faults (corruption) already happened in
    /// transit — i.e. the clients applied them before encoding, so the
    /// gate must not apply them again. `false` for in-process pools.
    fn faults_in_transit(&self) -> bool {
        false
    }

    /// Called once after the last round with the final global weights
    /// (e.g. to send `Done` over the wire). Default: nothing.
    fn finish(&mut self, global: &[Matrix]) -> Result<(), FederatedError> {
        let _ = global;
        Ok(())
    }
}

/// Runs the full federated schedule over `pool`.
///
/// This is the loop previously inlined in `FederatedSimulation::run`,
/// verbatim in its decision structure: the golden digest fixture pins
/// that the extraction changed nothing. The caller has already validated
/// `config` and reset `channel`.
pub(crate) fn run_rounds<P: RoundPool>(
    pool: &mut P,
    config: &FederatedConfig,
    channel: &MeteredChannel,
    mut global: Vec<Matrix>,
) -> Result<FederatedOutcome, FederatedError> {
    let start = Instant::now();
    let gate = FaultGate::new(config.faults.clone());
    let scheduler = Scheduler::new(config.participation, config.sampling_seed);
    let mut rounds = Vec::with_capacity(config.rounds);
    let apply_payload_faults = !pool.faults_in_transit();

    // The broadcast is encoded once per round into this reusable buffer;
    // every client is metered by the same byte length. No JSON
    // serialisation happens anywhere in the round loop.
    let mut broadcast_buf = BytesMut::new();
    // One codec scratch for the whole run: after the first round every
    // uplink encode/decode reuses its buffers instead of allocating.
    let mut codec_scratch = CodecScratch::default();

    for round in 0..config.rounds {
        let round_start = Instant::now();
        // Broadcast: after round 0 every client starts from the global
        // model (round 0 starts from the shared initialisation).
        let mut downlink_bytes = 0usize;
        if round > 0 {
            wire::encode_weights_into(&mut broadcast_buf, &global);
            let broadcast_len = broadcast_buf.len();
            for _ in 0..pool.client_count() {
                channel.record_bytes(broadcast_len);
            }
            pool.broadcast(&global, &broadcast_buf)?;
            downlink_bytes = broadcast_len * pool.client_count();
        }
        // Sample this round's participants (all of them at the paper's
        // participation = 1.0).
        let participants = scheduler.sample(round, pool.client_count());
        // Consult the fault plan serially, in client order, *before*
        // training: fault decisions must never depend on thread
        // scheduling (or network arrival order). Dropped-out clients
        // never even train.
        let mut faults: Vec<FaultEvent> = Vec::new();
        let mut active: Vec<usize> = Vec::new();
        let mut active_faults: Vec<Option<FaultKind>> = Vec::new();
        for &ci in &participants {
            if let Some(fault) = gate.admit(round, pool.client_id(ci), &mut faults) {
                active.push(ci);
                active_faults.push(fault);
            }
        }
        // Local training (parallel threads in-process; remote clients
        // over TCP on the socket path).
        let updates = pool.round_updates(round, &active, &active_faults, &global)?;
        debug_assert_eq!(updates.len(), active.len(), "pool must fill the round");
        // Apply the fault model to each trained update, still in client
        // order.
        let mut kept: Vec<LocalUpdate> = Vec::new();
        let mut kept_attempts: Vec<usize> = Vec::new();
        let mut kept_wire: Vec<Option<usize>> = Vec::new();
        // Updates that crossed the channel but never reached aggregation
        // (timed-out stragglers; exhausted retries), with the number of
        // send attempts to meter.
        let mut wasted: Vec<(LocalUpdate, usize, Option<usize>)> = Vec::new();
        let mut timeout_wait_seconds = 0.0_f64;
        for (pooled, fault) in updates.into_iter().zip(active_faults) {
            let PoolUpdate {
                mut update,
                wire_len,
            } = pooled;
            match gate.dispose(
                round,
                fault,
                &mut update,
                &mut faults,
                &mut timeout_wait_seconds,
                apply_payload_faults,
            ) {
                Disposition::Keep { attempts } => {
                    kept.push(update);
                    kept_attempts.push(attempts);
                    kept_wire.push(wire_len);
                }
                Disposition::Waste { attempts } => wasted.push((update, attempts, wire_len)),
            }
        }
        // Optional client-side DP before anything leaves the client —
        // including uploads the server will end up discarding. (The
        // socket path rejects DP configs up front: noise must be added
        // before the bytes cross a real wire, which a live client does
        // not do yet.)
        if let Some(dp) = config.dp {
            for (i, u) in kept
                .iter_mut()
                .chain(wasted.iter_mut().map(|(u, _, _)| u))
                .enumerate()
            {
                u.weights =
                    crate::privacy::privatize(&u.weights, &global, dp, (round * 1000 + i) as u64);
            }
        }
        // Uplink: encode each surviving update per the configured
        // compression mode, meter the exact wire byte length of the
        // payload that crossed the channel (after privatisation, so DP
        // noise is part of the measured bytes), and hand the server the
        // *decoded* payload — metering, faults, and aggregation all see
        // the same bytes. On the socket path the payload already crossed
        // a real wire: its decoded weights and actual byte length ride in
        // unchanged.
        let uplink = server::meter_uplinks(
            channel,
            config.compression,
            &global,
            &mut kept,
            &kept_attempts,
            &kept_wire,
            &wasted,
            &mut codec_scratch,
        );
        let uplink_bytes = uplink.bytes;
        let compression_ratio = uplink.compression_ratio();
        // Graceful degradation: proceed iff enough updates survived.
        if kept.len() < gate.min_participants {
            return Err(FederatedError::InsufficientParticipants {
                round,
                survivors: kept.len(),
                required: gate.min_participants,
            });
        }
        global = server::aggregate_round(config.aggregator, &kept)?;
        rounds.push(RoundStats {
            round,
            participants: kept.iter().map(|u| u.client_id.clone()).collect(),
            client_losses: kept.iter().map(|u| u.train_loss).collect(),
            client_seconds: kept.iter().map(|u| u.duration.as_secs_f64()).collect(),
            client_extra_seconds: kept.iter().map(|u| u.simulated_extra_seconds).collect(),
            timeout_wait_seconds,
            faults,
            uplink_bytes,
            downlink_bytes,
            compression_ratio,
            duration: round_start.elapsed(),
        });
    }

    pool.finish(&global)?;

    Ok(FederatedOutcome {
        rounds,
        global_weights: global,
        total_duration: start.elapsed(),
        traffic: channel.totals(),
    })
}
