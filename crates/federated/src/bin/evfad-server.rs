//! Federation server over TCP: binds, admits the expected clients, runs
//! the full federated schedule through the shared round engine, and
//! prints the run's deterministic digest as JSON.
//!
//! Pair with `evfad-client` — one process per charging-station client:
//!
//! ```text
//! evfad-server --addr 127.0.0.1:7878 --clients z102,z105,z108 --rounds 3
//! evfad-client --addr 127.0.0.1:7878 --id z102 --phase 0.0   # per client
//! ```
//!
//! For the same seed/config, the printed digest is byte-identical to an
//! in-process `FederatedSimulation` over the same clients — the loopback
//! integration suite pins this.

use evfad_federated::{CompressionMode, FederatedConfig, SocketServer, SocketServerConfig};
use evfad_nn::forecaster_model;
use std::process::ExitCode;

struct Args {
    addr: String,
    clients: Vec<String>,
    rounds: usize,
    epochs: usize,
    batch: usize,
    lstm_units: usize,
    model_seed: u64,
    sampling_seed: u64,
    participation: f64,
    compression: CompressionMode,
}

impl Args {
    fn parse() -> Result<Self, String> {
        let mut args = Args {
            addr: "127.0.0.1:7878".to_string(),
            clients: Vec::new(),
            rounds: 3,
            epochs: 2,
            batch: 16,
            lstm_units: 4,
            model_seed: 3,
            sampling_seed: 0,
            participation: 1.0,
            compression: CompressionMode::None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
            match flag.as_str() {
                "--addr" => args.addr = value("--addr")?,
                "--clients" => {
                    args.clients = value("--clients")?.split(',').map(str::to_string).collect();
                }
                "--rounds" => args.rounds = parse_num(&value("--rounds")?)?,
                "--epochs" => args.epochs = parse_num(&value("--epochs")?)?,
                "--batch" => args.batch = parse_num(&value("--batch")?)?,
                "--lstm-units" => args.lstm_units = parse_num(&value("--lstm-units")?)?,
                "--model-seed" => args.model_seed = parse_num(&value("--model-seed")?)?,
                "--sampling-seed" => args.sampling_seed = parse_num(&value("--sampling-seed")?)?,
                "--participation" => {
                    args.participation = value("--participation")?
                        .parse()
                        .map_err(|e| format!("--participation: {e}"))?;
                }
                "--compression" => {
                    let v = value("--compression")?;
                    args.compression = match v.as_str() {
                        "none" => CompressionMode::None,
                        "quant8" => CompressionMode::Quant8,
                        topk if topk.starts_with("topk:") => CompressionMode::TopKDelta {
                            k: parse_num(&topk["topk:".len()..])?,
                        },
                        other => return Err(format!("unknown compression {other:?}")),
                    };
                }
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
            }
        }
        if args.clients.is_empty() {
            return Err(format!("--clients is required\n{USAGE}"));
        }
        Ok(args)
    }
}

const USAGE: &str = "\
Usage: evfad-server --clients z102,z105,z108 [options]
  --addr HOST:PORT        listen address (default 127.0.0.1:7878)
  --clients A,B,C         expected client ids, in registration order (required)
  --rounds N              federated rounds (default 3)
  --epochs N              local epochs per round (default 2)
  --batch N               local mini-batch size (default 16)
  --lstm-units N          model width; must match the clients (default 4)
  --model-seed N          model init seed; must match the clients (default 3)
  --sampling-seed N       participant sampling seed (default 0)
  --participation F       per-round participation fraction (default 1.0)
  --compression MODE      none | quant8 | topk:K (default none)";

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| format!("{s:?}: {e}"))
}

fn main() -> ExitCode {
    let args = match Args::parse() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let config = FederatedConfig {
        rounds: args.rounds,
        epochs_per_round: args.epochs,
        batch_size: args.batch,
        participation: args.participation,
        sampling_seed: args.sampling_seed,
        compression: args.compression,
        ..FederatedConfig::default()
    };
    let template = forecaster_model(args.lstm_units, args.model_seed);
    let server_cfg = SocketServerConfig::new(config, args.clients.clone());
    let mut server = match SocketServer::bind(&args.addr, template, server_cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("evfad-server: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "evfad-server: listening on {}, waiting for {} clients: {}",
        server.local_addr(),
        args.clients.len(),
        args.clients.join(", ")
    );
    match server.run() {
        Ok(outcome) => {
            let digest = outcome.digest();
            match serde_json::to_string_pretty(&digest) {
                Ok(json) => println!("{json}"),
                Err(e) => {
                    eprintln!("evfad-server: digest serialisation failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
            eprintln!(
                "evfad-server: {} rounds complete, {} bytes over {} messages",
                outcome.rounds.len(),
                outcome.traffic.bytes,
                outcome.traffic.messages
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("evfad-server: {e}");
            ExitCode::FAILURE
        }
    }
}
