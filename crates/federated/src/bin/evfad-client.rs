//! Federation client over TCP: connects to `evfad-server`, trains on a
//! local synthetic charging-load series when asked, and uploads updates
//! with real retry/backoff.
//!
//! The demo dataset is the repo's standard sine fixture — each client
//! gets a phase-shifted window of the same waveform, standing in for a
//! charging station's private load history. Point `--phase` somewhere
//! different per client:
//!
//! ```text
//! evfad-client --addr 127.0.0.1:7878 --id z102 --phase 0.0
//! evfad-client --addr 127.0.0.1:7878 --id z105 --phase 0.8
//! evfad-client --addr 127.0.0.1:7878 --id z108 --phase 1.6
//! ```

use evfad_federated::SocketClient;
use evfad_nn::{forecaster_model, Sample};
use evfad_tensor::Matrix;
use std::net::ToSocketAddrs;
use std::process::ExitCode;

struct Args {
    addr: String,
    id: String,
    phase: f64,
    samples: usize,
    lstm_units: usize,
    model_seed: u64,
    time_dilation: f64,
}

impl Args {
    fn parse() -> Result<Self, String> {
        let mut args = Args {
            addr: "127.0.0.1:7878".to_string(),
            id: String::new(),
            phase: 0.0,
            samples: 32,
            lstm_units: 4,
            model_seed: 3,
            time_dilation: 1.0,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
            match flag.as_str() {
                "--addr" => args.addr = value("--addr")?,
                "--id" => args.id = value("--id")?,
                "--phase" => {
                    args.phase = value("--phase")?
                        .parse()
                        .map_err(|e| format!("--phase: {e}"))?;
                }
                "--samples" => {
                    args.samples = value("--samples")?
                        .parse()
                        .map_err(|e| format!("--samples: {e}"))?;
                }
                "--lstm-units" => {
                    args.lstm_units = value("--lstm-units")?
                        .parse()
                        .map_err(|e| format!("--lstm-units: {e}"))?;
                }
                "--model-seed" => {
                    args.model_seed = value("--model-seed")?
                        .parse()
                        .map_err(|e| format!("--model-seed: {e}"))?;
                }
                "--time-dilation" => {
                    args.time_dilation = value("--time-dilation")?
                        .parse()
                        .map_err(|e| format!("--time-dilation: {e}"))?;
                }
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
            }
        }
        if args.id.is_empty() {
            return Err(format!("--id is required\n{USAGE}"));
        }
        Ok(args)
    }
}

const USAGE: &str = "\
Usage: evfad-client --id z102 [options]
  --addr HOST:PORT      server address (default 127.0.0.1:7878)
  --id ID               this client's id; must be in the server's roster (required)
  --phase F             phase shift of the synthetic load series (default 0.0)
  --samples N           local dataset size (default 32)
  --lstm-units N        model width; must match the server (default 4)
  --model-seed N        model init seed; must match the server (default 3)
  --time-dilation F     scale real fault sleeps; 0 disables them (default 1.0)";

/// The repo's standard synthetic per-client series: 6-step sine windows
/// forecasting the next step, phase-shifted per client.
fn sine_samples(n: usize, phase: f64) -> Vec<Sample> {
    (0..n)
        .map(|i| {
            let xs: Vec<f64> = (0..6)
                .map(|t| ((i + t) as f64 * 0.5 + phase).sin())
                .collect();
            Sample::new(
                Matrix::column_vector(&xs),
                Matrix::from_vec(1, 1, vec![((i + 6) as f64 * 0.5 + phase).sin()]),
            )
        })
        .collect()
}

fn main() -> ExitCode {
    let args = match Args::parse() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let addr = match args.addr.to_socket_addrs().ok().and_then(|mut a| a.next()) {
        Some(addr) => addr,
        None => {
            eprintln!("evfad-client: cannot resolve {}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    let template = forecaster_model(args.lstm_units, args.model_seed);
    let samples = sine_samples(args.samples, args.phase);
    let client = SocketClient {
        time_dilation: args.time_dilation,
    };
    eprintln!("evfad-client: {} connecting to {addr}", args.id);
    match client.run(addr, args.id.clone(), template, samples) {
        Ok(global) => {
            let params: usize = global.iter().map(|m| m.rows() * m.cols()).sum();
            eprintln!(
                "evfad-client: {} done, final global model has {params} parameters \
                 across {} tensors",
                args.id,
                global.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("evfad-client: {}: {e}", args.id);
            ExitCode::FAILURE
        }
    }
}
