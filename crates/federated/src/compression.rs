//! Update compression: 8-bit uniform quantization of weight tensors.
//!
//! The paper's privacy/communication story is "only model parameters were
//! exchanged". This module cuts that exchange a further ~8x by quantizing
//! each tensor to `u8` against its own min/max range — the standard
//! communication-efficient-FL baseline — with a measured, bounded
//! round-trip error.

use evfad_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// One weight tensor quantized to 8 bits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedTensor {
    rows: usize,
    cols: usize,
    /// Minimum value of the original tensor.
    min: f64,
    /// Quantization step ((max - min) / 255).
    step: f64,
    /// Row-major quantized codes.
    codes: Vec<u8>,
}

impl QuantizedTensor {
    /// Quantizes a tensor: each value maps to the nearest of 256 levels
    /// spanning `[min, max]`.
    pub fn quantize(m: &Matrix) -> Self {
        let min = m.as_slice().iter().copied().fold(f64::INFINITY, f64::min);
        let max = m
            .as_slice()
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let range = max - min;
        let step = if range > 0.0 { range / 255.0 } else { 0.0 };
        let codes = m
            .as_slice()
            .iter()
            .map(|&v| {
                if step == 0.0 {
                    0
                } else {
                    ((v - min) / step).round().clamp(0.0, 255.0) as u8
                }
            })
            .collect();
        Self {
            rows: m.rows(),
            cols: m.cols(),
            min,
            step,
            codes,
        }
    }

    /// Reconstructs the (lossy) tensor.
    pub fn dequantize(&self) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.codes
                .iter()
                .map(|&c| self.min + c as f64 * self.step)
                .collect(),
        )
    }

    /// Worst-case absolute reconstruction error (half a step).
    pub fn max_error(&self) -> f64 {
        self.step / 2.0
    }

    /// Payload size in bytes (codes plus the two f64 parameters and shape).
    pub fn byte_size(&self) -> usize {
        self.codes.len() + 2 * 8 + 2 * 8
    }
}

/// A whole model update quantized tensor-by-tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedUpdate {
    tensors: Vec<QuantizedTensor>,
}

impl QuantizedUpdate {
    /// Quantizes every tensor of a weight vector.
    ///
    /// # Examples
    ///
    /// ```
    /// use evfad_federated::compression::QuantizedUpdate;
    /// use evfad_tensor::Matrix;
    ///
    /// let weights = vec![Matrix::from_fn(10, 10, |i, j| (i as f64 - j as f64) * 0.01)];
    /// let q = QuantizedUpdate::quantize(&weights);
    /// let restored = q.dequantize();
    /// assert_eq!(restored[0].shape(), (10, 10));
    /// assert!(q.byte_size() < 200);
    /// ```
    pub fn quantize(weights: &[Matrix]) -> Self {
        Self {
            tensors: weights.iter().map(QuantizedTensor::quantize).collect(),
        }
    }

    /// Reconstructs the weight vector.
    pub fn dequantize(&self) -> Vec<Matrix> {
        self.tensors
            .iter()
            .map(QuantizedTensor::dequantize)
            .collect()
    }

    /// Total payload bytes.
    pub fn byte_size(&self) -> usize {
        self.tensors.iter().map(QuantizedTensor::byte_size).sum()
    }

    /// Compression ratio versus shipping raw `f64` values.
    pub fn compression_ratio(&self) -> f64 {
        let raw: usize = self.tensors.iter().map(|t| t.codes.len() * 8).sum();
        raw as f64 / self.byte_size() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_error_is_bounded_by_half_step() {
        let m = Matrix::from_fn(20, 20, |i, j| ((i * 31 + j * 7) % 100) as f64 * 0.013 - 0.5);
        let q = QuantizedTensor::quantize(&m);
        let back = q.dequantize();
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= q.max_error() + 1e-12);
        }
    }

    #[test]
    fn constant_tensor_is_exact() {
        let m = Matrix::filled(5, 5, 3.25);
        let q = QuantizedTensor::quantize(&m);
        assert_eq!(q.dequantize(), m);
        assert_eq!(q.max_error(), 0.0);
    }

    #[test]
    fn extremes_are_exact() {
        let m = Matrix::from_rows(&[vec![-2.0, 0.1, 7.0]]);
        let back = QuantizedTensor::quantize(&m).dequantize();
        assert!((back[(0, 0)] + 2.0).abs() < 1e-12);
        assert!((back[(0, 2)] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn update_round_trip_preserves_shapes() {
        let weights = vec![Matrix::zeros(3, 4), Matrix::ones(1, 4), Matrix::identity(2)];
        let q = QuantizedUpdate::quantize(&weights);
        let back = q.dequantize();
        assert_eq!(back.len(), 3);
        assert_eq!(back[0].shape(), (3, 4));
        assert_eq!(back[2], Matrix::identity(2));
    }

    #[test]
    fn compression_ratio_near_eight() {
        let weights = vec![Matrix::from_fn(100, 100, |i, j| (i + j) as f64 * 0.001)];
        let q = QuantizedUpdate::quantize(&weights);
        let ratio = q.compression_ratio();
        assert!(ratio > 7.0 && ratio <= 8.0, "ratio {ratio}");
    }

    #[test]
    fn quantized_model_still_predicts_close() {
        use evfad_nn::{Activation, Dense, Lstm, Sequential};
        let mut model = Sequential::new(5)
            .with(Lstm::new(1, 8, false))
            .with(Dense::new(8, 1, Activation::Linear));
        let x = vec![Matrix::column_vector(&[0.2, 0.4, 0.1, 0.8])];
        let exact = model.predict(&x)[0][(0, 0)];
        let q = QuantizedUpdate::quantize(&model.weights());
        model.set_weights(&q.dequantize()).expect("same shapes");
        let approx = model.predict(&x)[0][(0, 0)];
        assert!(
            (exact - approx).abs() < 0.05,
            "quantization moved prediction too far: {exact} vs {approx}"
        );
    }

    #[test]
    fn serde_round_trip() {
        let weights = vec![Matrix::from_fn(4, 4, |i, j| (i * j) as f64 * 0.1)];
        let q = QuantizedUpdate::quantize(&weights);
        let json = serde_json::to_string(&q).unwrap();
        let back: QuantizedUpdate = serde_json::from_str(&json).unwrap();
        assert_eq!(q, back);
    }
}
