//! Update compression: 8-bit quantization and sparse top-k deltas.
//!
//! The paper's privacy/communication story is "only model parameters were
//! exchanged". This module cuts that exchange further — ~8x via 8-bit
//! uniform quantization against each tensor's own min/max range (the
//! standard communication-efficient-FL baseline), or more via sparse
//! top-k deltas against the round's broadcast global — with measured,
//! bounded round-trip error. [`CompressionMode`] selects the uplink
//! encoding in [`FederatedConfig`](crate::FederatedConfig); the binary
//! wire records live in [`wire`](crate::wire) (`EVQ8` / `EVSK`).
//!
//! # Non-finite values
//!
//! Quantization is NaN-tolerant by construction: non-finite values (NaN,
//! ±∞) are excluded from the min/max range fold and transmitted **verbatim**
//! as `(index, value)` side records, so a NaN-flood-corrupted update
//! round-trips exactly — the poison reaches the server unmodified and the
//! robust aggregators (not the codec) remain the defence. A finite tensor
//! pays nothing for this; a fully non-finite tensor degenerates to the
//! verbatim list (correctness over ratio under attack).

use evfad_tensor::quant::QuantRange;
use evfad_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Uplink encoding for client updates, selected by
/// [`FederatedConfig::compression`](crate::FederatedConfig::compression).
///
/// Whatever the mode, the server decodes the payload **before**
/// aggregation, so metering, faults, and aggregation all see the same
/// bytes that crossed the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CompressionMode {
    /// Full-precision binary wire format (`EVFD`); decode is bit-exact,
    /// so results are identical to an uncompressed run.
    #[default]
    None,
    /// 8-bit uniform quantization per tensor (`EVQ8`), ~8x smaller with
    /// round-trip error bounded by half a quantization step.
    Quant8,
    /// Sparse top-k delta against the round's broadcast global (`EVSK`):
    /// only the `k` largest-magnitude per-tensor coordinate changes are
    /// transmitted; the server reconstructs `global + delta`.
    TopKDelta {
        /// Coordinates kept per tensor (≥ 1).
        k: usize,
    },
}

impl std::fmt::Display for CompressionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressionMode::None => write!(f, "none"),
            CompressionMode::Quant8 => write!(f, "quant8"),
            CompressionMode::TopKDelta { k } => write!(f, "topk{k}"),
        }
    }
}

/// One weight tensor quantized to 8 bits.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QuantizedTensor {
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    /// Minimum *finite* value of the original tensor (0.0 when none).
    pub(crate) min: f64,
    /// Quantization step ((max - min) / 255 over finite values).
    pub(crate) step: f64,
    /// Row-major quantized codes (non-finite positions carry code 0).
    pub(crate) codes: Vec<u8>,
    /// Flat indices of non-finite values, strictly increasing.
    #[serde(default)]
    pub(crate) special_idx: Vec<u32>,
    /// The non-finite values themselves, aligned with `special_idx`.
    #[serde(default)]
    pub(crate) special_val: Vec<f64>,
}

impl QuantizedTensor {
    /// Quantizes a tensor: each finite value maps to the nearest of 256
    /// levels spanning the finite `[min, max]`; non-finite values are
    /// recorded verbatim (see the module docs) and never poison the range.
    ///
    /// The range fold and code math live in the shared
    /// [`evfad_tensor::quant::QuantRange`] helper — the same fold the int8
    /// inference lane uses — so the wire format and the scoring path can
    /// never diverge on rounding rules.
    pub fn quantize(m: &Matrix) -> Self {
        let mut out = Self::default();
        Self::quantize_into(m, &mut out);
        out
    }

    /// Quantizes `m` into `out`, reusing its code and special buffers —
    /// identical output to [`QuantizedTensor::quantize`] (which delegates
    /// here), but a warm caller pays zero allocations per tensor.
    pub fn quantize_into(m: &Matrix, out: &mut Self) {
        let range = QuantRange::from_values(m.as_slice());
        let Self {
            rows,
            cols,
            min,
            step,
            codes,
            special_idx,
            special_val,
        } = out;
        *rows = m.rows();
        *cols = m.cols();
        *min = range.min;
        *step = range.step;
        codes.clear();
        special_idx.clear();
        special_val.clear();
        codes.extend(m.as_slice().iter().enumerate().map(|(i, &v)| {
            if !v.is_finite() {
                special_idx.push(i as u32);
                special_val.push(v);
                0
            } else {
                range.encode(v)
            }
        }));
    }

    /// The shared-range view of this tensor's header fields.
    fn range(&self) -> QuantRange {
        QuantRange {
            min: self.min,
            step: self.step,
        }
    }

    /// Reconstructs the (lossy) tensor. Non-finite values come back
    /// bit-for-bit.
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        self.dequantize_into(&mut out);
        out
    }

    /// Reconstructs the tensor into `out`, reusing its buffer when the
    /// shape already matches — identical output to
    /// [`QuantizedTensor::dequantize`] (which delegates here), but a warm
    /// caller pays zero allocations per tensor.
    pub fn dequantize_into(&self, out: &mut Matrix) {
        if out.shape() != (self.rows, self.cols) {
            *out = Matrix::zeros(self.rows, self.cols);
        }
        let range = self.range();
        let data = out.as_mut_slice();
        for (slot, &c) in data.iter_mut().zip(&self.codes) {
            *slot = range.decode(c);
        }
        for (&i, &v) in self.special_idx.iter().zip(&self.special_val) {
            data[i as usize] = v;
        }
    }

    /// Worst-case absolute reconstruction error over finite values (half a
    /// step; non-finite values are exact).
    pub fn max_error(&self) -> f64 {
        self.range().max_error()
    }

    /// Payload size in bytes — exactly the per-tensor record size of the
    /// `EVQ8` wire format (shape + range header, one byte per code, twelve
    /// per verbatim non-finite value).
    pub fn byte_size(&self) -> usize {
        4 + 4 + 8 + 8 + 4 + self.codes.len() + 12 * self.special_idx.len()
    }

    /// Number of non-finite values transmitted verbatim.
    pub fn special_count(&self) -> usize {
        self.special_idx.len()
    }
}

/// A whole model update quantized tensor-by-tensor.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QuantizedUpdate {
    pub(crate) tensors: Vec<QuantizedTensor>,
}

impl QuantizedUpdate {
    /// Quantizes every tensor of a weight vector.
    ///
    /// # Examples
    ///
    /// ```
    /// use evfad_federated::compression::QuantizedUpdate;
    /// use evfad_tensor::Matrix;
    ///
    /// let weights = vec![Matrix::from_fn(10, 10, |i, j| (i as f64 - j as f64) * 0.01)];
    /// let q = QuantizedUpdate::quantize(&weights);
    /// let restored = q.dequantize();
    /// assert_eq!(restored[0].shape(), (10, 10));
    /// assert!(q.byte_size() < 200);
    /// ```
    pub fn quantize(weights: &[Matrix]) -> Self {
        Self {
            tensors: weights.iter().map(QuantizedTensor::quantize).collect(),
        }
    }

    /// Quantizes every tensor into `out`, reusing its nested buffers —
    /// identical output to [`QuantizedUpdate::quantize`], but zero
    /// allocations once `out` has seen the model's shapes. This is the
    /// warm-round encode path: the engine, the socket client, and the
    /// scale engine hold one `QuantizedUpdate` scratch per worker and
    /// re-fill it every round.
    pub fn quantize_into(weights: &[Matrix], out: &mut Self) {
        out.tensors.resize_with(weights.len(), Default::default);
        for (m, t) in weights.iter().zip(&mut out.tensors) {
            QuantizedTensor::quantize_into(m, t);
        }
    }

    /// Reconstructs the weight vector.
    pub fn dequantize(&self) -> Vec<Matrix> {
        self.tensors
            .iter()
            .map(QuantizedTensor::dequantize)
            .collect()
    }

    /// Reconstructs the weight vector into `out`, reusing same-shaped
    /// buffers — identical output to [`QuantizedUpdate::dequantize`];
    /// zero allocations when `out` already holds matching shapes.
    pub fn dequantize_into(&self, out: &mut Vec<Matrix>) {
        out.truncate(self.tensors.len());
        for (i, t) in self.tensors.iter().enumerate() {
            match out.get_mut(i) {
                Some(m) => t.dequantize_into(m),
                None => out.push(t.dequantize()),
            }
        }
    }

    /// Total payload bytes (sum of per-tensor records, excluding the
    /// 10-byte blob header of [`wire::encode_quantized`]).
    ///
    /// [`wire::encode_quantized`]: crate::wire::encode_quantized
    pub fn byte_size(&self) -> usize {
        self.tensors.iter().map(QuantizedTensor::byte_size).sum()
    }

    /// Compression ratio versus shipping raw `f64` values.
    pub fn compression_ratio(&self) -> f64 {
        let raw: usize = self.tensors.iter().map(|t| t.codes.len() * 8).sum();
        raw as f64 / self.byte_size() as f64
    }
}

/// One tensor's sparse delta: the changed coordinates only.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseTensor {
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    /// Flat (row-major) indices of transmitted coordinates, strictly
    /// increasing.
    pub(crate) indices: Vec<u32>,
    /// Delta values, aligned with `indices`.
    pub(crate) values: Vec<f64>,
}

impl SparseTensor {
    /// Per-tensor `EVSK` record size in bytes.
    pub fn byte_size(&self) -> usize {
        4 + 4 + 4 + 12 * self.indices.len()
    }
}

/// A whole model update as sparse top-k deltas against a base (the round's
/// broadcast global weights).
///
/// Selection is deterministic: per tensor, the `k` largest-|delta|
/// coordinates win, ties broken by lower flat index; exact-zero deltas are
/// never transmitted (reconstruction is unchanged without them). A NaN or
/// ±∞ delta counts as infinitely large — corruption is the *most* important
/// thing to transmit faithfully, so poisoned coordinates always make the
/// cut and reach the aggregator unmodified.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseDelta {
    pub(crate) tensors: Vec<SparseTensor>,
}

impl SparseDelta {
    /// Builds the top-`k`-per-tensor delta `update - base`.
    ///
    /// # Panics
    ///
    /// Panics if `update` and `base` differ in tensor count or shapes —
    /// the simulation guarantees both come from the same architecture.
    pub fn top_k(update: &[Matrix], base: &[Matrix], k: usize) -> Self {
        let mut out = Self::default();
        let mut picked = Vec::new();
        Self::top_k_into(update, base, k, &mut picked, &mut out);
        out
    }

    /// Builds the top-`k` delta into `out`, reusing its index/value buffers
    /// and the caller's `picked` selection scratch — identical output to
    /// [`SparseDelta::top_k`] (which delegates here; the selection sorts
    /// are unstable but the comparators are total orders over distinct
    /// indices, so the result is the same), with zero allocations once the
    /// buffers have seen the model's density.
    ///
    /// # Panics
    ///
    /// Panics if `update` and `base` differ in tensor count or shapes.
    pub fn top_k_into(
        update: &[Matrix],
        base: &[Matrix],
        k: usize,
        picked: &mut Vec<(u32, f64)>,
        out: &mut Self,
    ) {
        assert_eq!(update.len(), base.len(), "sparse delta tensor count");
        out.tensors.resize_with(update.len(), Default::default);
        for ((u, b), t) in update.iter().zip(base).zip(&mut out.tensors) {
            assert_eq!(u.shape(), b.shape(), "sparse delta tensor shape");
            picked.clear();
            picked.extend(
                u.as_slice()
                    .iter()
                    .zip(b.as_slice())
                    .enumerate()
                    .filter_map(|(i, (&uv, &bv))| {
                        let d = uv - bv;
                        // `d != 0.0` keeps NaN (NaN != 0.0) and ±∞.
                        if d != 0.0 {
                            Some((i as u32, d))
                        } else {
                            None
                        }
                    }),
            );
            if picked.len() > k {
                let magnitude = |d: f64| if d.is_nan() { f64::INFINITY } else { d.abs() };
                picked.sort_unstable_by(|a, b| {
                    magnitude(b.1)
                        .partial_cmp(&magnitude(a.1))
                        .expect("magnitudes are never NaN")
                        .then(a.0.cmp(&b.0))
                });
                picked.truncate(k);
                picked.sort_unstable_by_key(|&(i, _)| i);
            }
            t.rows = u.rows();
            t.cols = u.cols();
            t.indices.clear();
            t.values.clear();
            t.indices.extend(picked.iter().map(|&(i, _)| i));
            t.values.extend(picked.iter().map(|&(_, v)| v));
        }
    }

    /// Reconstructs `base + delta`.
    ///
    /// # Panics
    ///
    /// Panics if `base` does not match the recorded shapes.
    pub fn apply(&self, base: &[Matrix]) -> Vec<Matrix> {
        let mut out = Vec::with_capacity(base.len());
        self.apply_into(base, &mut out);
        out
    }

    /// Reconstructs `base + delta` into `out`, reusing its matrices —
    /// identical output to [`SparseDelta::apply`] (which delegates here),
    /// but a warm caller whose `out` already holds the model's shapes pays
    /// a memcpy per tensor instead of a full base clone per update.
    ///
    /// # Panics
    ///
    /// Panics if `base` does not match the recorded shapes.
    pub fn apply_into(&self, base: &[Matrix], out: &mut Vec<Matrix>) {
        assert_eq!(self.tensors.len(), base.len(), "sparse apply tensor count");
        out.truncate(self.tensors.len());
        for (i, (t, b)) in self.tensors.iter().zip(base).enumerate() {
            assert_eq!((t.rows, t.cols), b.shape(), "sparse apply tensor shape");
            match out.get_mut(i) {
                Some(m) if m.shape() == b.shape() => {
                    m.as_mut_slice().copy_from_slice(b.as_slice());
                }
                Some(m) => *m = b.clone(),
                None => out.push(b.clone()),
            }
            let data = out[i].as_mut_slice();
            for (&idx, &v) in t.indices.iter().zip(&t.values) {
                data[idx as usize] += v;
            }
        }
    }

    /// Total transmitted coordinates across all tensors.
    pub fn nnz(&self) -> usize {
        self.tensors.iter().map(|t| t.indices.len()).sum()
    }

    /// Total payload bytes (sum of per-tensor records, excluding the
    /// 10-byte blob header of [`wire::encode_sparse`]).
    ///
    /// [`wire::encode_sparse`]: crate::wire::encode_sparse
    pub fn byte_size(&self) -> usize {
        self.tensors.iter().map(SparseTensor::byte_size).sum()
    }
}

/// Caller-owned scratch for the allocation-free encode path.
///
/// Holds the reusable compressed representations the `*_into` codec entry
/// points fill. One `CodecScratch` lives per round loop, socket client, or
/// scale-engine worker; after the first (cold) round every re-encode
/// reuses the buffers, so warm-round encoding performs zero codec
/// allocations — the comms bench gate pins this.
#[derive(Debug, Clone, Default)]
pub struct CodecScratch {
    /// Reused quantized representation (per-tensor code + special buffers).
    pub quant: QuantizedUpdate,
    /// Reused sparse top-k representation (per-tensor index/value buffers).
    pub sparse: SparseDelta,
    /// Reused top-k selection buffer.
    pub picked: Vec<(u32, f64)>,
}

impl CodecScratch {
    /// Encodes `weights` under `mode` into the scratch representation and
    /// returns the exact wire payload byte length (`encode_quantized` /
    /// `encode_sparse` produce exactly this many bytes — pinned by the
    /// wire tests). `global` is the delta base for
    /// [`CompressionMode::TopKDelta`]; [`CompressionMode::None`] is pure
    /// shape arithmetic and leaves the scratch untouched.
    pub fn encoded_len(
        &mut self,
        mode: CompressionMode,
        weights: &[Matrix],
        global: &[Matrix],
    ) -> usize {
        match mode {
            CompressionMode::None => crate::wire::encoded_size(weights),
            CompressionMode::Quant8 => {
                QuantizedUpdate::quantize_into(weights, &mut self.quant);
                crate::wire::quantized_encoded_size(&self.quant)
            }
            CompressionMode::TopKDelta { k } => {
                SparseDelta::top_k_into(weights, global, k, &mut self.picked, &mut self.sparse);
                crate::wire::sparse_encoded_size(&self.sparse)
            }
        }
    }

    /// Replaces `weights` with the server-side decode of the payload last
    /// encoded by [`CodecScratch::encoded_len`] under the same `mode`,
    /// reusing the existing matrix buffers. A no-op for
    /// [`CompressionMode::None`]: the `EVFD` round-trip is bitwise-exact,
    /// so the raw weights *are* the decoded payload.
    pub fn decode_into(&self, mode: CompressionMode, global: &[Matrix], weights: &mut Vec<Matrix>) {
        match mode {
            CompressionMode::None => {}
            CompressionMode::Quant8 => self.quant.dequantize_into(weights),
            CompressionMode::TopKDelta { .. } => self.sparse.apply_into(global, weights),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_error_is_bounded_by_half_step() {
        let m = Matrix::from_fn(20, 20, |i, j| ((i * 31 + j * 7) % 100) as f64 * 0.013 - 0.5);
        let q = QuantizedTensor::quantize(&m);
        let back = q.dequantize();
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= q.max_error() + 1e-12);
        }
    }

    #[test]
    fn constant_tensor_is_exact() {
        let m = Matrix::filled(5, 5, 3.25);
        let q = QuantizedTensor::quantize(&m);
        assert_eq!(q.dequantize(), m);
        assert_eq!(q.max_error(), 0.0);
    }

    #[test]
    fn extremes_are_exact() {
        let m = Matrix::from_rows(&[vec![-2.0, 0.1, 7.0]]);
        let back = QuantizedTensor::quantize(&m).dequantize();
        assert!((back[(0, 0)] + 2.0).abs() < 1e-12);
        assert!((back[(0, 2)] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn nan_values_round_trip_exactly() {
        let m = Matrix::from_rows(&[vec![1.0, f64::NAN, -3.0, f64::NAN]]);
        let q = QuantizedTensor::quantize(&m);
        assert_eq!(q.special_count(), 2);
        // The range fold ignored the NaNs: finite values stay exact at the
        // extremes.
        let back = q.dequantize();
        assert!((back[(0, 0)] - 1.0).abs() < 1e-12);
        assert!(back[(0, 1)].is_nan());
        assert!((back[(0, 2)] + 3.0).abs() < 1e-12);
        assert!(back[(0, 3)].is_nan());
    }

    #[test]
    fn nan_flood_round_trips_without_garbage() {
        let m = Matrix::filled(6, 5, f64::NAN);
        let q = QuantizedTensor::quantize(&m);
        assert_eq!(q.special_count(), 30);
        assert_eq!(q.max_error(), 0.0, "step must not be NaN-poisoned");
        let back = q.dequantize();
        assert!(back.as_slice().iter().all(|v| v.is_nan()));
    }

    #[test]
    fn infinities_round_trip_exactly() {
        let m = Matrix::from_rows(&[vec![f64::INFINITY, 0.5, f64::NEG_INFINITY]]);
        let back = QuantizedTensor::quantize(&m).dequantize();
        assert_eq!(back[(0, 0)], f64::INFINITY);
        assert!((back[(0, 1)] - 0.5).abs() < 1e-12);
        assert_eq!(back[(0, 2)], f64::NEG_INFINITY);
    }

    #[test]
    fn update_round_trip_preserves_shapes() {
        let weights = vec![Matrix::zeros(3, 4), Matrix::ones(1, 4), Matrix::identity(2)];
        let q = QuantizedUpdate::quantize(&weights);
        let back = q.dequantize();
        assert_eq!(back.len(), 3);
        assert_eq!(back[0].shape(), (3, 4));
        assert_eq!(back[2], Matrix::identity(2));
    }

    #[test]
    fn compression_ratio_near_eight() {
        let weights = vec![Matrix::from_fn(100, 100, |i, j| (i + j) as f64 * 0.001)];
        let q = QuantizedUpdate::quantize(&weights);
        let ratio = q.compression_ratio();
        assert!(ratio > 7.0 && ratio <= 8.0, "ratio {ratio}");
    }

    #[test]
    fn quantized_model_still_predicts_close() {
        use evfad_nn::{Activation, Dense, Lstm, Sequential};
        let mut model = Sequential::new(5)
            .with(Lstm::new(1, 8, false))
            .with(Dense::new(8, 1, Activation::Linear));
        let x = vec![Matrix::column_vector(&[0.2, 0.4, 0.1, 0.8])];
        let exact = model.predict(&x)[0][(0, 0)];
        let q = QuantizedUpdate::quantize(&model.weights());
        model.set_weights(&q.dequantize()).expect("same shapes");
        let approx = model.predict(&x)[0][(0, 0)];
        assert!(
            (exact - approx).abs() < 0.05,
            "quantization moved prediction too far: {exact} vs {approx}"
        );
    }

    #[test]
    fn serde_round_trip() {
        let weights = vec![Matrix::from_fn(4, 4, |i, j| (i * j) as f64 * 0.1)];
        let q = QuantizedUpdate::quantize(&weights);
        let json = serde_json::to_string(&q).unwrap();
        let back: QuantizedUpdate = serde_json::from_str(&json).unwrap();
        assert_eq!(q, back);
    }

    fn base_and_update() -> (Vec<Matrix>, Vec<Matrix>) {
        let base = vec![
            Matrix::from_fn(4, 5, |i, j| (i as f64) * 0.3 - (j as f64) * 0.1),
            Matrix::row_vector(&[1.0, -2.0, 0.25]),
        ];
        let mut update = base.clone();
        // Perturb a scattered handful of coordinates with distinct
        // magnitudes so top-k selection is unambiguous.
        update[0].as_mut_slice()[3] += 0.9;
        update[0].as_mut_slice()[7] -= 0.5;
        update[0].as_mut_slice()[12] += 0.1;
        update[1].as_mut_slice()[1] += 2.0;
        (base, update)
    }

    #[test]
    fn top_k_keeps_the_largest_deltas() {
        let (base, update) = base_and_update();
        let d = SparseDelta::top_k(&update, &base, 2);
        // Tensor 0 has 3 changed coordinates; only the 2 largest survive.
        assert_eq!(d.tensors[0].indices, vec![3, 7]);
        assert_eq!(d.tensors[1].indices, vec![1]);
        assert_eq!(d.nnz(), 3);
    }

    #[test]
    fn apply_reconstructs_base_plus_delta() {
        let (base, update) = base_and_update();
        let d = SparseDelta::top_k(&update, &base, 16);
        // k large enough: every change transmitted, reconstruction exact.
        let back = d.apply(&base);
        for (a, b) in back.iter().zip(&update) {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn unchanged_coordinates_cost_nothing() {
        let base = vec![Matrix::from_fn(10, 10, |i, j| (i + j) as f64)];
        let d = SparseDelta::top_k(&base, &base, 50);
        assert_eq!(d.nnz(), 0);
        assert_eq!(d.apply(&base), base);
    }

    #[test]
    fn nan_deltas_always_make_the_cut() {
        let base = vec![Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64)];
        let mut update = base.clone();
        for v in update[0].as_mut_slice().iter_mut() {
            *v += 100.0;
        }
        update[0].as_mut_slice()[4] = f64::NAN;
        let d = SparseDelta::top_k(&update, &base, 1);
        assert_eq!(d.tensors[0].indices, vec![4]);
        let back = d.apply(&base);
        assert!(back[0].as_slice()[4].is_nan());
    }

    #[test]
    fn top_k_selection_is_deterministic_under_ties() {
        let base = vec![Matrix::zeros(1, 6)];
        let mut update = base.clone();
        for v in update[0].as_mut_slice().iter_mut() {
            *v = 1.0; // all deltas tie
        }
        let d = SparseDelta::top_k(&update, &base, 3);
        assert_eq!(
            d.tensors[0].indices,
            vec![0, 1, 2],
            "lowest indices win ties"
        );
    }

    #[test]
    fn quantize_into_matches_quantize_and_reuses_buffers() {
        let first = vec![
            Matrix::from_fn(6, 7, |i, j| (i as f64) * 0.3 - (j as f64) * 0.11),
            Matrix::row_vector(&[1.0, f64::NAN, -2.0, f64::INFINITY]),
        ];
        let second = vec![
            Matrix::from_fn(6, 7, |i, j| (j as f64) * 0.2 - (i as f64) * 0.07),
            Matrix::row_vector(&[f64::NEG_INFINITY, 0.5, 0.25, -1.0]),
        ];
        // NaN specials defeat derived equality; the wire encoding stores
        // raw f64 bits, so byte equality is the stronger check anyway.
        let bytes = crate::wire::encode_quantized;
        let mut scratch = QuantizedUpdate::default();
        QuantizedUpdate::quantize_into(&first, &mut scratch);
        assert_eq!(bytes(&scratch), bytes(&QuantizedUpdate::quantize(&first)));
        let code_ptrs: Vec<*const u8> = scratch.tensors.iter().map(|t| t.codes.as_ptr()).collect();
        QuantizedUpdate::quantize_into(&second, &mut scratch);
        assert_eq!(bytes(&scratch), bytes(&QuantizedUpdate::quantize(&second)));
        // Warm re-encode of a same-shaped model keeps the buffers.
        for (t, &p) in scratch.tensors.iter().zip(&code_ptrs) {
            assert_eq!(t.codes.as_ptr(), p, "codes buffer was reallocated");
        }
    }

    #[test]
    fn top_k_into_matches_top_k_and_reuses_buffers() {
        let (base, update) = base_and_update();
        let mut picked = Vec::new();
        let mut scratch = SparseDelta::default();
        for k in [1, 2, 3, 16] {
            SparseDelta::top_k_into(&update, &base, k, &mut picked, &mut scratch);
            assert_eq!(scratch, SparseDelta::top_k(&update, &base, k), "k = {k}");
        }
        // NaN floods and exact ties go through the same unstable sorts.
        let tie_base = vec![Matrix::zeros(1, 6)];
        let mut tie_update = tie_base.clone();
        for v in tie_update[0].as_mut_slice().iter_mut() {
            *v = 1.0;
        }
        tie_update[0].as_mut_slice()[4] = f64::NAN;
        SparseDelta::top_k_into(&tie_update, &tie_base, 3, &mut picked, &mut scratch);
        let fresh = SparseDelta::top_k(&tie_update, &tie_base, 3);
        assert_eq!(scratch.tensors[0].indices, fresh.tensors[0].indices);
        assert_eq!(
            scratch.tensors[0]
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            fresh.tensors[0]
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn apply_into_matches_apply_without_fresh_clones() {
        let (base, update) = base_and_update();
        let d = SparseDelta::top_k(&update, &base, 16);
        let mut out = Vec::new();
        d.apply_into(&base, &mut out);
        assert_eq!(out, d.apply(&base));
        // Warm reuse: same shapes, zero matrix allocations.
        let before = evfad_tensor::alloc_stats();
        d.apply_into(&base, &mut out);
        let delta = evfad_tensor::alloc_stats().since(&before);
        assert_eq!(delta.matrices, 0, "warm apply_into allocated");
        assert_eq!(out, d.apply(&base));
    }

    #[test]
    fn compression_mode_serde_round_trips_and_defaults() {
        for mode in [
            CompressionMode::None,
            CompressionMode::Quant8,
            CompressionMode::TopKDelta { k: 32 },
        ] {
            let json = serde_json::to_string(&mode).unwrap();
            let back: CompressionMode = serde_json::from_str(&json).unwrap();
            assert_eq!(mode, back);
        }
        assert_eq!(CompressionMode::default(), CompressionMode::None);
    }
}
