//! Property-based tests for TCP frame reassembly.
//!
//! The transport's correctness rests on one invariant: however the
//! kernel fragments or coalesces the byte stream, [`FrameDecoder`]
//! yields exactly the payload sequence that was framed, in order. The
//! strategies here cover chunk sizes from 1 byte (every header split
//! position) up to 4096 bytes (several frames coalesced per read), with
//! payloads from empty to multi-KiB including real EVMS envelopes.

use evfad_federated::framing::{encode_frame, frame_size, FrameDecoder, FRAME_HEADER_BYTES};
use evfad_federated::wire::{self, Message, WireError};
use evfad_tensor::Matrix;
use proptest::prelude::*;

use bytes::BytesMut;

/// Splits `stream` into chunks whose sizes cycle through `cuts`
/// (clamped to 1..=4096), feeds them one at a time, and drains every
/// completed frame after each feed.
fn reassemble(stream: &[u8], cuts: &[usize]) -> Result<Vec<Vec<u8>>, WireError> {
    let mut dec = FrameDecoder::new();
    let mut out = Vec::new();
    let mut offset = 0;
    let mut i = 0;
    while offset < stream.len() {
        let take = cuts[i % cuts.len()]
            .clamp(1, 4096)
            .min(stream.len() - offset);
        i += 1;
        dec.feed(&stream[offset..offset + take]);
        offset += take;
        while let Some(frame) = dec.next_frame()? {
            out.push(frame.to_vec());
        }
    }
    assert_eq!(dec.buffered(), 0, "stream fully consumed");
    Ok(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary payload sequences survive arbitrary fragmentation:
    /// chunk sizes 1..=4096, including every possible mid-header split.
    #[test]
    fn random_fragmentation_reconstructs_the_exact_sequence(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..600), 0..8),
        cuts in prop::collection::vec(1usize..=4096, 1..12),
    ) {
        let mut buf = BytesMut::new();
        for p in &payloads {
            encode_frame(&mut buf, p);
        }
        prop_assert_eq!(
            buf.len(),
            payloads.iter().map(|p| frame_size(p.len())).sum::<usize>()
        );
        let out = reassemble(&buf, &cuts).expect("well-formed stream");
        prop_assert_eq!(out, payloads);
    }

    /// Byte-at-a-time delivery — the worst case, hitting every split
    /// point inside every header — still reconstructs exactly.
    #[test]
    fn one_byte_chunks_hit_every_header_split(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..6),
    ) {
        let mut buf = BytesMut::new();
        for p in &payloads {
            encode_frame(&mut buf, p);
        }
        let out = reassemble(&buf, &[1]).expect("well-formed stream");
        prop_assert_eq!(out, payloads);
    }

    /// Real protocol traffic: framed EVMS envelopes carrying EVFD blobs
    /// cross arbitrary fragmentation and decode back to the same
    /// message sequence.
    #[test]
    fn framed_envelopes_survive_fragmentation(
        rounds in prop::collection::vec(0u32..100, 1..5),
        cuts in prop::collection::vec(1usize..=4096, 1..8),
        dims in (1usize..4, 1usize..4),
    ) {
        let weights = vec![Matrix::from_vec(
            dims.0,
            dims.1,
            (0..dims.0 * dims.1).map(|i| i as f64 * 0.5 - 1.0).collect(),
        )];
        let global = wire::encode_weights(&weights);
        let msgs: Vec<Message> = rounds
            .iter()
            .map(|&round| Message::Broadcast { round, global: global.clone() })
            .collect();
        let mut stream = BytesMut::new();
        let mut scratch = BytesMut::new();
        for msg in &msgs {
            wire::encode_message(&mut scratch, msg);
            encode_frame(&mut stream, &scratch);
        }
        let out = reassemble(&stream, &cuts).expect("well-formed stream");
        let decoded: Vec<Message> = out
            .iter()
            .map(|payload| wire::decode_message(payload).expect("framed envelope"))
            .collect();
        prop_assert_eq!(decoded, msgs);
    }

    /// Malformed input never panics: random garbage either yields
    /// garbage-length frames (consumed quietly) or a typed oversize
    /// error — the decoder must survive both without panicking.
    #[test]
    fn garbage_streams_never_panic(
        garbage in prop::collection::vec(any::<u8>(), 0..2048),
        cuts in prop::collection::vec(1usize..=4096, 1..8),
    ) {
        let mut dec = FrameDecoder::new();
        let mut offset = 0;
        let mut i = 0;
        while offset < garbage.len() {
            let take = cuts[i % cuts.len()].min(garbage.len() - offset);
            i += 1;
            dec.feed(&garbage[offset..offset + take]);
            offset += take;
            loop {
                match dec.next_frame() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(WireError::OversizedFrame { declared }) => {
                        // Poisoned stream: error is sticky, nothing was
                        // consumed, and the declared length really is
                        // over the bound.
                        prop_assert!(declared > evfad_federated::framing::MAX_FRAME_BYTES);
                        let sticky = matches!(
                            dec.next_frame(),
                            Err(WireError::OversizedFrame { .. })
                        );
                        prop_assert!(sticky);
                        return Ok(());
                    }
                    Err(other) => panic!("unexpected error {other:?}"),
                }
            }
        }
    }

    /// A truncated final frame is reported as pending, with `needed`
    /// counting down exactly to completion.
    #[test]
    fn needed_walks_to_completion(
        payload in prop::collection::vec(any::<u8>(), 0..512),
        cut_fraction in 0.0f64..1.0,
    ) {
        let mut buf = BytesMut::new();
        encode_frame(&mut buf, &payload);
        let cut = ((buf.len() as f64) * cut_fraction) as usize;
        let mut dec = FrameDecoder::new();
        dec.feed(&buf[..cut]);
        if cut < buf.len() {
            prop_assert_eq!(dec.next_frame().expect("prefix is pending, not an error"), None);
            let needed = dec.needed();
            prop_assert!(needed >= 1);
            // `needed` promises progress, never overshoot...
            prop_assert!(cut + needed <= buf.len());
            if cut >= FRAME_HEADER_BYTES {
                // ...and once the header is known, it is exact.
                prop_assert_eq!(cut + needed, buf.len());
            }
        }
        dec.feed(&buf[cut..]);
        prop_assert_eq!(dec.needed(), 0);
        let frame = dec.next_frame().unwrap().expect("complete frame");
        prop_assert_eq!(frame.to_vec(), payload);
    }
}
