//! Federated rounds must reuse layer workspaces across rounds.
//!
//! A `FedClient` keeps its model (and therefore every layer's scratch arena)
//! alive between rounds; receiving fresh global weights only overwrites
//! parameter tensors. After a warm-up round, later rounds on same-shaped
//! batches must not allocate more matrices than the warm round did — the
//! T- and batch-proportional buffers all live in the reused workspaces.
//!
//! Reads the process-global counters from `evfad_tensor::alloc_stats()`, so
//! this lives in its own integration-test binary.

use evfad_federated::FedClient;
use evfad_nn::{forecaster_model, Sample, TrainConfig};
use evfad_tensor::{alloc_stats, Matrix};

fn client_samples(offset: usize) -> Vec<Sample> {
    (0..16)
        .map(|i| {
            let xs: Vec<f64> = (0..12)
                .map(|t| ((offset + i + t) as f64 * 0.29).sin())
                .collect();
            let y = ((offset + i + 12) as f64 * 0.29).sin();
            Sample::new(Matrix::column_vector(&xs), Matrix::from_vec(1, 1, vec![y]))
        })
        .collect()
}

#[test]
fn later_rounds_allocate_no_more_than_the_first_warm_round() {
    let global = forecaster_model(16, 3);
    let mut client = FedClient::new("c0", global.clone(), client_samples(0));
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: 8,
        shuffle: false,
        ..TrainConfig::default()
    };
    let global_weights = global.weights();

    // Round 0 sizes every workspace buffer (cold).
    client.receive_global(&global_weights).unwrap();
    client.train_local(&cfg).unwrap();

    // Rounds 1..: the same shapes flow through; buffers must be reused.
    let mut per_round = Vec::new();
    for _ in 0..3 {
        client.receive_global(&global_weights).unwrap();
        let before = alloc_stats();
        client.train_local(&cfg).unwrap();
        per_round.push(alloc_stats().since(&before).matrices);
    }
    assert_eq!(
        per_round[0], per_round[1],
        "warm federated rounds drifted in allocations: {per_round:?}"
    );
    assert_eq!(
        per_round[1], per_round[2],
        "warm federated rounds drifted in allocations: {per_round:?}"
    );
}
