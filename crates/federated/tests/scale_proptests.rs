//! Property-based tests for the scale-out machinery: the per-round client
//! sampler and the streaming aggregation fold.
//!
//! Three invariant families:
//!
//! 1. [`Scheduler::sample`] returns a sorted, duplicate-free selection of
//!    exactly `take_count(n)` indices, identical for identical
//!    `(seed, round, n)` — up to populations of 100k;
//! 2. streaming FedAvg ([`Aggregator::streaming`]) is **bitwise**
//!    identical to the batch rule over arbitrary update sets: same fold,
//!    same order, same bits;
//! 3. the parallel edge fan-out ([`ScaleConfig::threads`]) reproduces the
//!    serial run byte for byte at threads 1/2/4/8 — checksum, traffic,
//!    and round stats — over random populations, edge counts, and
//!    wildcard fault plans on both tiers.

use evfad_federated::faults::{Corruption, FaultKind, FaultPlan, RoundSelector};
use evfad_federated::scale::{ScaleConfig, ScaleEngine, ScaleRoundStats};
use evfad_federated::{Aggregator, LocalUpdate, Scheduler};
use evfad_tensor::Matrix;
use proptest::prelude::*;
use std::time::Duration;

/// Random update set: 1–12 clients sharing one `rows x cols` shape, with
/// finite weights and sample counts spanning zero to paper-sized datasets.
fn updates_strategy() -> impl Strategy<Value = Vec<LocalUpdate>> {
    // Draw max-size pools up front (12 clients x 4x4 values) and slice to
    // the drawn shape — the vendored proptest has no `prop_flat_map`.
    (
        (1usize..5, 1usize..5, 1usize..13),
        prop::collection::vec(-1e3f64..1e3, 12 * 16),
        prop::collection::vec(0usize..10_000, 12),
    )
        .prop_map(|((rows, cols, clients), pool, samples)| {
            (0..clients)
                .map(|i| {
                    let vals = pool[i * rows * cols..(i + 1) * rows * cols].to_vec();
                    LocalUpdate {
                        client_id: format!("c{i:03}"),
                        weights: vec![Matrix::from_vec(rows, cols, vals)],
                        sample_count: samples[i],
                        train_loss: 0.0,
                        duration: Duration::ZERO,
                        simulated_extra_seconds: 0.0,
                    }
                })
                .collect()
        })
}

/// A small paper-shaped weight template for scale-engine property runs.
fn tiny_template() -> Vec<Matrix> {
    vec![
        Matrix::from_vec(3, 4, (0..12).map(|i| 0.05 * i as f64 - 0.3).collect()),
        Matrix::from_vec(4, 1, vec![0.1, -0.2, 0.3, -0.4]),
    ]
}

/// A wildcard chaos schedule: every fault kind as a population-level
/// probability rule, plus a timeout and a retry budget, so the fan-out is
/// exercised under drop-out, stragglers, corruption, and retries at once.
fn wildcard_plan(
    seed: u64,
    drop_p: f64,
    straggler_p: f64,
    corrupt_p: f64,
    transient_p: f64,
) -> FaultPlan {
    FaultPlan::new(seed)
        .with_rule(
            "*",
            RoundSelector::Probability { p: drop_p },
            FaultKind::DropOut,
        )
        .with_rule(
            "*",
            RoundSelector::Probability { p: straggler_p },
            FaultKind::Straggler { delay_seconds: 9.0 },
        )
        .with_rule(
            "*",
            RoundSelector::Probability { p: corrupt_p },
            FaultKind::Corrupt {
                corruption: Corruption::SignFlip,
            },
        )
        .with_rule(
            "*",
            RoundSelector::Probability { p: transient_p },
            FaultKind::Transient { failures: 1 },
        )
        .with_timeout(5.0)
        .with_retry(2, 0.5)
}

/// Round stats with the thread-dependent peak (and host wall-clock)
/// zeroed, so serial and parallel runs can be compared for equality.
fn comparable(rounds: &[ScaleRoundStats]) -> Vec<ScaleRoundStats> {
    rounds
        .iter()
        .map(|r| ScaleRoundStats {
            peak_state_bytes: 0,
            duration: Duration::ZERO,
            ..r.clone()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The sample is sorted, duplicate-free, in range, and exactly
    /// `take_count(n)` long — at populations up to 100k.
    #[test]
    fn sample_is_a_sorted_exact_subset(
        seed in any::<u64>(),
        round in 0usize..200,
        n in 1usize..100_001,
        participation in 0.0001f64..1.0,
    ) {
        let scheduler = Scheduler::new(participation, seed);
        let sample = scheduler.sample(round, n);
        prop_assert_eq!(sample.len(), scheduler.take_count(n));
        prop_assert!(sample.windows(2).all(|w| w[0] < w[1]),
            "sample must be strictly increasing (sorted, no duplicates)");
        prop_assert!(sample.iter().all(|&i| i < n));
    }

    /// Identical `(seed, round)` reproduces the identical sample; a
    /// different round draws a different one (overwhelmingly, for
    /// non-trivial fractions).
    #[test]
    fn sample_is_deterministic_per_seed_and_round(
        seed in any::<u64>(),
        round in 0usize..100,
        n in 100usize..100_001,
    ) {
        let scheduler = Scheduler::new(0.1, seed);
        prop_assert_eq!(scheduler.sample(round, n), scheduler.sample(round, n));
        prop_assert_eq!(
            Scheduler::new(0.1, seed).sample(round, n),
            scheduler.sample(round, n),
            "a rebuilt scheduler must agree"
        );
        prop_assert_ne!(scheduler.sample(round, n), scheduler.sample(round + 1, n));
    }

    /// Streaming FedAvg replays the batch fold bit for bit on arbitrary
    /// update sets — including degenerate all-zero-sample federations.
    #[test]
    fn streaming_fedavg_is_bitwise_identical_to_batch(updates in updates_strategy()) {
        let batch = Aggregator::FedAvg.aggregate(&updates).expect("batch");
        let total: f64 = updates.iter().map(|u| u.sample_count as f64).sum();
        let mut streaming = Aggregator::FedAvg
            .streaming(total, updates.len())
            .expect("FedAvg streams");
        for u in &updates {
            streaming.ingest(u).expect("ingest");
        }
        let streamed = streaming.finish().expect("finish");
        prop_assert_eq!(batch.len(), streamed.len());
        for (b, s) in batch.iter().zip(&streamed) {
            for (x, y) in b.as_slice().iter().zip(s.as_slice()) {
                prop_assert_eq!(x.to_bits(), y.to_bits(),
                    "streaming diverged from batch: {:e} vs {:e}", x, y);
            }
        }
    }
}

proptest! {
    // Each case is eight full engine runs (four thread counts, with and
    // without chaos), so keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The wave fan-out is bitwise identical to the serial fold at every
    /// thread count, over random populations, edge counts, and wildcard
    /// fault plans on both the client and edge tiers. The weight
    /// checksum, the traffic totals, and every round stat except the
    /// (by-design thread-dependent) peak must agree; a run that fails —
    /// e.g. `InsufficientParticipants` under heavy drop-out — must fail
    /// identically at every thread count.
    #[test]
    fn parallel_fanout_replays_serial_under_chaos(
        seed in any::<u64>(),
        clients in 20usize..200,
        edges in 1usize..9,
        rounds in 1usize..3,
        drop_p in 0.0f64..0.3,
        straggler_p in 0.0f64..0.2,
        corrupt_p in 0.0f64..0.2,
        transient_p in 0.0f64..0.2,
        edge_drop_p in 0.0f64..0.2,
        with_faults in any::<bool>(),
    ) {
        let faults = wildcard_plan(seed, drop_p, straggler_p, corrupt_p, transient_p);
        let edge_faults = FaultPlan::new(seed ^ 0xedfe).with_rule(
            "*",
            RoundSelector::Probability { p: edge_drop_p },
            FaultKind::DropOut,
        );
        let run = |threads: usize| {
            let config = ScaleConfig {
                clients,
                rounds,
                participation: 0.5,
                edges,
                threads,
                seed,
                faults: with_faults.then(|| faults.clone()),
                edge_faults: with_faults.then(|| edge_faults.clone()),
                ..ScaleConfig::default()
            };
            ScaleEngine::new(tiny_template(), config)
                .expect("valid config")
                .run()
        };
        let serial = run(1);
        for threads in [2usize, 4, 8] {
            match (&serial, &run(threads)) {
                (Ok(s), Ok(p)) => {
                    prop_assert_eq!(
                        s.weights_checksum(),
                        p.weights_checksum(),
                        "threads={} diverged from serial", threads
                    );
                    prop_assert_eq!(s.traffic, p.traffic);
                    prop_assert_eq!(comparable(&s.rounds), comparable(&p.rounds));
                }
                (Err(s), Err(p)) => prop_assert_eq!(
                    format!("{s:?}"),
                    format!("{p:?}"),
                    "threads={} failed differently", threads
                ),
                (s, p) => prop_assert!(
                    false,
                    "threads={} disagreed on success: serial {:?} vs parallel {:?}",
                    threads, s.is_ok(), p.is_ok()
                ),
            }
        }
    }
}
