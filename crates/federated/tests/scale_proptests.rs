//! Property-based tests for the scale-out machinery: the per-round client
//! sampler and the streaming aggregation fold.
//!
//! Two invariant families:
//!
//! 1. [`Scheduler::sample`] returns a sorted, duplicate-free selection of
//!    exactly `take_count(n)` indices, identical for identical
//!    `(seed, round, n)` — up to populations of 100k;
//! 2. streaming FedAvg ([`Aggregator::streaming`]) is **bitwise**
//!    identical to the batch rule over arbitrary update sets: same fold,
//!    same order, same bits.

use evfad_federated::{Aggregator, LocalUpdate, Scheduler};
use evfad_tensor::Matrix;
use proptest::prelude::*;
use std::time::Duration;

/// Random update set: 1–12 clients sharing one `rows x cols` shape, with
/// finite weights and sample counts spanning zero to paper-sized datasets.
fn updates_strategy() -> impl Strategy<Value = Vec<LocalUpdate>> {
    // Draw max-size pools up front (12 clients x 4x4 values) and slice to
    // the drawn shape — the vendored proptest has no `prop_flat_map`.
    (
        (1usize..5, 1usize..5, 1usize..13),
        prop::collection::vec(-1e3f64..1e3, 12 * 16),
        prop::collection::vec(0usize..10_000, 12),
    )
        .prop_map(|((rows, cols, clients), pool, samples)| {
            (0..clients)
                .map(|i| {
                    let vals = pool[i * rows * cols..(i + 1) * rows * cols].to_vec();
                    LocalUpdate {
                        client_id: format!("c{i:03}"),
                        weights: vec![Matrix::from_vec(rows, cols, vals)],
                        sample_count: samples[i],
                        train_loss: 0.0,
                        duration: Duration::ZERO,
                        simulated_extra_seconds: 0.0,
                    }
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The sample is sorted, duplicate-free, in range, and exactly
    /// `take_count(n)` long — at populations up to 100k.
    #[test]
    fn sample_is_a_sorted_exact_subset(
        seed in any::<u64>(),
        round in 0usize..200,
        n in 1usize..100_001,
        participation in 0.0001f64..1.0,
    ) {
        let scheduler = Scheduler::new(participation, seed);
        let sample = scheduler.sample(round, n);
        prop_assert_eq!(sample.len(), scheduler.take_count(n));
        prop_assert!(sample.windows(2).all(|w| w[0] < w[1]),
            "sample must be strictly increasing (sorted, no duplicates)");
        prop_assert!(sample.iter().all(|&i| i < n));
    }

    /// Identical `(seed, round)` reproduces the identical sample; a
    /// different round draws a different one (overwhelmingly, for
    /// non-trivial fractions).
    #[test]
    fn sample_is_deterministic_per_seed_and_round(
        seed in any::<u64>(),
        round in 0usize..100,
        n in 100usize..100_001,
    ) {
        let scheduler = Scheduler::new(0.1, seed);
        prop_assert_eq!(scheduler.sample(round, n), scheduler.sample(round, n));
        prop_assert_eq!(
            Scheduler::new(0.1, seed).sample(round, n),
            scheduler.sample(round, n),
            "a rebuilt scheduler must agree"
        );
        prop_assert_ne!(scheduler.sample(round, n), scheduler.sample(round + 1, n));
    }

    /// Streaming FedAvg replays the batch fold bit for bit on arbitrary
    /// update sets — including degenerate all-zero-sample federations.
    #[test]
    fn streaming_fedavg_is_bitwise_identical_to_batch(updates in updates_strategy()) {
        let batch = Aggregator::FedAvg.aggregate(&updates).expect("batch");
        let total: f64 = updates.iter().map(|u| u.sample_count as f64).sum();
        let mut streaming = Aggregator::FedAvg
            .streaming(total, updates.len())
            .expect("FedAvg streams");
        for u in &updates {
            streaming.ingest(u).expect("ingest");
        }
        let streamed = streaming.finish().expect("finish");
        prop_assert_eq!(batch.len(), streamed.len());
        for (b, s) in batch.iter().zip(&streamed) {
            for (x, y) in b.as_slice().iter().zip(s.as_slice()) {
                prop_assert_eq!(x.to_bits(), y.to_bits(),
                    "streaming diverged from batch: {:e} vs {:e}", x, y);
            }
        }
    }
}
