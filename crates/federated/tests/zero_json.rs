//! Regression gate: the federated round loop performs **zero** JSON
//! serialisations.
//!
//! PR 5 moved all metering onto the binary wire path (`record_bytes` plus
//! O(1) size arithmetic), so nothing inside `FederatedSimulation::run`
//! should ever touch `serde_json`. The vendored `serde_json` counts every
//! `to_string`/`to_vec` process-wide; this test lives in its own
//! integration-test binary so no parallel test can inflate the counter.

use evfad_federated::socket::SocketServerConfig;
use evfad_federated::{
    CompressionMode, FederatedConfig, FederatedSimulation, SocketClient, SocketServer,
};
use evfad_nn::{forecaster_model, Sample};
use evfad_tensor::Matrix;

fn samples(phase: f64) -> Vec<Sample> {
    (0..32)
        .map(|i| {
            let xs: Vec<f64> = (0..6)
                .map(|t| ((i + t) as f64 * 0.5 + phase).sin())
                .collect();
            Sample::new(
                Matrix::column_vector(&xs),
                Matrix::from_vec(1, 1, vec![((i + 6) as f64 * 0.5 + phase).sin()]),
            )
        })
        .collect()
}

fn run_mode(compression: CompressionMode) {
    let cfg = FederatedConfig {
        rounds: 2,
        epochs_per_round: 1,
        batch_size: 16,
        compression,
        ..FederatedConfig::default()
    };
    let mut sim = FederatedSimulation::new(forecaster_model(4, 3), cfg);
    sim.add_client("z102", samples(0.0));
    sim.add_client("z105", samples(0.8));
    sim.add_client("z108", samples(1.6));
    let before = serde_json::serialization_count();
    let out = sim.run().expect("run");
    let after = serde_json::serialization_count();
    assert_eq!(
        after - before,
        0,
        "round loop serialised JSON under {compression} — the zero-serialization comms path regressed"
    );
    assert!(out.traffic.bytes > 0, "metering still recorded real bytes");
}

#[test]
fn socket_session_is_json_free_handshake_included() {
    // The handshake used to ship `FederatedConfig` as JSON inside the
    // binary Welcome envelope; it is now the EVCF binary codec. The gate
    // covers the whole session — bind, Hello/Welcome handshake, rounds,
    // Done — from both ends, which run in this one process.
    let model = forecaster_model(4, 3);
    let cfg = FederatedConfig {
        rounds: 2,
        epochs_per_round: 1,
        batch_size: 16,
        compression: CompressionMode::Quant8,
        ..FederatedConfig::default()
    };
    let ids = vec!["z102".to_string(), "z105".to_string()];
    let before = serde_json::serialization_count();
    let mut server = SocketServer::bind(
        ("127.0.0.1", 0),
        model.clone(),
        SocketServerConfig::new(cfg, ids.clone()),
    )
    .expect("bind");
    let addr = server.local_addr();
    let clients: Vec<_> = ids
        .iter()
        .enumerate()
        .map(|(i, id)| {
            let id = id.clone();
            let model = model.clone();
            let data = samples(i as f64 * 0.8);
            std::thread::spawn(move || {
                SocketClient { time_dilation: 0.0 }.run(addr, id, model, data)
            })
        })
        .collect();
    let outcome = server.run().expect("server run");
    for c in clients {
        c.join().expect("client thread").expect("client run");
    }
    let after = serde_json::serialization_count();
    assert_eq!(
        after - before,
        0,
        "socket session serialised JSON — the binary handshake regressed"
    );
    assert!(outcome.traffic.bytes > 0);
}

#[test]
fn round_loop_is_json_free_in_every_compression_mode() {
    for mode in [
        CompressionMode::None,
        CompressionMode::Quant8,
        CompressionMode::TopKDelta { k: 16 },
    ] {
        run_mode(mode);
    }
    // Sanity-check the counter itself: a real serialisation must bump it.
    let before = serde_json::serialization_count();
    let _ = serde_json::to_string(&vec![1.0f64, 2.0]).expect("serialise");
    assert_eq!(serde_json::serialization_count() - before, 1);
}
