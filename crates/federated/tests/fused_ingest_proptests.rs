//! Property-based gate for the fused decode-into-fold path.
//!
//! `ingest_quantized` / `ingest_topk` fold coefficients straight out of
//! the encoded `EVQ8` / `EVSK` payload into the streaming accumulator.
//! The contract is **bitwise identity** with the materializing path —
//! decode the payload, reconstruct the `Vec<Matrix>`, call `ingest` — for
//! every payload the codecs can produce: random values, tie-heavy values
//! (exercising top-k's deterministic tie-breaks and shared quantization
//! codes), and NaN/±∞ floods (specials carried verbatim; results compared
//! as raw bits because `NaN != NaN`). When a rule rejects an input (e.g.
//! trimmed mean's non-finite containment budget), both paths must reject
//! it with the same error.

use evfad_federated::compression::{QuantizedUpdate, SparseDelta};
use evfad_federated::{wire, Aggregator, FederatedError, LocalUpdate};
use evfad_tensor::Matrix;
use proptest::prelude::*;
use std::time::Duration;

/// Max flat values a client needs: 3 tensors × 5×5.
const POOL: usize = 75;

fn shapes_strategy() -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0usize..6, 0usize..6), 1..4)
}

/// Per-client `(flat value pool, sample count)`, 1–3 clients sharing the
/// case's shapes.
fn clients_strategy(
    values: impl Strategy<Value = f64>,
) -> impl Strategy<Value = Vec<(Vec<f64>, usize)>> {
    prop::collection::vec((prop::collection::vec(values, POOL), 1usize..50), 1..4)
}

/// Values drawn from a coarse grid: quantization collapses them onto
/// shared codes and top-k sees many equal-magnitude deltas, so the
/// deterministic tie-break (lower flat index wins) is on the hot path.
fn tie_heavy() -> impl Strategy<Value = f64> {
    (0usize..7).prop_map(|i| [-2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0][i])
}

/// Mostly finite values with a heavy non-finite minority — up to full
/// NaN floods on small tensors. Specials travel verbatim on the wire.
fn nan_flood() -> impl Strategy<Value = f64> {
    (0usize..6, -1e3f64..1e3).prop_map(|(pick, finite)| match pick {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        _ => finite,
    })
}

fn build_weights(shapes: &[(usize, usize)], pool: &[f64]) -> Vec<Matrix> {
    let mut at = 0usize;
    shapes
        .iter()
        .map(|&(r, c)| {
            let m = Matrix::from_vec(r, c, pool[at..at + r * c].to_vec());
            at += r * c;
            m
        })
        .collect()
}

fn update(i: usize, weights: Vec<Matrix>, sample_count: usize) -> LocalUpdate {
    LocalUpdate {
        client_id: format!("c{i}"),
        weights,
        sample_count,
        train_loss: 0.0,
        duration: Duration::ZERO,
        simulated_extra_seconds: 0.0,
    }
}

/// Raw little-endian bytes of the weights — the bitwise comparator that
/// survives NaN (`NaN != NaN` defeats `==` on matrices).
fn bits(w: &[Matrix]) -> Vec<u8> {
    wire::encode_weights(w).to_vec()
}

/// Which streaming rules to pit against each other for `n` updates.
fn rules(n: usize) -> Vec<Aggregator> {
    let mut r = vec![Aggregator::FedAvg];
    if n >= 3 {
        r.push(Aggregator::TrimmedMean { trim: 1 });
    }
    r
}

fn assert_same_finish(
    fused: Result<Vec<Matrix>, FederatedError>,
    reference: Result<Vec<Matrix>, FederatedError>,
) -> Result<(), TestCaseError> {
    match (fused, reference) {
        (Ok(f), Ok(r)) => prop_assert_eq!(bits(&f), bits(&r), "fused result diverged"),
        (Err(f), Err(r)) => prop_assert_eq!(f.to_string(), r.to_string()),
        (f, r) => prop_assert!(false, "paths diverged: fused {f:?} vs reference {r:?}"),
    }
    Ok(())
}

/// Quantized: encode each client, then fold fused-from-payload vs
/// decode-then-ingest and demand identical outcomes.
fn check_quantized(
    shapes: &[(usize, usize)],
    clients: &[(Vec<f64>, usize)],
) -> Result<(), TestCaseError> {
    let total: f64 = clients.iter().map(|(_, sc)| *sc as f64).sum();
    for rule in rules(clients.len()) {
        let mut fused = rule.streaming(total, clients.len()).expect("streams");
        let mut reference = rule.streaming(total, clients.len()).expect("streams");
        for (i, (pool, sc)) in clients.iter().enumerate() {
            let weights = build_weights(shapes, pool);
            let payload = wire::encode_quantized(&QuantizedUpdate::quantize(&weights));
            let decoded = wire::decode_quantized(&payload)
                .expect("valid payload")
                .dequantize();
            fused
                .ingest_quantized(&format!("c{i}"), *sc, &payload)
                .expect("fused ingest");
            reference.ingest(&update(i, decoded, *sc)).expect("ingest");
        }
        assert_same_finish(fused.finish(), reference.finish())?;
    }
    Ok(())
}

/// Top-k: same contract against `decode_sparse(payload).apply(base)`.
fn check_topk(
    shapes: &[(usize, usize)],
    base_pool: &[f64],
    clients: &[(Vec<f64>, usize)],
    k: usize,
) -> Result<(), TestCaseError> {
    let base = build_weights(shapes, base_pool);
    let total: f64 = clients.iter().map(|(_, sc)| *sc as f64).sum();
    for rule in rules(clients.len()) {
        let mut fused = rule.streaming(total, clients.len()).expect("streams");
        let mut reference = rule.streaming(total, clients.len()).expect("streams");
        for (i, (pool, sc)) in clients.iter().enumerate() {
            let weights = build_weights(shapes, pool);
            let payload = wire::encode_sparse(&SparseDelta::top_k(&weights, &base, k));
            let decoded = wire::decode_sparse(&payload)
                .expect("valid payload")
                .apply(&base);
            fused
                .ingest_topk(&format!("c{i}"), *sc, &base, &payload)
                .expect("fused ingest");
            reference.ingest(&update(i, decoded, *sc)).expect("ingest");
        }
        assert_same_finish(fused.finish(), reference.finish())?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fused_quantized_matches_materializing_random(
        shapes in shapes_strategy(),
        clients in clients_strategy(-1e6f64..1e6),
    ) {
        check_quantized(&shapes, &clients)?;
    }

    #[test]
    fn fused_quantized_matches_materializing_tie_heavy(
        shapes in shapes_strategy(),
        clients in clients_strategy(tie_heavy()),
    ) {
        check_quantized(&shapes, &clients)?;
    }

    #[test]
    fn fused_quantized_matches_materializing_nan_flood(
        shapes in shapes_strategy(),
        clients in clients_strategy(nan_flood()),
    ) {
        check_quantized(&shapes, &clients)?;
    }

    #[test]
    fn fused_topk_matches_materializing_random(
        shapes in shapes_strategy(),
        base in prop::collection::vec(-1e6f64..1e6, POOL),
        clients in clients_strategy(-1e6f64..1e6),
        k in 1usize..20,
    ) {
        check_topk(&shapes, &base, &clients, k)?;
    }

    #[test]
    fn fused_topk_matches_materializing_tie_heavy(
        shapes in shapes_strategy(),
        base in prop::collection::vec(tie_heavy(), POOL),
        clients in clients_strategy(tie_heavy()),
        k in 1usize..20,
    ) {
        check_topk(&shapes, &base, &clients, k)?;
    }

    #[test]
    fn fused_topk_matches_materializing_nan_flood(
        shapes in shapes_strategy(),
        base in prop::collection::vec(-1e3f64..1e3, POOL),
        clients in clients_strategy(nan_flood()),
        k in 1usize..20,
    ) {
        check_topk(&shapes, &base, &clients, k)?;
    }
}
