//! Property-based tests for the binary wire formats (EVFD / EVQ8 / EVSK).
//!
//! Three invariants, over random shapes including degenerate `rows x 0`
//! and `0 x cols` tensors:
//!
//! 1. encode → decode is lossless (bitwise for EVFD/EVSK, and for EVQ8 the
//!    decoded *struct* re-encodes to the identical payload);
//! 2. the O(1) `*_encoded_size` arithmetic equals the actual payload length
//!    — this is what makes metering-by-arithmetic exact;
//! 3. malformed inputs (every truncation point, corrupted magic) return a
//!    [`WireError`], never panic.

use evfad_federated::compression::{QuantizedUpdate, SparseDelta};
use evfad_federated::wire;
use evfad_tensor::Matrix;
use proptest::prelude::*;

/// Random weight list: 1–4 tensors with rows, cols in `0..6` (degenerate
/// empty shapes included) and finite values.
fn weights_strategy() -> impl Strategy<Value = Vec<Matrix>> {
    prop::collection::vec(
        (
            0usize..6,
            0usize..6,
            prop::collection::vec(-1e6f64..1e6, 36),
        ),
        1..5,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .map(|(rows, cols, vals)| Matrix::from_vec(rows, cols, vals[..rows * cols].to_vec()))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// EVFD: full-precision weights round-trip bitwise, and the O(1) size
    /// arithmetic matches the real payload length.
    #[test]
    fn evfd_round_trip_and_size(weights in weights_strategy()) {
        let payload = wire::encode_weights(&weights);
        prop_assert_eq!(payload.len(), wire::encoded_size(&weights));
        let decoded = wire::decode_weights(&payload).expect("round trip");
        prop_assert_eq!(decoded, weights);
    }

    /// EVFD: every strict prefix of a valid payload is an error, not a
    /// panic; so is a corrupted magic byte.
    #[test]
    fn evfd_rejects_malformed(weights in weights_strategy()) {
        let payload = wire::encode_weights(&weights).to_vec();
        for cut in 0..payload.len() {
            prop_assert!(wire::decode_weights(&payload[..cut]).is_err(), "cut {}", cut);
        }
        let mut bad = payload.clone();
        bad[0] ^= 0xFF;
        prop_assert!(wire::decode_weights(&bad).is_err());
    }

    /// EVQ8: the decoded struct re-encodes to the identical payload, the
    /// size arithmetic is exact, and dequantization error stays within one
    /// quantization step of the original.
    #[test]
    fn evq8_round_trip_and_size(weights in weights_strategy()) {
        let q = QuantizedUpdate::quantize(&weights);
        let payload = wire::encode_quantized(&q);
        prop_assert_eq!(payload.len(), wire::quantized_encoded_size(&q));
        let decoded = wire::decode_quantized(&payload).expect("round trip");
        prop_assert_eq!(wire::encode_quantized(&decoded), payload.clone());
        let restored = decoded.dequantize();
        // Values are drawn from (-1e6, 1e6), so the per-tensor range is at
        // most 2e6 and one 8-bit step is at most 2e6 / 255.
        let half_step = 2e6 / 255.0 / 2.0 + 1e-6;
        for (r, w) in restored.iter().zip(&weights) {
            prop_assert_eq!((r.rows(), r.cols()), (w.rows(), w.cols()));
            for (a, b) in r.as_slice().iter().zip(w.as_slice()) {
                prop_assert!((a - b).abs() <= half_step, "{} vs {}", a, b);
            }
        }
    }

    /// EVQ8: truncations and bad magic are errors, never panics.
    #[test]
    fn evq8_rejects_malformed(weights in weights_strategy()) {
        let q = QuantizedUpdate::quantize(&weights);
        let payload = wire::encode_quantized(&q).to_vec();
        for cut in 0..payload.len() {
            prop_assert!(wire::decode_quantized(&payload[..cut]).is_err(), "cut {}", cut);
        }
        let mut bad = payload.clone();
        bad[2] ^= 0xFF;
        prop_assert!(wire::decode_quantized(&bad).is_err());
    }

    /// EVSK: a top-k delta round-trips bitwise (re-encode identity) and
    /// applying the decoded delta reconstructs exactly what applying the
    /// original does.
    #[test]
    fn evsk_round_trip_and_size(
        base in weights_strategy(),
        noise in prop::collection::vec(-1.0f64..1.0, 4 * 36),
        k in 1usize..20,
    ) {
        // Same shapes as `base`, perturbed values.
        let mut cursor = noise.iter();
        let update: Vec<Matrix> = base
            .iter()
            .map(|m| {
                let vals: Vec<f64> = m.as_slice().iter().map(|v| v + cursor.next().copied().unwrap_or(0.25)).collect();
                Matrix::from_vec(m.rows(), m.cols(), vals)
            })
            .collect();
        let delta = SparseDelta::top_k(&update, &base, k);
        let payload = wire::encode_sparse(&delta);
        prop_assert_eq!(payload.len(), wire::sparse_encoded_size(&delta));
        let decoded = wire::decode_sparse(&payload).expect("round trip");
        prop_assert_eq!(wire::encode_sparse(&decoded), payload);
        prop_assert_eq!(decoded.apply(&base), delta.apply(&base));
    }

    /// EVSK: truncations and bad magic are errors, never panics.
    #[test]
    fn evsk_rejects_malformed(base in weights_strategy(), k in 1usize..8) {
        let update: Vec<Matrix> = base
            .iter()
            .map(|m| {
                let vals: Vec<f64> = m.as_slice().iter().map(|v| v + 0.5).collect();
                Matrix::from_vec(m.rows(), m.cols(), vals)
            })
            .collect();
        let delta = SparseDelta::top_k(&update, &base, k);
        let payload = wire::encode_sparse(&delta).to_vec();
        for cut in 0..payload.len() {
            prop_assert!(wire::decode_sparse(&payload[..cut]).is_err(), "cut {}", cut);
        }
        let mut bad = payload.clone();
        bad[1] ^= 0xFF;
        prop_assert!(wire::decode_sparse(&bad).is_err());
    }

    /// Cross-format confusion: feeding one format's payload to another
    /// format's decoder is a clean error.
    #[test]
    fn magic_bytes_keep_formats_apart(weights in weights_strategy()) {
        let evfd = wire::encode_weights(&weights);
        prop_assert!(wire::decode_quantized(&evfd).is_err());
        prop_assert!(wire::decode_sparse(&evfd).is_err());
        let q = wire::encode_quantized(&QuantizedUpdate::quantize(&weights));
        prop_assert!(wire::decode_weights(&q).is_err());
        prop_assert!(wire::decode_sparse(&q).is_err());
    }
}
