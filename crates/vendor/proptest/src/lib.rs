//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(...)]`), range and
//! `any::<T>()` strategies, `prop::collection::vec`, the `prop_map` /
//! `prop_filter` combinators, and the `prop_assert!` family.
//!
//! Differences from upstream: failing cases are *not shrunk* — the failing
//! inputs and the deterministic per-test seed are printed instead, which is
//! enough to reproduce (case generation is a pure function of the test name
//! and case index).

use rand::rngs::StdRng;
use rand::Rng;

/// Strategies generate values from a seeded RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred`, regenerating (bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..10_000 {
            let candidate = self.inner.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter `{}` rejected 10000 consecutive cases",
            self.reason
        );
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident => $v:ident),*) => {
        impl<$($s: Strategy),*> Strategy for ($($s,)*) {
            type Value = ($($s::Value,)*);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($v,)*) = self;
                ($($v.generate(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A => a, B => b);
impl_tuple_strategy!(A => a, B => b, C => c);
impl_tuple_strategy!(A => a, B => b, C => c, D => d);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy for "any value of `T`" — see [`arbitrary::Arbitrary`].
pub fn any<T: arbitrary::Arbitrary>() -> arbitrary::Any<T> {
    arbitrary::Any(std::marker::PhantomData)
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    /// The strategy returned by [`super::any`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut StdRng) -> u8 {
            rng.gen::<u8>()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut StdRng) -> u32 {
            rng.gen::<u32>()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut StdRng) -> u64 {
            rng.gen::<u64>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            // Finite full-range doubles.
            rng.gen_range(-1e12f64..1e12)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length specification for [`vec`]: a fixed `usize` or a `Range`.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates vectors whose length follows `len` and whose elements
    /// follow `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Execution engine behind the [`proptest!`](crate::proptest) macro.

    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream's default; cheap for the strategies this repo uses.
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed or rejected test case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure with its message.
        Fail(String),
        /// Case rejected (not counted as failure).
        Reject(String),
    }

    impl TestCaseError {
        /// Creates a failure.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }
    }

    /// Deterministic seed for `(test, case)` — FNV-1a over the test name,
    /// mixed with the case index.
    pub fn case_seed(test_name: &str, case: u32) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        hash ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Runs `body` for every case, panicking with a reproducible report on
    /// the first failure. `body` receives a seeded RNG and returns the
    /// case's input description alongside the verdict.
    pub fn run_cases<F>(test_name: &str, config: &ProptestConfig, mut body: F)
    where
        F: FnMut(&mut rand::rngs::StdRng) -> (String, Result<(), TestCaseError>),
    {
        use rand::SeedableRng;
        for case in 0..config.cases {
            let seed = case_seed(test_name, case);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
            match outcome {
                Ok((_, Ok(()))) => {}
                Ok((inputs, Err(TestCaseError::Reject(_)))) => {
                    // Rejection: skip, like upstream (no global rejection cap
                    // needed at this scale).
                    let _ = inputs;
                }
                Ok((inputs, Err(TestCaseError::Fail(message)))) => panic!(
                    "proptest case {case}/{} failed (seed {seed:#x}):\n{message}\ninputs:\n{inputs}",
                    config.cases
                ),
                Err(payload) => {
                    let message = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "panic".to_string());
                    panic!(
                        "proptest case {case}/{} panicked (seed {seed:#x}): {message}",
                        config.cases
                    );
                }
            }
        }
    }
}

pub mod strategy {
    //! Re-exports for generated code and `use proptest::strategy::*` users.
    pub use super::{Filter, Just, Map, Strategy};
}

pub mod prop {
    //! The `prop::` namespace used by `prelude`.
    pub use super::collection;
}

pub mod prelude {
    //! Everything the `proptest!` tests normally import.
    pub use super::test_runner::{ProptestConfig, TestCaseError};
    pub use super::{any, prop, proptest, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne};
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    // With a leading #![proptest_config(...)].
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! { config = $config; $($rest)* }
    };
    // Without configuration.
    (
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = $config:expr; ) => {};
    (
        config = $config:expr;
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                &__config,
                |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    let __inputs = {
                        let mut __s = String::new();
                        $(
                            __s.push_str(concat!("  ", stringify!($arg), " = "));
                            __s.push_str(&format!("{:?}\n", &$arg));
                        )+
                        __s
                    };
                    let __verdict = (|| -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    (__inputs, __verdict)
                },
            );
        }
        $crate::__proptest_tests! { config = $config; $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_follow_spec(v in prop::collection::vec(0u8..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 5));
        }

        #[test]
        fn map_and_filter_compose(
            v in prop::collection::vec(0.0f64..1.0, 1..20)
                .prop_filter("nonempty", |v| !v.is_empty())
                .prop_map(|v| v.len())
        ) {
            prop_assert!(v >= 1);
        }

        #[test]
        fn any_bool_both_values_possible(b in any::<bool>()) {
            // Smoke: just type-checks and runs.
            prop_assert!(b || !b);
        }
    }

    #[test]
    fn seeds_are_deterministic() {
        use crate::test_runner::case_seed;
        assert_eq!(case_seed("a::b", 3), case_seed("a::b", 3));
        assert_ne!(case_seed("a::b", 3), case_seed("a::b", 4));
        assert_ne!(case_seed("a::b", 3), case_seed("a::c", 3));
    }
}
