//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::thread::scope` built on `std::thread::scope`
//! (stable since Rust 1.63), which gives the same guarantee the workspace
//! relies on: scoped threads may borrow from the enclosing stack frame and
//! are joined before `scope` returns.
//!
//! API notes versus upstream: the closure passed to [`thread::Scope::spawn`]
//! receives a placeholder `()` instead of a nested `&Scope` (every call
//! site in this workspace ignores the argument), and [`thread::scope`]
//! returns `Ok` unless the *caller's* closure itself panics across the
//! scope boundary, since `std` propagates child panics at join time.

pub mod thread {
    //! Scoped threads.

    use std::thread as std_thread;

    /// Handle for spawning scoped threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a placeholder `()`
        /// where upstream crossbeam passes a nested scope reference.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(())),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// all of them are joined before this returns.
    ///
    /// # Errors
    ///
    /// Mirrors upstream's signature; with the `std` backend, child panics
    /// surface either through [`ScopedJoinHandle::join`] or by resuming the
    /// panic at scope exit, so this in practice returns `Ok`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }
}
