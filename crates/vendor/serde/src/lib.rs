//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal serde: a JSON-shaped [`json::Value`] data model, [`Serialize`] /
//! [`Deserialize`] traits over it, and `#[derive(Serialize, Deserialize)]`
//! macros (re-exported from the companion `serde_derive` proc-macro crate).
//!
//! Compared to upstream serde this model is JSON-only — exactly what the
//! workspace needs, since `serde_json` is its only serialisation backend.
//! The supported derive attributes are `#[serde(skip)]` and
//! `#[serde(skip, default)]` (equivalent here: the field is not written and
//! is restored with `Default::default()`).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

pub mod json {
    //! The self-describing value tree both traits target.

    /// A JSON number, kept wide enough for lossless `u64`/`i64`/`f64`.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub enum Number {
        /// Signed integer literal (no decimal point or exponent).
        I64(i64),
        /// Unsigned integer literal exceeding `i64::MAX`.
        U64(u64),
        /// Anything written with a decimal point or exponent.
        F64(f64),
    }

    impl Number {
        /// Widens to `f64` (lossy above 2^53, like JSON itself).
        pub fn as_f64(self) -> f64 {
            match self {
                Number::I64(v) => v as f64,
                Number::U64(v) => v as f64,
                Number::F64(v) => v,
            }
        }
    }

    /// A parsed JSON document.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any numeric literal.
        Number(Number),
        /// A string literal.
        String(String),
        /// `[ ... ]`
        Array(Vec<Value>),
        /// `{ ... }` — insertion-ordered, duplicate keys keep the last.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// Looks up `key` in an object value.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(entries) => {
                    entries.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v)
                }
                _ => None,
            }
        }
    }
}

use json::{Number, Value};

/// Deserialization failure: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// Standard "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        let kind = match found {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Number(_) => "a number",
            Value::String(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        };
        DeError::new(format!("expected {what}, found {kind}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into the JSON data model.
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the JSON data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape does not match.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("a boolean", other)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = match value {
                    Value::Number(Number::I64(v)) => *v as i128,
                    Value::Number(Number::U64(v)) => *v as i128,
                    other => return Err(DeError::expected("an integer", other)),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(format!("integer {n} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                if wide <= i64::MAX as u64 {
                    Value::Number(Number::I64(wide as i64))
                } else {
                    Value::Number(Number::U64(wide))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = match value {
                    Value::Number(Number::I64(v)) => i128::from(*v),
                    Value::Number(Number::U64(v)) => i128::from(*v),
                    other => return Err(DeError::expected("an integer", other)),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(format!("integer {n} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(DeError::expected("a number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("a string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("a single-character string", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("an array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(value)?;
        let found = items.len();
        items
            .try_into()
            .map_err(|_| DeError::new(format!("expected an array of {N}, found {found}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Array(items) => {
                        let expected = 0usize $(+ { let _ = stringify!($name); 1 })+;
                        if items.len() != expected {
                            return Err(DeError::new(format!(
                                "expected a {expected}-tuple, found {} elements",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected("a tuple (array)", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("an object", other)),
        }
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys so serialisation is deterministic across runs.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("an object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

// ---------------------------------------------------------------------------
// Derive-support helpers (used by generated code; not public API)
// ---------------------------------------------------------------------------

#[doc(hidden)]
pub mod __private {
    pub use super::json::{Number, Value};
    pub use super::{DeError, Deserialize, Serialize};

    /// Fetches a struct field, treating a missing key as `null` (which
    /// `Option` fields accept and other types reject with a clear error).
    pub fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, DeError> {
        match value.get(name) {
            Some(v) => T::from_value(v).map_err(|e| DeError::new(format!("field `{name}`: {e}"))),
            None => T::from_value(&Value::Null)
                .map_err(|_| DeError::new(format!("missing field `{name}`"))),
        }
    }
}
