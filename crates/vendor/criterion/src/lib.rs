//! Offline stand-in for `criterion`.
//!
//! Keeps the `criterion_group!` / `criterion_main!` / `bench_function`
//! surface so the workspace's benches compile and run without the real
//! crate. Measurement is deliberately simple: a warm-up pass sizes the
//! iteration count, then `sample_size` samples are timed and min / median /
//! mean are printed. Good enough to spot order-of-magnitude regressions;
//! not a statistics engine.

use std::time::{Duration, Instant};

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted, unused).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per sample.
    PerIteration,
}

/// Times closures handed over by a benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, running it enough times per sample to be measurable.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        // Warm-up: find an iteration count taking ≥ ~1 ms, capped.
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
    }

    /// Times `routine` over fresh inputs built by `setup` (setup excluded
    /// from timing).
    pub fn iter_batched<I, T, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> T,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Bench registry and configuration (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for CLI compatibility; filtering is not implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut body: F) {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        body(&mut bencher);
        let mut sorted = bencher.samples.clone();
        sorted.sort_unstable();
        if sorted.is_empty() {
            println!("{name:<48} (no samples)");
            return;
        }
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{name:<48} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
            min,
            median,
            mean,
            sorted.len()
        );
    }
}

/// Declares a group of benchmark functions (named-field form only).
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        fn $name() {
            $(
                {
                    let mut criterion = $config.configure_from_args();
                    $target(&mut criterion);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
