//! Offline stand-in for `serde_json`.
//!
//! Serialises the vendored `serde` data model to JSON text and parses JSON
//! text back. Floats are written with Rust's shortest-round-trip formatting
//! and parsed with the standard library's correctly-rounded `str::parse`,
//! so `f64` values survive a round-trip bit-exactly (the behaviour the
//! workspace's tests pin down, matching upstream's `float_roundtrip`
//! feature).

pub use serde::json::{Number, Value};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of JSON serialisations (`to_string`,
/// `to_string_pretty`, `to_vec`). Upstream `serde_json` has no such hook;
/// the workspace uses it to *prove* hot loops perform zero JSON
/// serialisation (see `evfad-federated`'s round-loop regression test and
/// `bench_comms`). Reads/writes are `Relaxed` — the counter is a telemetry
/// tally, not a synchronisation point.
static SERIALIZATIONS: AtomicU64 = AtomicU64::new(0);

/// Total number of JSON serialisations performed by this process so far.
///
/// Snapshot before and after a code path and compare to assert how many
/// times it serialised. Monotonic; never reset.
pub fn serialization_count() -> u64 {
    SERIALIZATIONS.load(Ordering::Relaxed)
}

/// Error raised while parsing or (never, in practice) while serialising.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    /// Byte offset of the failure in the input, when parsing.
    offset: Option<usize>,
}

impl Error {
    fn parse(message: impl Into<String>, offset: usize) -> Self {
        Error {
            message: message.into(),
            offset: Some(offset),
        }
    }

    fn data(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
            offset: None,
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.offset {
            Some(off) => write!(f, "{} at byte {off}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Serialisation
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::F64(v) => {
            if v.is_finite() {
                // `{:?}` is Rust's shortest representation that parses back
                // to the identical bits, and always keeps a `.0`/exponent so
                // the value re-parses as a float.
                out.push_str(&format!("{v:?}"));
            } else {
                // JSON has no NaN/inf; mirror upstream serde_json.
                out.push_str("null");
            }
        }
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_value(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push('}');
        }
    }
}

/// Serialises `value` to compact JSON text.
///
/// # Errors
///
/// Never fails for the vendored data model; the `Result` mirrors upstream.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    SERIALIZATIONS.fetch_add(1, Ordering::Relaxed);
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None);
    Ok(out)
}

/// Serialises `value` to two-space-indented JSON text.
///
/// # Errors
///
/// Never fails for the vendored data model.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    SERIALIZATIONS.fetch_add(1, Ordering::Relaxed);
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(0));
    Ok(out)
}

/// Serialises `value` to compact JSON bytes.
///
/// # Errors
///
/// Never fails for the vendored data model.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(Error::parse(
                format!("invalid literal, expected `{literal}`"),
                self.pos,
            ))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Input is valid UTF-8 and the run contains no escapes.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::parse("invalid UTF-8", start))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::parse("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::parse("invalid low surrogate", self.pos));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::parse("invalid codepoint", self.pos))?,
                            );
                        }
                        other => {
                            return Err(Error::parse(
                                format!("invalid escape `\\{}`", other as char),
                                self.pos,
                            ))
                        }
                    }
                }
                Some(_) => return Err(Error::parse("control character in string", self.pos)),
                None => return Err(Error::parse("unterminated string", self.pos)),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::parse("truncated \\u escape", self.pos));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::parse("invalid \\u escape", self.pos))?;
        let code = u32::from_str_radix(hex, 16)
            .map_err(|_| Error::parse("invalid \\u escape", self.pos))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse("invalid number", start))?;
        if text.is_empty() || text == "-" {
            return Err(Error::parse("invalid number", start));
        }
        let number = if is_float {
            Number::F64(
                text.parse::<f64>()
                    .map_err(|_| Error::parse(format!("invalid number `{text}`"), start))?,
            )
        } else if let Ok(v) = text.parse::<i64>() {
            Number::I64(v)
        } else if let Ok(v) = text.parse::<u64>() {
            Number::U64(v)
        } else {
            Number::F64(
                text.parse::<f64>()
                    .map_err(|_| Error::parse(format!("invalid number `{text}`"), start))?,
            )
        };
        Ok(Value::Number(number))
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value> {
        if depth > 128 {
            return Err(Error::parse("recursion limit exceeded", self.pos));
        }
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::parse("expected `,` or `]`", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_whitespace();
                    let key = self.parse_string()?;
                    self.skip_whitespace();
                    self.expect(b':')?;
                    let value = self.parse_value(depth + 1)?;
                    entries.push((key, value));
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(Error::parse("expected `,` or `}`", self.pos)),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::parse(
                format!("unexpected character `{}`", b as char),
                self.pos,
            )),
            None => Err(Error::parse("unexpected end of input", self.pos)),
        }
    }
}

/// Parses JSON text into a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] with the byte offset of the first syntax error.
pub fn parse_value(input: &str) -> Result<Value> {
    let mut parser = Parser::new(input);
    let value = parser.parse_value(0)?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::parse("trailing characters", parser.pos));
    }
    Ok(value)
}

/// Deserialises a `T` from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T> {
    let value = parse_value(input)?;
    T::from_value(&value).map_err(|e| Error::data(e.to_string()))
}

/// Deserialises a `T` from JSON bytes.
///
/// # Errors
///
/// Returns [`Error`] on invalid UTF-8, malformed JSON, or a shape mismatch.
pub fn from_slice<T: Deserialize>(input: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(input).map_err(|e| Error::data(e.to_string()))?;
    from_str(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip_bit_exactly() {
        for v in [
            0.1,
            -0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e300,
            -2.5e-10,
            5.0,
            0.0,
            123456789.123456789,
        ] {
            let json = to_string(&v).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "value {v} via {json}");
        }
    }

    #[test]
    fn integers_round_trip() {
        let json = to_string(&u64::MAX).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), u64::MAX);
        let json = to_string(&i64::MIN).unwrap();
        assert_eq!(from_str::<i64>(&json).unwrap(), i64::MIN);
    }

    #[test]
    fn nested_collections_round_trip() {
        let v: Vec<Vec<f64>> = vec![vec![1.5, -2.0], vec![], vec![3.25]];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<f64>>>(&json).unwrap(), v);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nbreak \"quoted\" tab\t backslash\\ unicode \u{1F980} nul-ish \u{01}";
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn surrogate_pair_parses() {
        let v: String = from_str("\"\\ud83e\\udd80\"").unwrap();
        assert_eq!(v, "\u{1F980}");
    }

    #[test]
    fn options_use_null() {
        assert_eq!(to_string(&Option::<f64>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<f64>>("2.5").unwrap(), Some(2.5));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<f64>("").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<f64>("1.0 garbage").is_err());
        assert!(parse_value("{\"a\":}").is_err());
    }

    #[test]
    fn pretty_output_is_reparsable() {
        let v: Vec<Vec<f64>> = vec![vec![1.0], vec![2.0, 3.0]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<f64>>>(&pretty).unwrap(), v);
    }
}
