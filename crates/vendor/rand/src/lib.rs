//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! this workspace vendors the small slice of `rand` 0.8 it actually uses:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`), [`rngs::StdRng`], [`thread_rng`], and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream `rand`'s ChaCha12, but every consumer in this
//! workspace only relies on *determinism for a given seed*, never on the
//! specific stream, so experiments stay reproducible.

use std::ops::{Range, RangeInclusive};

/// Core random-number-generator trait (subset of `rand::Rng`).
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over their range).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from a generator's "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges `gen_range` can sample from (subset of `rand::distributions`).
pub trait SampleRange<T> {
    /// Draws one value from `rng` uniformly over this range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

/// Types with a uniform distribution over ranges.
///
/// Mirrors `rand`'s single blanket `SampleRange` impl per range type, which
/// is what lets integer/float literal fallback resolve `gen_range(4..=12)`.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Rejection-sampled uniform integer in `[0, bound)` without modulo bias.
fn uniform_u64_below<R: Rng>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Largest multiple of `bound` that fits in u64; reject above it.
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
            fn sample_inclusive<R: Rng>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let u: f64 = f64::sample_standard(rng);
                let v = (lo as f64 + u * (hi as f64 - lo as f64)) as $t;
                // Guard against rounding up to the excluded endpoint.
                if v >= hi {
                    lo
                } else {
                    v
                }
            }
            fn sample_inclusive<R: Rng>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let u: f64 = f64::sample_standard(rng);
                (lo as f64 + u * (hi as f64 - lo as f64)) as $t
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// Deterministic construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator types.

    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Per-call generator seeded from the system clock and a process-wide
    /// counter; *not* reproducible across runs, mirroring `rand::ThreadRng`.
    #[derive(Debug, Clone)]
    pub struct ThreadRng {
        inner: StdRng,
    }

    impl ThreadRng {
        pub(crate) fn new() -> Self {
            use std::sync::atomic::{AtomicU64, Ordering};
            use std::time::{SystemTime, UNIX_EPOCH};
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let nanos = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
            ThreadRng {
                inner: StdRng::seed_from_u64(nanos ^ unique.rotate_left(32)),
            }
        }
    }

    impl Rng for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// Returns a non-deterministic generator (fresh state per call).
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

pub mod seq {
    //! Sequence-related extensions.

    use super::Rng;

    /// Slice shuffling and random selection (subset of
    /// `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_u64_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::uniform_u64_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&y));
            let z = rng.gen_range(4u64..=12);
            assert!((4..=12).contains(&z));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(6);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
