//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset the workspace's wire format uses: [`Bytes`],
//! [`BytesMut`], and the [`Buf`] / [`BufMut`] traits with little-endian
//! integer and float accessors. Backed by plain `Vec<u8>` — no shared
//! ownership tricks — which is all the in-process transport needs.

use std::ops::{Deref, DerefMut};

/// Immutable byte buffer (here: an owned `Vec<u8>` behind `Deref<[u8]>`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(bytes: Bytes) -> Self {
        bytes.data
    }
}

/// Growable byte buffer with little-endian put operations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Clears the buffer, keeping its allocation for reuse.
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Advances the cursor by `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.remaining()`.
    fn advance(&mut self, n: usize);

    /// A view of the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Copies exactly `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "buffer underflow");
        *self = &self[n..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write sink for bytes (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"HEAD");
        buf.put_u16_le(7);
        buf.put_u32_le(123456);
        buf.put_f64_le(-0.125);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        let mut head = [0u8; 4];
        cursor.copy_to_slice(&mut head);
        assert_eq!(&head, b"HEAD");
        assert_eq!(cursor.get_u16_le(), 7);
        assert_eq!(cursor.get_u32_le(), 123456);
        assert_eq!(cursor.get_f64_le(), -0.125);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1u8];
        let _ = cursor.get_u32_le();
    }
}
