//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored JSON-only `serde` data model, parsing the item by hand
//! (no `syn`/`quote` — the build environment has no registry access).
//!
//! Supported shapes — exactly what this workspace uses:
//! * structs with named fields (plus tuple/unit structs for completeness);
//! * enums with unit, tuple, and struct variants (externally tagged, like
//!   upstream serde's default representation);
//! * field attributes `#[serde(skip)]` and `#[serde(skip, default)]`:
//!   the field is not serialised and is restored via `Default::default()`.
//!
//! Generics, lifetimes, and other serde attributes are intentionally
//! rejected with a compile error rather than silently mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consumes attributes (`#[...]`), returning any `#[serde(...)]` idents.
    fn skip_attributes(&mut self) -> Vec<String> {
        let mut serde_idents = Vec::new();
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.next();
                    match self.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                            if let Some(TokenTree::Ident(id)) = inner.first() {
                                if id.to_string() == "serde" {
                                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                                        for t in args.stream() {
                                            if let TokenTree::Ident(arg) = t {
                                                serde_idents.push(arg.to_string());
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        other => panic!("serde derive: malformed attribute: {other:?}"),
                    }
                }
                _ => return serde_idents,
            }
        }
    }

    /// Consumes `pub`, `pub(crate)`, `pub(super)`, ... if present.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde derive: expected {what}, found {other:?}"),
        }
    }

    /// Consumes a type (or expression) up to a top-level `,`, tracking
    /// `<...>` depth so generic argument commas are not treated as
    /// terminators. The terminating comma itself is consumed.
    fn skip_until_top_level_comma(&mut self) {
        let mut angle_depth: i64 = 0;
        while let Some(tok) = self.peek() {
            match tok {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if c == ',' && angle_depth == 0 {
                        self.next();
                        return;
                    }
                    if c == '<' {
                        angle_depth += 1;
                    } else if c == '>' {
                        angle_depth -= 1;
                    }
                    self.next();
                }
                _ => {
                    self.next();
                }
            }
        }
    }
}

fn reject_generics(cursor: &Cursor, name: &str) {
    if let Some(TokenTree::Punct(p)) = cursor.peek() {
        if p.as_char() == '<' {
            panic!("serde derive (vendored): generics on `{name}` are not supported");
        }
    }
}

/// Parses the fields of a `{ ... }` group into (name, skip) pairs.
fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let mut cursor = Cursor::new(group);
    let mut fields = Vec::new();
    while !cursor.at_end() {
        let serde_args = cursor.skip_attributes();
        if cursor.at_end() {
            break;
        }
        cursor.skip_visibility();
        let name = cursor.expect_ident("field name");
        match cursor.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field `{name}`, found {other:?}"),
        }
        cursor.skip_until_top_level_comma();
        fields.push(Field {
            name,
            skip: serde_args.iter().any(|a| a == "skip"),
        });
    }
    fields
}

/// Counts comma-separated entries in a tuple field list `( ... )`.
fn count_tuple_fields(group: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle_depth: i64 = 0;
    let mut count = 1;
    let mut trailing_comma = false;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut cursor = Cursor::new(group);
    let mut variants = Vec::new();
    while !cursor.at_end() {
        cursor.skip_attributes();
        if cursor.at_end() {
            break;
        }
        let name = cursor.expect_ident("variant name");
        let kind = match cursor.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                cursor.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                cursor.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Consume an optional discriminant and the trailing comma.
        cursor.skip_until_top_level_comma();
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut cursor = Cursor::new(input);
    cursor.skip_attributes();
    cursor.skip_visibility();
    let keyword = cursor.expect_ident("`struct` or `enum`");
    let name = cursor.expect_ident("item name");
    reject_generics(&cursor, &name);
    match keyword.as_str() {
        "struct" => match cursor.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("serde derive: unexpected struct body: {other:?}"),
        },
        "enum" => match cursor.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde derive: unexpected enum body: {other:?}"),
        },
        other => panic!("serde derive: expected struct or enum, found `{other}`"),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

const VALUE: &str = "::serde::__private::Value";
const DE_ERROR: &str = "::serde::__private::DeError";

fn generate_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                let fname = &f.name;
                pushes.push_str(&format!(
                    "__entries.push((\"{fname}\".to_string(), \
                     ::serde::Serialize::to_value(&self.{fname})));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> {VALUE} {{\n\
                         let mut __entries: Vec<(String, {VALUE})> = Vec::new();\n\
                         {pushes}\
                         {VALUE}::Object(__entries)\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            if *arity == 1 {
                // Newtype struct: transparent, like upstream serde.
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                         fn to_value(&self) -> {VALUE} {{\n\
                             ::serde::Serialize::to_value(&self.0)\n\
                         }}\n\
                     }}"
                )
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                         fn to_value(&self) -> {VALUE} {{\n\
                             {VALUE}::Array(vec![{}])\n\
                         }}\n\
                     }}",
                    items.join(", ")
                )
            }
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> {VALUE} {{ {VALUE}::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => {VALUE}::String(\"{vname}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => {VALUE}::Object(vec![(\
                         \"{vname}\".to_string(), ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {VALUE}::Object(vec![(\
                             \"{vname}\".to_string(), {VALUE}::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{}: __b_{}", f.name, f.name))
                            .collect();
                        let mut pushes = String::new();
                        for f in fields.iter().filter(|f| !f.skip) {
                            pushes.push_str(&format!(
                                "__inner.push((\"{0}\".to_string(), \
                                 ::serde::Serialize::to_value(__b_{0})));\n",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n\
                                 let mut __inner: Vec<(String, {VALUE})> = Vec::new();\n\
                                 {pushes}\
                                 {VALUE}::Object(vec![(\"{vname}\".to_string(), \
                                 {VALUE}::Object(__inner))])\n\
                             }},\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> {VALUE} {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn generate_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{}: ::core::default::Default::default(),\n",
                        f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{0}: ::serde::__private::field(__value, \"{0}\")?,\n",
                        f.name
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__value: &{VALUE}) -> Result<Self, {DE_ERROR}> {{\n\
                         if !matches!(__value, {VALUE}::Object(_)) {{\n\
                             return Err({DE_ERROR}::expected(\"struct {name}\", __value));\n\
                         }}\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            if *arity == 1 {
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                         fn from_value(__value: &{VALUE}) -> Result<Self, {DE_ERROR}> {{\n\
                             Ok({name}(::serde::Deserialize::from_value(__value)?))\n\
                         }}\n\
                     }}"
                )
            } else {
                let inits: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                         fn from_value(__value: &{VALUE}) -> Result<Self, {DE_ERROR}> {{\n\
                             match __value {{\n\
                                 {VALUE}::Array(__items) if __items.len() == {arity} => \
                                     Ok({name}({inits})),\n\
                                 other => Err({DE_ERROR}::expected(\
                                     \"tuple struct {name}\", other)),\n\
                             }}\n\
                         }}\n\
                     }}",
                    inits = inits.join(", ")
                )
            }
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_: &{VALUE}) -> Result<Self, {DE_ERROR}> {{ Ok({name}) }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"));
                    }
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(__payload)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => match __payload {{\n\
                                 {VALUE}::Array(__items) if __items.len() == {n} => \
                                     Ok({name}::{vname}({inits})),\n\
                                 other => Err({DE_ERROR}::expected(\
                                     \"{n} fields for {name}::{vname}\", other)),\n\
                             }},\n",
                            inits = inits.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            if f.skip {
                                inits.push_str(&format!(
                                    "{}: ::core::default::Default::default(),\n",
                                    f.name
                                ));
                            } else {
                                inits.push_str(&format!(
                                    "{0}: ::serde::__private::field(__payload, \"{0}\")?,\n",
                                    f.name
                                ));
                            }
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => Ok({name}::{vname} {{ {inits} }}),\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__value: &{VALUE}) -> Result<Self, {DE_ERROR}> {{\n\
                         match __value {{\n\
                             {VALUE}::String(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\
                                 other => Err({DE_ERROR}::new(format!(\
                                     \"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             {VALUE}::Object(__entries) if __entries.len() == 1 => {{\n\
                                 let (__tag, __payload) = &__entries[0];\n\
                                 match __tag.as_str() {{\n\
                                     {tagged_arms}\
                                     other => Err({DE_ERROR}::new(format!(\
                                         \"unknown {name} variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err({DE_ERROR}::expected(\"enum {name}\", other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Derives `serde::Serialize` (vendored JSON-only data model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("serde derive: generated Serialize impl failed to parse")
}

/// Derives `serde::Deserialize` (vendored JSON-only data model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("serde derive: generated Deserialize impl failed to parse")
}
