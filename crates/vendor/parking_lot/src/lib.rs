//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API
//! (`lock()` returns the guard directly). A panicked holder does not poison
//! the lock — matching `parking_lot` semantics — because we recover the
//! guard from the `PoisonError`.

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquisitions never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
