//! From-scratch neural-network substrate for the `evfad` workspace.
//!
//! Reimplements the slice of Keras the paper's models rely on:
//!
//! * [`Lstm`] — full backpropagation-through-time LSTM with
//!   `return_sequences`, combined Glorot-initialised kernel and
//!   unit-initialised forget-gate bias;
//! * [`Dense`] — time-distributed fully connected layer with selectable
//!   [`Activation`];
//! * [`Dropout`] and [`RepeatVector`] — the remaining pieces of the paper's
//!   LSTM-autoencoder stack;
//! * [`Sequential`] — a layer container with a Keras-style
//!   [`fit`](Sequential::fit) loop (mini-batches, shuffling, validation
//!   split, early stopping with best-weight restoration);
//! * [`Adam`] / [`Sgd`] optimisers and [`Loss`] functions (MSE / MAE);
//! * weight export/import ([`Sequential::weights`] /
//!   [`Sequential::set_weights`]) — the federated-averaging interface.
//!
//! All layer gradients are validated against finite differences in this
//! crate's test-suite (see the [`gradcheck`] helpers).
//!
//! # Examples
//!
//! Train a single-step forecaster on a toy signal:
//!
//! ```
//! use evfad_nn::{Activation, Dense, Lstm, Sequential, Sample, TrainConfig};
//! use evfad_tensor::Matrix;
//!
//! let mut model = Sequential::new(42)
//!     .with(Lstm::new(1, 4, false))
//!     .with(Dense::new(4, 1, Activation::Linear));
//! let samples: Vec<Sample> = (0..32)
//!     .map(|i| {
//!         let xs: Vec<f64> = (0..8).map(|t| ((i + t) as f64 * 0.3).sin()).collect();
//!         let y = ((i + 8) as f64 * 0.3).sin();
//!         Sample::new(Matrix::column_vector(&xs), Matrix::from_vec(1, 1, vec![y]))
//!     })
//!     .collect();
//! let cfg = TrainConfig { epochs: 2, batch_size: 8, ..TrainConfig::default() };
//! let history = model.fit(&samples, &cfg)?;
//! assert_eq!(history.epochs.len(), 2);
//! # Ok::<(), evfad_nn::NnError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod batch;
mod error;
pub mod gradcheck;
pub mod infer;
mod layer;
mod layers;
mod loss;
mod model;
mod optimizer;
mod seq;
mod workspace;

pub use activation::Activation;
pub use batch::BatchPlan;
pub use error::{NnError, NnResult};
pub use gradcheck::{check_model_gradients, GradCheckReport};
pub use infer::{InferenceModel, Precision};
pub use layer::Layer;
pub use layers::{Dense, Dropout, Gru, Lstm, RepeatVector};
pub use loss::Loss;
pub use model::{
    autoencoder_model, forecaster_model, EpochStats, Sample, Sequential, TrainConfig, TrainHistory,
};
pub use optimizer::{Adam, Optimizer, Sgd};
pub use seq::{Seq, SeqBuf};
pub use workspace::Workspace;
