//! Enum dispatch over the concrete layer types.

use crate::layers::{Dense, Dropout, Gru, Lstm, RepeatVector};
use crate::seq::Seq;
use evfad_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Any layer a [`Sequential`](crate::Sequential) model can contain.
///
/// Enum dispatch (rather than trait objects) keeps models `Clone` +
/// `Serialize`, which the federated stack relies on for weight exchange and
/// checkpointing.
///
/// # Examples
///
/// ```
/// use evfad_nn::{Activation, Dense, Layer};
///
/// let layer: Layer = Dense::new_seeded(4, 2, Activation::Relu, 0).into();
/// assert_eq!(layer.param_count(), 2);
/// assert_eq!(layer.kind(), "dense");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Layer {
    /// Fully connected (time-distributed) layer.
    Dense(Dense),
    /// LSTM recurrent layer.
    Lstm(Lstm),
    /// GRU recurrent layer.
    Gru(Gru),
    /// Inverted dropout.
    Dropout(Dropout),
    /// Keras-style RepeatVector.
    RepeatVector(RepeatVector),
}

impl Layer {
    /// Forward pass; caches are populated when `training` is `true`.
    pub fn forward(&mut self, input: &Seq, training: bool) -> Seq {
        match self {
            Layer::Dense(l) => l.forward(input, training),
            Layer::Lstm(l) => l.forward(input, training),
            Layer::Gru(l) => l.forward(input, training),
            Layer::Dropout(l) => l.forward(input, training),
            Layer::RepeatVector(l) => l.forward(input, training),
        }
    }

    /// Eval-mode forward pass into a reusable buffer.
    ///
    /// Bitwise identical activations to `forward(input, false)`, but the
    /// output lands in `out` (reusing its storage on the warm path) instead
    /// of freshly allocated step matrices.
    pub fn forward_into(&mut self, input: &Seq, out: &mut crate::seq::SeqBuf) {
        match self {
            Layer::Dense(l) => l.forward_into(input, out),
            Layer::Lstm(l) => l.forward_into(input, out),
            Layer::Gru(l) => l.forward_into(input, out),
            Layer::Dropout(l) => l.forward_into(input, out),
            Layer::RepeatVector(l) => l.forward_into(input, out),
        }
    }

    /// Backward pass; returns the gradient with respect to the layer input.
    pub fn backward(&mut self, grad: &Seq) -> Seq {
        self.backward_input(grad, true)
            .expect("input gradient requested")
    }

    /// Backward pass that skips the input-gradient product when the caller
    /// does not need it (e.g. the first layer of a model). Parameter
    /// gradients are always accumulated identically.
    pub fn backward_input(&mut self, grad: &Seq, need_input_grad: bool) -> Option<Seq> {
        match self {
            Layer::Dense(l) => l.backward_input(grad, need_input_grad),
            Layer::Lstm(l) => l.backward_input(grad, need_input_grad),
            Layer::Gru(l) => l.backward_input(grad, need_input_grad),
            Layer::Dropout(l) => Some(l.backward(grad)),
            Layer::RepeatVector(l) => Some(l.backward(grad)),
        }
    }

    /// Immutable views of the trainable parameter tensors.
    pub fn params(&self) -> Vec<&Matrix> {
        match self {
            Layer::Dense(l) => l.params(),
            Layer::Lstm(l) => l.params(),
            Layer::Gru(l) => l.params(),
            Layer::Dropout(_) | Layer::RepeatVector(_) => Vec::new(),
        }
    }

    /// Mutable `(parameter, gradient)` pairs for the optimiser.
    pub fn params_and_grads_mut(&mut self) -> Vec<(&mut Matrix, &mut Matrix)> {
        match self {
            Layer::Dense(l) => l.params_and_grads_mut(),
            Layer::Lstm(l) => l.params_and_grads_mut(),
            Layer::Gru(l) => l.params_and_grads_mut(),
            Layer::Dropout(_) | Layer::RepeatVector(_) => Vec::new(),
        }
    }

    /// Number of trainable parameter tensors.
    pub fn param_count(&self) -> usize {
        self.params().len()
    }

    /// Clears accumulated gradients.
    pub fn zero_grads(&mut self) {
        match self {
            Layer::Dense(l) => l.zero_grads(),
            Layer::Lstm(l) => l.zero_grads(),
            Layer::Gru(l) => l.zero_grads(),
            Layer::Dropout(_) | Layer::RepeatVector(_) => {}
        }
    }

    /// Short stable identifier for summaries (`"dense"`, `"lstm"`, ...).
    pub fn kind(&self) -> &'static str {
        match self {
            Layer::Dense(_) => "dense",
            Layer::Lstm(_) => "lstm",
            Layer::Gru(_) => "gru",
            Layer::Dropout(_) => "dropout",
            Layer::RepeatVector(_) => "repeat_vector",
        }
    }

    /// Restores transient state (gradients, caches) after deserialisation.
    pub(crate) fn rebuild_transient(&mut self) {
        match self {
            Layer::Dense(l) => l.rebuild_transient(),
            Layer::Lstm(l) => l.rebuild_transient(),
            Layer::Gru(l) => l.rebuild_transient(),
            Layer::Dropout(l) => l.rebuild_transient(),
            Layer::RepeatVector(_) => {}
        }
    }
}

impl From<Dense> for Layer {
    fn from(l: Dense) -> Self {
        Layer::Dense(l)
    }
}

impl From<Lstm> for Layer {
    fn from(l: Lstm) -> Self {
        Layer::Lstm(l)
    }
}

impl From<Gru> for Layer {
    fn from(l: Gru) -> Self {
        Layer::Gru(l)
    }
}

impl From<Dropout> for Layer {
    fn from(l: Dropout) -> Self {
        Layer::Dropout(l)
    }
}

impl From<RepeatVector> for Layer {
    fn from(l: RepeatVector) -> Self {
        Layer::RepeatVector(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;

    #[test]
    fn kinds_and_param_counts() {
        let d: Layer = Dense::new_seeded(2, 2, Activation::Linear, 0).into();
        let l: Layer = Lstm::new_seeded(1, 2, false, 0).into();
        let p: Layer = Dropout::new(0.1).into();
        let r: Layer = RepeatVector::new(2).into();
        assert_eq!(d.kind(), "dense");
        assert_eq!(l.kind(), "lstm");
        assert_eq!(p.kind(), "dropout");
        assert_eq!(r.kind(), "repeat_vector");
        assert_eq!(d.param_count(), 2);
        assert_eq!(l.param_count(), 2);
        assert_eq!(p.param_count(), 0);
        assert_eq!(r.param_count(), 0);
    }

    #[test]
    fn forward_dispatches() {
        let mut d: Layer = Dense::new_seeded(2, 3, Activation::Linear, 0).into();
        let y = d.forward(&Seq::single(Matrix::ones(1, 2)), false);
        assert_eq!(y.step(0).shape(), (1, 3));
    }
}
