//! GRU layer with full backpropagation through time.
//!
//! Like [`Lstm`](crate::Lstm), the hot path is fused and workspace-backed:
//! both input projections (`x W_gx`, `x W_cx`) are batched over all
//! timesteps, the combined kernels are addressed through zero-copy row
//! views, and the per-step state lives in reusable arena slots. All
//! floating-point expressions reproduce the original allocating
//! implementation bitwise.

use crate::activation::stable_sigmoid;
use crate::seq::Seq;
use crate::workspace::Workspace;
use evfad_tensor::{kernels, Initializer, MatMut, MatRef, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

// Workspace slot layout; forward slots double as the BPTT cache and
// eval-mode forwards shift to `EVAL_BASE`.
const X_ALL: usize = 0; // (T*B) x I   inputs
const PREG_ALL: usize = 1; // (T*B) x 2H  gate pre-activations, then [z|r]
const CAND_ALL: usize = 2; // (T*B) x H   candidate pre, then tanh (h~)
const RH_ALL: usize = 3; // (T*B) x H   r ∘ h_prev
const H_ALL: usize = 4; // (T*B) x H   hidden states
const ZEROS: usize = 5; // B x H       zero h_-1 (re-zeroed per call)
const DH: usize = 6; // B x H       running dh
const DHP: usize = 7; // B x H       dh_prev accumulator
const DPRE_C: usize = 8; // B x H
const DPRE_G: usize = 9; // B x 2H
const TGX: usize = 10; // I x 2H      x^T @ dpre_g staging
const TGH: usize = 11; // H x 2H      h^T @ dpre_g staging
const TCX: usize = 12; // I x H       x^T @ dpre_c staging
const TCH: usize = 13; // H x H       rh^T @ dpre_c staging
const BSUM_G: usize = 14; // 1 x 2H
const BSUM_C: usize = 15; // 1 x H
const DRH: usize = 16; // B x H
const DXG: usize = 17; // B x I       gate-path input gradient staging
const EVAL_BASE: usize = 24;

/// A Gated Recurrent Unit layer (Cho et al., 2014).
///
/// ```text
/// z = sigmoid([x | h] W_z + b_z)      r = sigmoid([x | h] W_r + b_r)
/// h~ = tanh([x | r∘h] W_h + b_h)      h' = (1 - z)∘h + z∘h~
/// ```
///
/// Provided as the architecture-ablation counterpart to [`Lstm`](crate::Lstm)
/// (the paper motivates LSTMs; GRUs are the standard lighter alternative in
/// the related federated-forecasting literature). API and `return_sequences`
/// semantics match [`Lstm`](crate::Lstm).
///
/// # Examples
///
/// ```
/// use evfad_nn::{Gru, Seq};
/// use evfad_tensor::Matrix;
///
/// let mut gru = Gru::new_seeded(1, 6, false, 3);
/// let x = Seq::from_samples(&[Matrix::column_vector(&[0.1, -0.4, 0.2])]);
/// let h = gru.forward(&x, false);
/// assert_eq!(h.step(0).shape(), (1, 6));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gru {
    input_dim: usize,
    hidden_dim: usize,
    return_sequences: bool,
    /// Gate kernel over `[x | h]`, shape `(input+hidden) x 2*hidden`,
    /// gate order `[z | r]`.
    w_gates: Matrix,
    /// Gate bias, `1 x 2*hidden`.
    b_gates: Matrix,
    /// Candidate kernel over `[x | r∘h]`, shape `(input+hidden) x hidden`.
    w_cand: Matrix,
    /// Candidate bias, `1 x hidden`.
    b_cand: Matrix,
    #[serde(skip)]
    grad_w_gates: Matrix,
    #[serde(skip)]
    grad_b_gates: Matrix,
    #[serde(skip)]
    grad_w_cand: Matrix,
    #[serde(skip)]
    grad_b_cand: Matrix,
    #[serde(skip)]
    ws: Workspace,
    #[serde(skip)]
    cached_steps: usize,
    #[serde(skip)]
    cached_batch: usize,
}

impl Gru {
    /// Creates a GRU seeded from the thread RNG; prefer [`Gru::new_seeded`].
    pub fn new(input_dim: usize, hidden_dim: usize, return_sequences: bool) -> Self {
        Self::new_with_rng(
            input_dim,
            hidden_dim,
            return_sequences,
            &mut rand::thread_rng(),
        )
    }

    /// Creates a GRU initialised from `rng` (Glorot-uniform kernels).
    pub fn new_with_rng(
        input_dim: usize,
        hidden_dim: usize,
        return_sequences: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let z_dim = input_dim + hidden_dim;
        Self {
            input_dim,
            hidden_dim,
            return_sequences,
            w_gates: Initializer::GlorotUniform.init(z_dim, 2 * hidden_dim, rng),
            b_gates: Matrix::zeros(1, 2 * hidden_dim),
            w_cand: Initializer::GlorotUniform.init(z_dim, hidden_dim, rng),
            b_cand: Matrix::zeros(1, hidden_dim),
            grad_w_gates: Matrix::zeros(z_dim, 2 * hidden_dim),
            grad_b_gates: Matrix::zeros(1, 2 * hidden_dim),
            grad_w_cand: Matrix::zeros(z_dim, hidden_dim),
            grad_b_cand: Matrix::zeros(1, hidden_dim),
            ws: Workspace::new(),
            cached_steps: 0,
            cached_batch: 0,
        }
    }

    /// Creates a GRU initialised from a fixed seed.
    pub fn new_seeded(
        input_dim: usize,
        hidden_dim: usize,
        return_sequences: bool,
        seed: u64,
    ) -> Self {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Self::new_with_rng(input_dim, hidden_dim, return_sequences, &mut rng)
    }

    /// Re-initialises the weights from `rng`.
    pub fn reinitialize(&mut self, rng: &mut impl Rng) {
        let fresh = Gru::new_with_rng(self.input_dim, self.hidden_dim, self.return_sequences, rng);
        self.w_gates = fresh.w_gates;
        self.b_gates = fresh.b_gates;
        self.w_cand = fresh.w_cand;
        self.b_cand = fresh.b_cand;
    }

    /// Input feature width.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden-state width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Whether the layer emits the full hidden sequence.
    pub fn return_sequences(&self) -> bool {
        self.return_sequences
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if the input feature width differs from `input_dim`.
    pub fn forward(&mut self, input: &Seq, training: bool) -> Seq {
        let (steps, batch) = self.forward_core(input, training);
        let base = if training { 0 } else { EVAL_BASE };
        let (h_dim, bh) = (self.hidden_dim, batch * self.hidden_dim);
        // Re-take the hidden trajectory the core just put back: same length,
        // so the workspace hands the buffer back with contents intact.
        let h_all = self.ws.take(base + H_ALL, steps * bh);
        let out = if self.return_sequences {
            Seq::from_steps(
                (0..steps)
                    .map(|t| Matrix::from_vec(batch, h_dim, h_all[t * bh..(t + 1) * bh].to_vec()))
                    .collect(),
            )
        } else {
            Seq::single(Matrix::from_vec(
                batch,
                h_dim,
                h_all[(steps - 1) * bh..].to_vec(),
            ))
        };
        self.ws.put(base + H_ALL, h_all);
        out
    }

    /// Eval-mode forward that writes the output into a reusable buffer.
    ///
    /// Runs the exact fused forward ([`Gru::forward`] with
    /// `training = false` — bitwise identical activations) but copies the
    /// hidden trajectory into `out` instead of materialising fresh step
    /// matrices, so a warm caller allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics if the input feature width differs from `input_dim`.
    pub fn forward_into(&mut self, input: &Seq, out: &mut crate::seq::SeqBuf) {
        let (steps, batch) = self.forward_core(input, false);
        let (h_dim, bh) = (self.hidden_dim, batch * self.hidden_dim);
        let h_all = self.ws.take(EVAL_BASE + H_ALL, steps * bh);
        let (o_steps, first) = if self.return_sequences {
            (steps, 0)
        } else {
            (1, steps - 1)
        };
        let seq = out.ensure(o_steps, batch, h_dim);
        for t in 0..o_steps {
            seq.step_data_mut(t)
                .copy_from_slice(&h_all[(first + t) * bh..(first + t + 1) * bh]);
        }
        self.ws.put(EVAL_BASE + H_ALL, h_all);
    }

    /// The fused forward computation: fills the workspace trajectories and
    /// caches BPTT state when `training`, leaving output materialisation to
    /// the caller. Returns `(steps, batch)`.
    fn forward_core(&mut self, input: &Seq, training: bool) -> (usize, usize) {
        assert_eq!(
            input.features(),
            self.input_dim,
            "GRU expected {} input features, got {}",
            self.input_dim,
            input.features()
        );
        let base = if training { 0 } else { EVAL_BASE };
        let steps = input.len();
        let batch = input.batch_size();
        let (i_dim, h_dim) = (self.input_dim, self.hidden_dim);
        let (bi, bh, b2h) = (batch * i_dim, batch * h_dim, batch * 2 * h_dim);

        let mut x_all = self.ws.take(base + X_ALL, steps * bi);
        let mut preg_all = self.ws.take(base + PREG_ALL, steps * b2h);
        let mut cand_all = self.ws.take(base + CAND_ALL, steps * bh);
        let mut rh_all = self.ws.take(base + RH_ALL, steps * bh);
        let mut h_all = self.ws.take(base + H_ALL, steps * bh);
        let mut zeros = self.ws.take(base + ZEROS, bh);
        zeros.fill(0.0);

        for (t, x_t) in input.iter().enumerate() {
            x_all[t * bi..(t + 1) * bi].copy_from_slice(x_t.as_slice());
        }
        // Batched input projections for both kernels (the x-columns of the
        // combined products accumulate first, so this is bitwise identical
        // to the per-step `[x|h] @ W` / `[x|r∘h] @ W` forms).
        let x_ref = MatRef::new(steps * batch, i_dim, &x_all);
        kernels::matmul_into(
            x_ref,
            self.w_gates.rows_view(0..i_dim),
            MatMut::new(steps * batch, 2 * h_dim, &mut preg_all),
        );
        kernels::matmul_into(
            x_ref,
            self.w_cand.rows_view(0..i_dim),
            MatMut::new(steps * batch, h_dim, &mut cand_all),
        );
        let w_gh = self.w_gates.rows_view(i_dim..i_dim + h_dim);
        let w_ch = self.w_cand.rows_view(i_dim..i_dim + h_dim);

        for t in 0..steps {
            let (h_done, h_rest) = h_all.split_at_mut(t * bh);
            let h_prev = if t == 0 {
                &zeros[..]
            } else {
                &h_done[(t - 1) * bh..]
            };
            let preg_t = &mut preg_all[t * b2h..(t + 1) * b2h];
            kernels::matmul_acc_into(
                MatRef::new(batch, h_dim, h_prev),
                w_gh,
                MatMut::new(batch, 2 * h_dim, preg_t),
            );
            kernels::add_row_broadcast_into(
                MatMut::new(batch, 2 * h_dim, preg_t),
                self.b_gates.view(),
            );
            let rh_t = &mut rh_all[t * bh..(t + 1) * bh];
            for r in 0..batch {
                let gates = &mut preg_t[r * 2 * h_dim..(r + 1) * 2 * h_dim];
                for j in 0..h_dim {
                    let idx = r * h_dim + j;
                    let z_v = stable_sigmoid(gates[j]);
                    let r_v = stable_sigmoid(gates[h_dim + j]);
                    gates[j] = z_v;
                    gates[h_dim + j] = r_v;
                    rh_t[idx] = r_v * h_prev[idx];
                }
            }
            let cand_t = &mut cand_all[t * bh..(t + 1) * bh];
            kernels::matmul_acc_into(
                MatRef::new(batch, h_dim, rh_t),
                w_ch,
                MatMut::new(batch, h_dim, cand_t),
            );
            kernels::add_row_broadcast_into(MatMut::new(batch, h_dim, cand_t), self.b_cand.view());
            let preg_t = &preg_all[t * b2h..(t + 1) * b2h];
            let h_t = &mut h_rest[..bh];
            for r in 0..batch {
                let gates = &preg_t[r * 2 * h_dim..(r + 1) * 2 * h_dim];
                let row = r * h_dim..(r + 1) * h_dim;
                let it = gates[..h_dim]
                    .iter()
                    .zip(&mut cand_t[row.clone()])
                    .zip(&h_prev[row.clone()])
                    .zip(&mut h_t[row]);
                for (((&z_v, ct), &hp), ht) in it {
                    let ht_v = ct.tanh();
                    *ct = ht_v;
                    // h' = (1 - z)∘h_prev + z∘h~
                    *ht = (hp * (1.0 - z_v)) + (ht_v * z_v);
                }
            }
        }

        self.ws.put(base + X_ALL, x_all);
        self.ws.put(base + PREG_ALL, preg_all);
        self.ws.put(base + CAND_ALL, cand_all);
        self.ws.put(base + RH_ALL, rh_all);
        self.ws.put(base + H_ALL, h_all);
        self.ws.put(base + ZEROS, zeros);
        if training {
            self.cached_steps = steps;
            self.cached_batch = batch;
        }
        (steps, batch)
    }

    /// Backward pass through time; see [`Lstm::backward`](crate::Lstm::backward)
    /// for the gradient-shape contract.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding training-mode forward pass.
    pub fn backward(&mut self, grad: &Seq) -> Seq {
        self.backward_input(grad, true)
            .expect("input gradient requested")
    }

    /// [`Gru::backward`] with an optional input-gradient computation; see
    /// [`Lstm::backward_input`](crate::Lstm::backward_input).
    pub fn backward_input(&mut self, grad: &Seq, need_input_grad: bool) -> Option<Seq> {
        let steps = self.cached_steps;
        assert!(steps > 0, "backward requires a training forward pass");
        if self.return_sequences {
            assert_eq!(grad.len(), steps, "gradient length mismatch");
        } else {
            assert_eq!(grad.len(), 1, "single-step gradient expected");
        }
        let (i_dim, h_dim) = (self.input_dim, self.hidden_dim);
        let batch = self.cached_batch;
        let (bi, bh, b2h) = (batch * i_dim, batch * h_dim, batch * 2 * h_dim);

        let x_all = self.ws.take(X_ALL, steps * bi);
        let preg_all = self.ws.take(PREG_ALL, steps * b2h);
        let cand_all = self.ws.take(CAND_ALL, steps * bh);
        let rh_all = self.ws.take(RH_ALL, steps * bh);
        let h_all = self.ws.take(H_ALL, steps * bh);
        let zeros = self.ws.take(ZEROS, bh);
        let mut dh = self.ws.take(DH, bh);
        let mut dhp = self.ws.take(DHP, bh);
        let mut dpre_c = self.ws.take(DPRE_C, bh);
        let mut dpre_g = self.ws.take(DPRE_G, b2h);
        let mut tgx = self.ws.take(TGX, i_dim * 2 * h_dim);
        let mut tgh = self.ws.take(TGH, h_dim * 2 * h_dim);
        let mut tcx = self.ws.take(TCX, i_dim * h_dim);
        let mut tch = self.ws.take(TCH, h_dim * h_dim);
        let mut bsum_g = self.ws.take(BSUM_G, 2 * h_dim);
        let mut bsum_c = self.ws.take(BSUM_C, h_dim);
        let mut drh = self.ws.take(DRH, bh);
        let mut dxg = self.ws.take(DXG, bi);
        dh.fill(0.0);

        let w_gx = self.w_gates.rows_view(0..i_dim);
        let w_gh = self.w_gates.rows_view(i_dim..i_dim + h_dim);
        let w_cx = self.w_cand.rows_view(0..i_dim);
        let w_ch = self.w_cand.rows_view(i_dim..i_dim + h_dim);
        let mut input_grads = need_input_grad.then(|| Vec::with_capacity(steps));

        for t in (0..steps).rev() {
            if self.return_sequences {
                for (d, &g) in dh.iter_mut().zip(grad.step(t).as_slice()) {
                    *d += g;
                }
            } else if t == steps - 1 {
                for (d, &g) in dh.iter_mut().zip(grad.step(0).as_slice()) {
                    *d += g;
                }
            }
            let preg_t = &preg_all[t * b2h..(t + 1) * b2h];
            let cand_t = &cand_all[t * bh..(t + 1) * bh];
            let rh_t = &rh_all[t * bh..(t + 1) * bh];
            let x_t = &x_all[t * bi..(t + 1) * bi];
            let h_prev = if t == 0 {
                &zeros[..]
            } else {
                &h_all[(t - 1) * bh..t * bh]
            };
            // Candidate path: dpre_c = (dh∘z) * (1 - h~²), dh_prev = dh∘(1-z).
            for r in 0..batch {
                let gates = &preg_t[r * 2 * h_dim..(r + 1) * 2 * h_dim];
                let row = r * h_dim..(r + 1) * h_dim;
                let it = gates[..h_dim]
                    .iter()
                    .zip(&cand_t[row.clone()])
                    .zip(&dh[row.clone()])
                    .zip(&mut dpre_c[row.clone()])
                    .zip(&mut dhp[row]);
                for ((((&z_v, &ht_v), &dh_v), dpc), dp) in it {
                    *dpc = (dh_v * z_v) * (1.0 - ht_v * ht_v);
                    *dp = dh_v * (1.0 - z_v);
                }
            }
            let dpre_c_ref = MatRef::new(batch, h_dim, &dpre_c);
            kernels::transpose_matmul_into(
                MatRef::new(batch, i_dim, x_t),
                dpre_c_ref,
                MatMut::new(i_dim, h_dim, &mut tcx),
            );
            kernels::transpose_matmul_into(
                MatRef::new(batch, h_dim, rh_t),
                dpre_c_ref,
                MatMut::new(h_dim, h_dim, &mut tch),
            );
            let gwc = self.grad_w_cand.as_mut_slice();
            for (g, &v) in gwc[..i_dim * h_dim].iter_mut().zip(tcx.iter()) {
                *g += v;
            }
            for (g, &v) in gwc[i_dim * h_dim..].iter_mut().zip(tch.iter()) {
                *g += v;
            }
            bsum_c.fill(0.0);
            for r in 0..batch {
                let row = &dpre_c[r * h_dim..(r + 1) * h_dim];
                for (o, &x) in bsum_c.iter_mut().zip(row.iter()) {
                    *o += x;
                }
            }
            for (g, &v) in self
                .grad_b_cand
                .as_mut_slice()
                .iter_mut()
                .zip(bsum_c.iter())
            {
                *g += v;
            }
            kernels::matmul_transpose_into(dpre_c_ref, w_ch, MatMut::new(batch, h_dim, &mut drh));
            // dh_prev += drh∘r; gate gradients from dz and dr = drh∘h_prev.
            for r in 0..batch {
                let gates = &preg_t[r * 2 * h_dim..(r + 1) * 2 * h_dim];
                let dpre_row = &mut dpre_g[r * 2 * h_dim..(r + 1) * 2 * h_dim];
                for j in 0..h_dim {
                    let idx = r * h_dim + j;
                    let (z_v, r_v) = (gates[j], gates[h_dim + j]);
                    let drh_v = drh[idx];
                    dhp[idx] += drh_v * r_v;
                    let dz_v = dh[idx] * (cand_t[idx] - h_prev[idx]);
                    dpre_row[j] = (dz_v * z_v) * (1.0 - z_v);
                    let dr_v = drh_v * h_prev[idx];
                    dpre_row[h_dim + j] = (dr_v * r_v) * (1.0 - r_v);
                }
            }
            let dpre_g_ref = MatRef::new(batch, 2 * h_dim, &dpre_g);
            kernels::transpose_matmul_into(
                MatRef::new(batch, i_dim, x_t),
                dpre_g_ref,
                MatMut::new(i_dim, 2 * h_dim, &mut tgx),
            );
            kernels::transpose_matmul_into(
                MatRef::new(batch, h_dim, h_prev),
                dpre_g_ref,
                MatMut::new(h_dim, 2 * h_dim, &mut tgh),
            );
            let gwg = self.grad_w_gates.as_mut_slice();
            for (g, &v) in gwg[..i_dim * 2 * h_dim].iter_mut().zip(tgx.iter()) {
                *g += v;
            }
            for (g, &v) in gwg[i_dim * 2 * h_dim..].iter_mut().zip(tgh.iter()) {
                *g += v;
            }
            bsum_g.fill(0.0);
            for r in 0..batch {
                let row = &dpre_g[r * 2 * h_dim..(r + 1) * 2 * h_dim];
                for (o, &x) in bsum_g.iter_mut().zip(row.iter()) {
                    *o += x;
                }
            }
            for (g, &v) in self
                .grad_b_gates
                .as_mut_slice()
                .iter_mut()
                .zip(bsum_g.iter())
            {
                *g += v;
            }
            if let Some(grads) = input_grads.as_mut() {
                // input_grads[t] = dx_c + dx_g, summed in that order.
                let mut dx = Matrix::zeros(batch, i_dim);
                kernels::matmul_transpose_into(dpre_c_ref, w_cx, dx.view_mut());
                kernels::matmul_transpose_into(
                    dpre_g_ref,
                    w_gx,
                    MatMut::new(batch, i_dim, &mut dxg),
                );
                for (o, &v) in dx.as_mut_slice().iter_mut().zip(dxg.iter()) {
                    *o += v;
                }
                grads.push(dx);
            }
            // dh_prev += dpre_g @ W_gh^T (full dots, then added).
            kernels::matmul_transpose_acc_into(
                dpre_g_ref,
                w_gh,
                MatMut::new(batch, h_dim, &mut dhp),
            );
            std::mem::swap(&mut dh, &mut dhp);
        }

        self.ws.put(X_ALL, x_all);
        self.ws.put(PREG_ALL, preg_all);
        self.ws.put(CAND_ALL, cand_all);
        self.ws.put(RH_ALL, rh_all);
        self.ws.put(H_ALL, h_all);
        self.ws.put(ZEROS, zeros);
        self.ws.put(DH, dh);
        self.ws.put(DHP, dhp);
        self.ws.put(DPRE_C, dpre_c);
        self.ws.put(DPRE_G, dpre_g);
        self.ws.put(TGX, tgx);
        self.ws.put(TGH, tgh);
        self.ws.put(TCX, tcx);
        self.ws.put(TCH, tch);
        self.ws.put(BSUM_G, bsum_g);
        self.ws.put(BSUM_C, bsum_c);
        self.ws.put(DRH, drh);
        self.ws.put(DXG, dxg);

        input_grads.map(|mut grads| {
            grads.reverse();
            Seq::from_steps(grads)
        })
    }

    /// Immutable access to the parameter tensors
    /// (`w_gates, b_gates, w_cand, b_cand`).
    pub fn params(&self) -> Vec<&Matrix> {
        vec![&self.w_gates, &self.b_gates, &self.w_cand, &self.b_cand]
    }

    /// Parameter/gradient pairs for the optimiser.
    pub fn params_and_grads_mut(&mut self) -> Vec<(&mut Matrix, &mut Matrix)> {
        vec![
            (&mut self.w_gates, &mut self.grad_w_gates),
            (&mut self.b_gates, &mut self.grad_b_gates),
            (&mut self.w_cand, &mut self.grad_w_cand),
            (&mut self.b_cand, &mut self.grad_b_cand),
        ]
    }

    /// Clears accumulated gradients (in place once correctly shaped).
    pub fn zero_grads(&mut self) {
        let pairs = [
            (&mut self.grad_w_gates, self.w_gates.shape()),
            (&mut self.grad_b_gates, self.b_gates.shape()),
            (&mut self.grad_w_cand, self.w_cand.shape()),
            (&mut self.grad_b_cand, self.b_cand.shape()),
        ];
        for (grad, shape) in pairs {
            if grad.shape() == shape {
                grad.as_mut_slice().fill(0.0);
            } else {
                *grad = Matrix::zeros(shape.0, shape.1);
            }
        }
    }

    /// Restores transient state dropped by serde.
    pub(crate) fn rebuild_transient(&mut self) {
        self.zero_grads();
        self.cached_steps = 0;
        self.cached_batch = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shapes() {
        let x = Seq::from_samples(&[
            Matrix::column_vector(&[0.1, 0.2, 0.3]),
            Matrix::column_vector(&[0.4, 0.5, 0.6]),
        ]);
        let mut last = Gru::new_seeded(1, 4, false, 1);
        assert_eq!(last.forward(&x, false).len(), 1);
        let mut all = Gru::new_seeded(1, 4, true, 1);
        let y = all.forward(&x, false);
        assert_eq!(y.len(), 3);
        assert_eq!(y.step(2).shape(), (2, 4));
    }

    #[test]
    fn final_step_equal_between_modes() {
        let x = Seq::from_samples(&[Matrix::column_vector(&[0.3, -0.1, 0.7])]);
        let mut a = Gru::new_seeded(1, 4, false, 9);
        let mut b = Gru::new_seeded(1, 4, true, 9);
        assert_eq!(
            a.forward(&x, false).step(0),
            b.forward(&x, false).last_step()
        );
    }

    #[test]
    fn batch_independence() {
        let s1 = Matrix::column_vector(&[0.2, 0.4, -0.3]);
        let s2 = Matrix::column_vector(&[-0.6, 0.1, 0.9]);
        let mut g = Gru::new_seeded(1, 4, false, 5);
        let joint = g.forward(&Seq::from_samples(&[s1.clone(), s2.clone()]), false);
        let solo1 = g.forward(&Seq::from_samples(&[s1]), false);
        let solo2 = g.forward(&Seq::from_samples(&[s2]), false);
        for j in 0..4 {
            assert!((joint.step(0)[(0, j)] - solo1.step(0)[(0, j)]).abs() < 1e-12);
            assert!((joint.step(0)[(1, j)] - solo2.step(0)[(0, j)]).abs() < 1e-12);
        }
    }

    #[test]
    fn outputs_bounded() {
        // h is a convex combination of tanh values: |h| < 1 always.
        let x = Seq::from_samples(&[Matrix::column_vector(&[50.0, -50.0, 50.0, -50.0])]);
        let mut g = Gru::new_seeded(1, 6, true, 7);
        for step in g.forward(&x, false).iter() {
            assert!(step.max_abs() <= 1.0);
        }
    }

    #[test]
    fn eval_forward_does_not_clobber_training_cache() {
        let x = Seq::from_samples(&[
            Matrix::column_vector(&[0.1, 0.2, 0.3]),
            Matrix::column_vector(&[0.4, 0.5, 0.6]),
        ]);
        let mut with_eval = Gru::new_seeded(1, 4, false, 6);
        let mut plain = Gru::new_seeded(1, 4, false, 6);
        let _ = with_eval.forward(&x, true);
        let _ = plain.forward(&x, true);
        let other = Seq::from_samples(&[Matrix::column_vector(&[0.9, -0.9])]);
        let _ = with_eval.forward(&other, false);
        let g = Seq::single(Matrix::ones(2, 4));
        let dx1 = with_eval.backward(&g);
        let dx2 = plain.backward(&g);
        for t in 0..dx1.len() {
            assert_eq!(dx1.step(t).as_slice(), dx2.step(t).as_slice());
        }
    }

    #[test]
    fn serde_round_trip() {
        let g = Gru::new_seeded(2, 3, true, 11);
        let json = serde_json::to_string(&g).expect("ser");
        let mut back: Gru = serde_json::from_str(&json).expect("de");
        back.rebuild_transient();
        assert_eq!(g.params(), back.params());
    }

    #[test]
    fn param_count() {
        let g = Gru::new_seeded(1, 5, false, 0);
        // w_gates (6x10) + b_gates (10) + w_cand (6x5) + b_cand (5).
        let total: usize = g.params().iter().map(|m| m.len()).sum();
        assert_eq!(total, 60 + 10 + 30 + 5);
    }

    #[test]
    #[should_panic(expected = "input features")]
    fn wrong_width_panics() {
        let mut g = Gru::new_seeded(2, 3, false, 1);
        let _ = g.forward(&Seq::single(Matrix::ones(1, 5)), false);
    }
}
