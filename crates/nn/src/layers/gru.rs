//! GRU layer with full backpropagation through time.

use crate::activation::stable_sigmoid;
use crate::seq::Seq;
use evfad_tensor::{Initializer, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-timestep forward cache for BPTT.
#[derive(Debug, Clone, Default)]
struct StepCache {
    x: Matrix,
    h_prev: Matrix,
    z: Matrix,
    r: Matrix,
    h_tilde: Matrix,
    /// `r ∘ h_prev` (candidate-path recurrent input).
    rh: Matrix,
}

/// A Gated Recurrent Unit layer (Cho et al., 2014).
///
/// ```text
/// z = sigmoid([x | h] W_z + b_z)      r = sigmoid([x | h] W_r + b_r)
/// h~ = tanh([x | r∘h] W_h + b_h)      h' = (1 - z)∘h + z∘h~
/// ```
///
/// Provided as the architecture-ablation counterpart to [`Lstm`](crate::Lstm)
/// (the paper motivates LSTMs; GRUs are the standard lighter alternative in
/// the related federated-forecasting literature). API and `return_sequences`
/// semantics match [`Lstm`](crate::Lstm).
///
/// # Examples
///
/// ```
/// use evfad_nn::{Gru, Seq};
/// use evfad_tensor::Matrix;
///
/// let mut gru = Gru::new_seeded(1, 6, false, 3);
/// let x = Seq::from_samples(&[Matrix::column_vector(&[0.1, -0.4, 0.2])]);
/// let h = gru.forward(&x, false);
/// assert_eq!(h.step(0).shape(), (1, 6));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gru {
    input_dim: usize,
    hidden_dim: usize,
    return_sequences: bool,
    /// Gate kernel over `[x | h]`, shape `(input+hidden) x 2*hidden`,
    /// gate order `[z | r]`.
    w_gates: Matrix,
    /// Gate bias, `1 x 2*hidden`.
    b_gates: Matrix,
    /// Candidate kernel over `[x | r∘h]`, shape `(input+hidden) x hidden`.
    w_cand: Matrix,
    /// Candidate bias, `1 x hidden`.
    b_cand: Matrix,
    #[serde(skip)]
    grad_w_gates: Matrix,
    #[serde(skip)]
    grad_b_gates: Matrix,
    #[serde(skip)]
    grad_w_cand: Matrix,
    #[serde(skip)]
    grad_b_cand: Matrix,
    #[serde(skip)]
    cache: Vec<StepCache>,
}

impl Gru {
    /// Creates a GRU seeded from the thread RNG; prefer [`Gru::new_seeded`].
    pub fn new(input_dim: usize, hidden_dim: usize, return_sequences: bool) -> Self {
        Self::new_with_rng(
            input_dim,
            hidden_dim,
            return_sequences,
            &mut rand::thread_rng(),
        )
    }

    /// Creates a GRU initialised from `rng` (Glorot-uniform kernels).
    pub fn new_with_rng(
        input_dim: usize,
        hidden_dim: usize,
        return_sequences: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let z_dim = input_dim + hidden_dim;
        Self {
            input_dim,
            hidden_dim,
            return_sequences,
            w_gates: Initializer::GlorotUniform.init(z_dim, 2 * hidden_dim, rng),
            b_gates: Matrix::zeros(1, 2 * hidden_dim),
            w_cand: Initializer::GlorotUniform.init(z_dim, hidden_dim, rng),
            b_cand: Matrix::zeros(1, hidden_dim),
            grad_w_gates: Matrix::zeros(z_dim, 2 * hidden_dim),
            grad_b_gates: Matrix::zeros(1, 2 * hidden_dim),
            grad_w_cand: Matrix::zeros(z_dim, hidden_dim),
            grad_b_cand: Matrix::zeros(1, hidden_dim),
            cache: Vec::new(),
        }
    }

    /// Creates a GRU initialised from a fixed seed.
    pub fn new_seeded(
        input_dim: usize,
        hidden_dim: usize,
        return_sequences: bool,
        seed: u64,
    ) -> Self {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Self::new_with_rng(input_dim, hidden_dim, return_sequences, &mut rng)
    }

    /// Re-initialises the weights from `rng`.
    pub fn reinitialize(&mut self, rng: &mut impl Rng) {
        let fresh = Gru::new_with_rng(self.input_dim, self.hidden_dim, self.return_sequences, rng);
        self.w_gates = fresh.w_gates;
        self.b_gates = fresh.b_gates;
        self.w_cand = fresh.w_cand;
        self.b_cand = fresh.b_cand;
    }

    /// Input feature width.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden-state width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Whether the layer emits the full hidden sequence.
    pub fn return_sequences(&self) -> bool {
        self.return_sequences
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if the input feature width differs from `input_dim`.
    pub fn forward(&mut self, input: &Seq, training: bool) -> Seq {
        assert_eq!(
            input.features(),
            self.input_dim,
            "GRU expected {} input features, got {}",
            self.input_dim,
            input.features()
        );
        let batch = input.batch_size();
        let h_dim = self.hidden_dim;
        let mut h = Matrix::zeros(batch, h_dim);
        if training {
            self.cache.clear();
        }
        let mut outputs = Vec::with_capacity(input.len());
        for x_t in input.iter() {
            let xh = x_t.hstack(&h);
            let pre = xh.matmul(&self.w_gates).add_row_broadcast(&self.b_gates);
            let z = pre.slice_cols(0..h_dim).map(stable_sigmoid);
            let r = pre.slice_cols(h_dim..2 * h_dim).map(stable_sigmoid);
            let rh = r.hadamard(&h);
            let xrh = x_t.hstack(&rh);
            let h_tilde = xrh
                .matmul(&self.w_cand)
                .add_row_broadcast(&self.b_cand)
                .map(f64::tanh);
            let h_new = h
                .zip_map(&z, |hv, zv| hv * (1.0 - zv))
                .zip_map(&h_tilde.hadamard(&z), |a, b| a + b);
            if training {
                self.cache.push(StepCache {
                    x: x_t.clone(),
                    h_prev: h.clone(),
                    z,
                    r,
                    h_tilde,
                    rh,
                });
            }
            h = h_new;
            if self.return_sequences {
                outputs.push(h.clone());
            }
        }
        if self.return_sequences {
            Seq::from_steps(outputs)
        } else {
            Seq::single(h)
        }
    }

    /// Backward pass through time; see [`Lstm::backward`](crate::Lstm::backward)
    /// for the gradient-shape contract.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding training-mode forward pass.
    pub fn backward(&mut self, grad: &Seq) -> Seq {
        let steps = self.cache.len();
        assert!(steps > 0, "backward requires a training forward pass");
        if self.return_sequences {
            assert_eq!(grad.len(), steps, "gradient length mismatch");
        } else {
            assert_eq!(grad.len(), 1, "single-step gradient expected");
        }
        let h_dim = self.hidden_dim;
        let batch = grad.step(0).rows();
        let mut dh_next = Matrix::zeros(batch, h_dim);
        let mut input_grads = vec![Matrix::zeros(batch, self.input_dim); steps];

        for t in (0..steps).rev() {
            let cache = &self.cache[t];
            let mut dh = dh_next.clone();
            if self.return_sequences {
                dh += grad.step(t);
            } else if t == steps - 1 {
                dh += grad.step(0);
            }
            // h' = (1 - z)∘h_prev + z∘h~
            let dz = dh.hadamard(&cache.h_tilde.zip_map(&cache.h_prev, |a, b| a - b));
            let dh_tilde = dh.hadamard(&cache.z);
            let mut dh_prev = dh.zip_map(&cache.z, |dv, zv| dv * (1.0 - zv));
            // Candidate path.
            let dpre_c = dh_tilde.zip_map(&cache.h_tilde, |d, y| d * (1.0 - y * y));
            let xrh = cache.x.hstack(&cache.rh);
            self.grad_w_cand += &xrh.transpose_matmul(&dpre_c);
            self.grad_b_cand += &dpre_c.sum_rows();
            let dxrh = dpre_c.matmul_transpose(&self.w_cand);
            let dx_c = dxrh.slice_cols(0..self.input_dim);
            let drh = dxrh.slice_cols(self.input_dim..self.input_dim + h_dim);
            let dr = drh.hadamard(&cache.h_prev);
            dh_prev += &drh.hadamard(&cache.r);
            // Gate path.
            let dpre_z = dz.zip_map(&cache.z, |d, y| d * y * (1.0 - y));
            let dpre_r = dr.zip_map(&cache.r, |d, y| d * y * (1.0 - y));
            let dpre_g = dpre_z.hstack(&dpre_r);
            let xh = cache.x.hstack(&cache.h_prev);
            self.grad_w_gates += &xh.transpose_matmul(&dpre_g);
            self.grad_b_gates += &dpre_g.sum_rows();
            let dxh = dpre_g.matmul_transpose(&self.w_gates);
            let dx_g = dxh.slice_cols(0..self.input_dim);
            dh_prev += &dxh.slice_cols(self.input_dim..self.input_dim + h_dim);

            input_grads[t] = &dx_c + &dx_g;
            dh_next = dh_prev;
        }
        Seq::from_steps(input_grads)
    }

    /// Immutable access to the parameter tensors
    /// (`w_gates, b_gates, w_cand, b_cand`).
    pub fn params(&self) -> Vec<&Matrix> {
        vec![&self.w_gates, &self.b_gates, &self.w_cand, &self.b_cand]
    }

    /// Parameter/gradient pairs for the optimiser.
    pub fn params_and_grads_mut(&mut self) -> Vec<(&mut Matrix, &mut Matrix)> {
        vec![
            (&mut self.w_gates, &mut self.grad_w_gates),
            (&mut self.b_gates, &mut self.grad_b_gates),
            (&mut self.w_cand, &mut self.grad_w_cand),
            (&mut self.b_cand, &mut self.grad_b_cand),
        ]
    }

    /// Clears accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.grad_w_gates = Matrix::zeros(self.w_gates.rows(), self.w_gates.cols());
        self.grad_b_gates = Matrix::zeros(1, self.b_gates.cols());
        self.grad_w_cand = Matrix::zeros(self.w_cand.rows(), self.w_cand.cols());
        self.grad_b_cand = Matrix::zeros(1, self.b_cand.cols());
    }

    /// Restores transient state dropped by serde.
    pub(crate) fn rebuild_transient(&mut self) {
        self.zero_grads();
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shapes() {
        let x = Seq::from_samples(&[
            Matrix::column_vector(&[0.1, 0.2, 0.3]),
            Matrix::column_vector(&[0.4, 0.5, 0.6]),
        ]);
        let mut last = Gru::new_seeded(1, 4, false, 1);
        assert_eq!(last.forward(&x, false).len(), 1);
        let mut all = Gru::new_seeded(1, 4, true, 1);
        let y = all.forward(&x, false);
        assert_eq!(y.len(), 3);
        assert_eq!(y.step(2).shape(), (2, 4));
    }

    #[test]
    fn final_step_equal_between_modes() {
        let x = Seq::from_samples(&[Matrix::column_vector(&[0.3, -0.1, 0.7])]);
        let mut a = Gru::new_seeded(1, 4, false, 9);
        let mut b = Gru::new_seeded(1, 4, true, 9);
        assert_eq!(
            a.forward(&x, false).step(0),
            b.forward(&x, false).last_step()
        );
    }

    #[test]
    fn batch_independence() {
        let s1 = Matrix::column_vector(&[0.2, 0.4, -0.3]);
        let s2 = Matrix::column_vector(&[-0.6, 0.1, 0.9]);
        let mut g = Gru::new_seeded(1, 4, false, 5);
        let joint = g.forward(&Seq::from_samples(&[s1.clone(), s2.clone()]), false);
        let solo1 = g.forward(&Seq::from_samples(&[s1]), false);
        let solo2 = g.forward(&Seq::from_samples(&[s2]), false);
        for j in 0..4 {
            assert!((joint.step(0)[(0, j)] - solo1.step(0)[(0, j)]).abs() < 1e-12);
            assert!((joint.step(0)[(1, j)] - solo2.step(0)[(0, j)]).abs() < 1e-12);
        }
    }

    #[test]
    fn outputs_bounded() {
        // h is a convex combination of tanh values: |h| < 1 always.
        let x = Seq::from_samples(&[Matrix::column_vector(&[50.0, -50.0, 50.0, -50.0])]);
        let mut g = Gru::new_seeded(1, 6, true, 7);
        for step in g.forward(&x, false).iter() {
            assert!(step.max_abs() <= 1.0);
        }
    }

    #[test]
    fn serde_round_trip() {
        let g = Gru::new_seeded(2, 3, true, 11);
        let json = serde_json::to_string(&g).expect("ser");
        let mut back: Gru = serde_json::from_str(&json).expect("de");
        back.rebuild_transient();
        assert_eq!(g.params(), back.params());
    }

    #[test]
    fn param_count() {
        let g = Gru::new_seeded(1, 5, false, 0);
        // w_gates (6x10) + b_gates (10) + w_cand (6x5) + b_cand (5).
        let total: usize = g.params().iter().map(|m| m.len()).sum();
        assert_eq!(total, 60 + 10 + 30 + 5);
    }

    #[test]
    #[should_panic(expected = "input features")]
    fn wrong_width_panics() {
        let mut g = Gru::new_seeded(2, 3, false, 1);
        let _ = g.forward(&Seq::single(Matrix::ones(1, 5)), false);
    }
}
