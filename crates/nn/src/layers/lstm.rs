//! LSTM layer with full backpropagation through time.

use crate::activation::stable_sigmoid;
use crate::seq::Seq;
use evfad_tensor::{Initializer, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-timestep forward cache used by BPTT.
#[derive(Debug, Clone, Default)]
struct StepCache {
    /// Concatenated `[x_t | h_{t-1}]`, shape `batch x (input + hidden)`.
    z: Matrix,
    /// Gate activations, each `batch x hidden`.
    i: Matrix,
    f: Matrix,
    g: Matrix,
    o: Matrix,
    /// `tanh` of the cell state after the step.
    tanh_c: Matrix,
    /// Cell state before the step.
    c_prev: Matrix,
}

/// A Long Short-Term Memory layer.
///
/// Implements the standard gate equations
///
/// ```text
/// i = sigmoid(z W_i + b_i)    f = sigmoid(z W_f + b_f)
/// g = tanh(z W_g + b_g)       o = sigmoid(z W_o + b_o)
/// c_t = f * c_{t-1} + i * g   h_t = o * tanh(c_t)
/// ```
///
/// with `z = [x_t | h_{t-1}]` and a combined kernel
/// `W : (input+hidden) x 4*hidden` in gate order `[i | f | g | o]`.
/// Following Keras defaults the kernel is Glorot-uniform and the forget-gate
/// bias is initialised to one (`unit_forget_bias`).
///
/// With `return_sequences = true` the output has one step per input step
/// (used to stack LSTMs in the paper's autoencoder); otherwise the output is
/// a single-step [`Seq`] holding the final hidden state.
///
/// # Examples
///
/// ```
/// use evfad_nn::{Lstm, Seq};
/// use evfad_tensor::Matrix;
///
/// let mut lstm = Lstm::new_seeded(1, 8, false, 42);
/// let x = Seq::from_samples(&[Matrix::column_vector(&[0.1, 0.2, 0.3])]);
/// let h = lstm.forward(&x, false);
/// assert_eq!(h.len(), 1);
/// assert_eq!(h.step(0).shape(), (1, 8));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lstm {
    input_dim: usize,
    hidden_dim: usize,
    return_sequences: bool,
    /// Combined kernel over `[x | h]`, shape `(input+hidden) x 4*hidden`.
    w: Matrix,
    /// Bias, shape `1 x 4*hidden`.
    b: Matrix,
    #[serde(skip)]
    grad_w: Matrix,
    #[serde(skip)]
    grad_b: Matrix,
    #[serde(skip)]
    cache: Vec<StepCache>,
}

impl Lstm {
    /// Creates an LSTM seeded from the thread RNG. Prefer
    /// [`Lstm::new_seeded`] for reproducibility;
    /// [`Sequential::with`](crate::Sequential::with) reseeds adopted layers.
    pub fn new(input_dim: usize, hidden_dim: usize, return_sequences: bool) -> Self {
        Self::new_with_rng(
            input_dim,
            hidden_dim,
            return_sequences,
            &mut rand::thread_rng(),
        )
    }

    /// Creates an LSTM initialised from `rng`.
    pub fn new_with_rng(
        input_dim: usize,
        hidden_dim: usize,
        return_sequences: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let z_dim = input_dim + hidden_dim;
        let w = Initializer::GlorotUniform.init(z_dim, 4 * hidden_dim, rng);
        let mut b = Matrix::zeros(1, 4 * hidden_dim);
        // unit_forget_bias: the f-gate block starts at 1.0.
        for j in hidden_dim..2 * hidden_dim {
            b[(0, j)] = 1.0;
        }
        Self {
            input_dim,
            hidden_dim,
            return_sequences,
            w,
            b,
            grad_w: Matrix::zeros(z_dim, 4 * hidden_dim),
            grad_b: Matrix::zeros(1, 4 * hidden_dim),
            cache: Vec::new(),
        }
    }

    /// Creates an LSTM initialised from a fixed seed.
    pub fn new_seeded(
        input_dim: usize,
        hidden_dim: usize,
        return_sequences: bool,
        seed: u64,
    ) -> Self {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Self::new_with_rng(input_dim, hidden_dim, return_sequences, &mut rng)
    }

    /// Re-initialises the weights from `rng`.
    pub fn reinitialize(&mut self, rng: &mut impl Rng) {
        let fresh = Lstm::new_with_rng(self.input_dim, self.hidden_dim, self.return_sequences, rng);
        self.w = fresh.w;
        self.b = fresh.b;
    }

    /// Input feature width.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden-state width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Whether the layer emits the full hidden sequence.
    pub fn return_sequences(&self) -> bool {
        self.return_sequences
    }

    /// Forward pass over a batched sequence.
    ///
    /// # Panics
    ///
    /// Panics if the input feature width differs from `input_dim`.
    pub fn forward(&mut self, input: &Seq, training: bool) -> Seq {
        assert_eq!(
            input.features(),
            self.input_dim,
            "LSTM expected {} input features, got {}",
            self.input_dim,
            input.features()
        );
        let batch = input.batch_size();
        let h_dim = self.hidden_dim;
        let mut h = Matrix::zeros(batch, h_dim);
        let mut c = Matrix::zeros(batch, h_dim);
        if training {
            self.cache.clear();
        }
        let mut outputs = Vec::with_capacity(input.len());
        for x_t in input.iter() {
            let z = x_t.hstack(&h);
            let pre = z.matmul(&self.w).add_row_broadcast(&self.b);
            let i = pre.slice_cols(0..h_dim).map(stable_sigmoid);
            let f = pre.slice_cols(h_dim..2 * h_dim).map(stable_sigmoid);
            let g = pre.slice_cols(2 * h_dim..3 * h_dim).map(f64::tanh);
            let o = pre.slice_cols(3 * h_dim..4 * h_dim).map(stable_sigmoid);
            let c_prev = c.clone();
            c = f.hadamard(&c_prev).zip_map(&i.hadamard(&g), |a, b| a + b);
            let tanh_c = c.map(f64::tanh);
            h = o.hadamard(&tanh_c);
            if training {
                self.cache.push(StepCache {
                    z,
                    i,
                    f,
                    g,
                    o,
                    tanh_c: tanh_c.clone(),
                    c_prev,
                });
            }
            if self.return_sequences {
                outputs.push(h.clone());
            }
        }
        if self.return_sequences {
            Seq::from_steps(outputs)
        } else {
            Seq::single(h)
        }
    }

    /// Backward pass through time.
    ///
    /// `grad` must match the forward output shape: one step per input step
    /// when `return_sequences`, otherwise a single step (gradient of the
    /// final hidden state). Returns the gradient with respect to the input
    /// sequence and accumulates kernel/bias gradients.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding training-mode forward pass.
    pub fn backward(&mut self, grad: &Seq) -> Seq {
        let steps = self.cache.len();
        assert!(steps > 0, "backward requires a training forward pass");
        if self.return_sequences {
            assert_eq!(grad.len(), steps, "gradient length mismatch");
        } else {
            assert_eq!(grad.len(), 1, "single-step gradient expected");
        }
        let h_dim = self.hidden_dim;
        let batch = grad.step(0).rows();
        let mut dh_next = Matrix::zeros(batch, h_dim);
        let mut dc_next = Matrix::zeros(batch, h_dim);
        let mut input_grads = vec![Matrix::zeros(batch, self.input_dim); steps];

        for t in (0..steps).rev() {
            let cache = &self.cache[t];
            let mut dh = dh_next.clone();
            if self.return_sequences {
                dh += grad.step(t);
            } else if t == steps - 1 {
                dh += grad.step(0);
            }
            // h = o * tanh(c)
            let d_o = dh.hadamard(&cache.tanh_c);
            let mut dc = dh
                .hadamard(&cache.o)
                .zip_map(&cache.tanh_c, |v, tc| v * (1.0 - tc * tc));
            dc += &dc_next;
            // c = f*c_prev + i*g
            let d_i = dc.hadamard(&cache.g);
            let d_f = dc.hadamard(&cache.c_prev);
            let d_g = dc.hadamard(&cache.i);
            dc_next = dc.hadamard(&cache.f);
            // Through the gate nonlinearities.
            let dp_i = d_i.zip_map(&cache.i, |d, y| d * y * (1.0 - y));
            let dp_f = d_f.zip_map(&cache.f, |d, y| d * y * (1.0 - y));
            let dp_g = d_g.zip_map(&cache.g, |d, y| d * (1.0 - y * y));
            let dp_o = d_o.zip_map(&cache.o, |d, y| d * y * (1.0 - y));
            let dpre = dp_i.hstack(&dp_f).hstack(&dp_g).hstack(&dp_o);
            // Parameter gradients.
            self.grad_w += &cache.z.transpose_matmul(&dpre);
            self.grad_b += &dpre.sum_rows();
            // Through the concatenation z = [x | h_prev].
            let dz = dpre.matmul_transpose(&self.w);
            input_grads[t] = dz.slice_cols(0..self.input_dim);
            dh_next = dz.slice_cols(self.input_dim..self.input_dim + h_dim);
        }
        Seq::from_steps(input_grads)
    }

    /// Immutable access to `(kernel, bias)`.
    pub fn params(&self) -> Vec<&Matrix> {
        vec![&self.w, &self.b]
    }

    /// Parameter/gradient pairs for the optimiser.
    pub fn params_and_grads_mut(&mut self) -> Vec<(&mut Matrix, &mut Matrix)> {
        vec![
            (&mut self.w, &mut self.grad_w),
            (&mut self.b, &mut self.grad_b),
        ]
    }

    /// Clears accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.grad_w = Matrix::zeros(self.w.rows(), self.w.cols());
        self.grad_b = Matrix::zeros(1, self.b.cols());
    }

    /// Restores transient state dropped by serde.
    pub(crate) fn rebuild_transient(&mut self) {
        self.zero_grads();
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shapes_respect_return_sequences() {
        let x = Seq::from_samples(&[
            Matrix::column_vector(&[0.1, 0.2, 0.3, 0.4]),
            Matrix::column_vector(&[0.5, 0.6, 0.7, 0.8]),
        ]);
        let mut last_only = Lstm::new_seeded(1, 5, false, 1);
        let y = last_only.forward(&x, false);
        assert_eq!(y.len(), 1);
        assert_eq!(y.step(0).shape(), (2, 5));

        let mut all = Lstm::new_seeded(1, 5, true, 1);
        let y = all.forward(&x, false);
        assert_eq!(y.len(), 4);
        assert_eq!(y.step(3).shape(), (2, 5));
    }

    #[test]
    fn final_step_equal_between_modes() {
        let x = Seq::from_samples(&[Matrix::column_vector(&[0.3, -0.1, 0.7])]);
        let mut a = Lstm::new_seeded(1, 4, false, 9);
        let mut b = Lstm::new_seeded(1, 4, true, 9);
        let ya = a.forward(&x, false);
        let yb = b.forward(&x, false);
        assert_eq!(ya.step(0), yb.last_step());
    }

    #[test]
    fn hidden_state_resets_between_calls() {
        let x = Seq::from_samples(&[Matrix::column_vector(&[0.5, 0.5])]);
        let mut l = Lstm::new_seeded(1, 3, false, 2);
        let y1 = l.forward(&x, false);
        let y2 = l.forward(&x, false);
        assert_eq!(y1.step(0), y2.step(0));
    }

    #[test]
    fn forget_bias_initialised_to_one() {
        let l = Lstm::new_seeded(2, 3, false, 4);
        let b = l.params()[1];
        for j in 0..3 {
            assert_eq!(b[(0, j)], 0.0); // i
            assert_eq!(b[(0, 3 + j)], 1.0); // f
            assert_eq!(b[(0, 6 + j)], 0.0); // g
            assert_eq!(b[(0, 9 + j)], 0.0); // o
        }
    }

    #[test]
    fn outputs_bounded_by_gate_ranges() {
        // |h| <= |o| * |tanh(c)| < 1 for bounded inputs over few steps.
        let x = Seq::from_samples(&[Matrix::column_vector(&[10.0, -10.0, 10.0])]);
        let mut l = Lstm::new_seeded(1, 6, true, 7);
        let y = l.forward(&x, false);
        for step in y.iter() {
            assert!(step.max_abs() < 3.0, "hidden state out of expected range");
        }
    }

    #[test]
    fn batch_independence() {
        // Processing two samples in one batch must equal processing them alone.
        let s1 = Matrix::column_vector(&[0.2, 0.4, -0.3]);
        let s2 = Matrix::column_vector(&[-0.6, 0.1, 0.9]);
        let mut l = Lstm::new_seeded(1, 4, false, 5);
        let joint = l.forward(&Seq::from_samples(&[s1.clone(), s2.clone()]), false);
        let solo1 = l.forward(&Seq::from_samples(&[s1]), false);
        let solo2 = l.forward(&Seq::from_samples(&[s2]), false);
        for j in 0..4 {
            assert!((joint.step(0)[(0, j)] - solo1.step(0)[(0, j)]).abs() < 1e-12);
            assert!((joint.step(0)[(1, j)] - solo2.step(0)[(0, j)]).abs() < 1e-12);
        }
    }

    #[test]
    fn backward_produces_input_grad_of_right_shape() {
        let x = Seq::from_samples(&[
            Matrix::column_vector(&[0.1, 0.2, 0.3]),
            Matrix::column_vector(&[0.4, 0.5, 0.6]),
        ]);
        let mut l = Lstm::new_seeded(1, 4, false, 6);
        let y = l.forward(&x, true);
        let g = Seq::single(Matrix::ones(2, 4));
        let dx = l.backward(&g);
        assert_eq!(dx.len(), 3);
        assert_eq!(dx.step(0).shape(), (2, 1));
        assert!(dx.is_finite());
        let _ = y;
    }

    #[test]
    fn serde_round_trip() {
        let l = Lstm::new_seeded(2, 3, true, 11);
        let json = serde_json::to_string(&l).expect("serialize");
        let mut back: Lstm = serde_json::from_str(&json).expect("deserialize");
        back.rebuild_transient();
        assert_eq!(l.params()[0], back.params()[0]);
        assert_eq!(l.params()[1], back.params()[1]);
        assert_eq!(back.return_sequences(), true);
    }

    #[test]
    #[should_panic(expected = "input features")]
    fn wrong_feature_width_panics() {
        let mut l = Lstm::new_seeded(2, 3, false, 1);
        let x = Seq::single(Matrix::ones(1, 5));
        let _ = l.forward(&x, false);
    }
}
