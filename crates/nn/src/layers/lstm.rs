//! LSTM layer with full backpropagation through time.
//!
//! The hot path is fused and allocation-free: all per-timestep state
//! (pre-activations, gates, cell/hidden trajectories) lives in a reusable
//! [`Workspace`] arena, the input projection for every timestep is batched
//! into one `(T*B) x 4H` GEMM, and the combined kernel is addressed through
//! zero-copy `W_x`/`W_h` row views instead of per-step `hstack`. Every
//! floating-point expression reproduces the original allocating
//! implementation bitwise (see DESIGN.md §6 for the summation-order
//! argument), so the golden fixture is unaffected.

use crate::activation::stable_sigmoid;
use crate::seq::Seq;
use crate::workspace::Workspace;
use evfad_tensor::{kernels, Initializer, MatMut, MatRef, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

// Workspace slot layout. Forward slots double as the BPTT cache; eval-mode
// forwards use the same layout at `EVAL_BASE` so they never clobber a
// pending training cache.
const X_ALL: usize = 0; // (T*B) x I   input steps, contiguous
const PRE_ALL: usize = 1; // (T*B) x 4H  pre-activations, then gates in place
const C_ALL: usize = 2; // (T*B) x H   cell states
const TANH_ALL: usize = 3; // (T*B) x H   tanh(c)
const H_ALL: usize = 4; // (T*B) x H   hidden states
const ZEROS: usize = 5; // B x H       zero h_-1 / c_-1 (re-zeroed per call)
const DH: usize = 6; // B x H       running dh
const DC: usize = 7; // B x H       running dc
const DPRE: usize = 8; // B x 4H      per-step pre-activation gradient
const TW_X: usize = 9; // I x 4H      x^T @ dpre staging
const TW_H: usize = 10; // H x 4H      h^T @ dpre staging
const BSUM: usize = 11; // 1 x 4H      column sums of dpre
const WXT: usize = 12; // 4H x I      W_x^T, staged once per backward
const WHT: usize = 13; // 4H x H      W_h^T, staged once per backward
const EVAL_BASE: usize = 16;

/// A Long Short-Term Memory layer.
///
/// Implements the standard gate equations
///
/// ```text
/// i = sigmoid(z W_i + b_i)    f = sigmoid(z W_f + b_f)
/// g = tanh(z W_g + b_g)       o = sigmoid(z W_o + b_o)
/// c_t = f * c_{t-1} + i * g   h_t = o * tanh(c_t)
/// ```
///
/// with `z = [x_t | h_{t-1}]` and a combined kernel
/// `W : (input+hidden) x 4*hidden` in gate order `[i | f | g | o]`.
/// Following Keras defaults the kernel is Glorot-uniform and the forget-gate
/// bias is initialised to one (`unit_forget_bias`).
///
/// With `return_sequences = true` the output has one step per input step
/// (used to stack LSTMs in the paper's autoencoder); otherwise the output is
/// a single-step [`Seq`] holding the final hidden state.
///
/// # Examples
///
/// ```
/// use evfad_nn::{Lstm, Seq};
/// use evfad_tensor::Matrix;
///
/// let mut lstm = Lstm::new_seeded(1, 8, false, 42);
/// let x = Seq::from_samples(&[Matrix::column_vector(&[0.1, 0.2, 0.3])]);
/// let h = lstm.forward(&x, false);
/// assert_eq!(h.len(), 1);
/// assert_eq!(h.step(0).shape(), (1, 8));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lstm {
    input_dim: usize,
    hidden_dim: usize,
    return_sequences: bool,
    /// Combined kernel over `[x | h]`, shape `(input+hidden) x 4*hidden`.
    w: Matrix,
    /// Bias, shape `1 x 4*hidden`.
    b: Matrix,
    #[serde(skip)]
    grad_w: Matrix,
    #[serde(skip)]
    grad_b: Matrix,
    #[serde(skip)]
    ws: Workspace,
    /// Timesteps cached by the last training forward (0 = no cache).
    #[serde(skip)]
    cached_steps: usize,
    #[serde(skip)]
    cached_batch: usize,
}

impl Lstm {
    /// Creates an LSTM seeded from the thread RNG. Prefer
    /// [`Lstm::new_seeded`] for reproducibility;
    /// [`Sequential::with`](crate::Sequential::with) reseeds adopted layers.
    pub fn new(input_dim: usize, hidden_dim: usize, return_sequences: bool) -> Self {
        Self::new_with_rng(
            input_dim,
            hidden_dim,
            return_sequences,
            &mut rand::thread_rng(),
        )
    }

    /// Creates an LSTM initialised from `rng`.
    pub fn new_with_rng(
        input_dim: usize,
        hidden_dim: usize,
        return_sequences: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let z_dim = input_dim + hidden_dim;
        let w = Initializer::GlorotUniform.init(z_dim, 4 * hidden_dim, rng);
        let mut b = Matrix::zeros(1, 4 * hidden_dim);
        // unit_forget_bias: the f-gate block starts at 1.0.
        for j in hidden_dim..2 * hidden_dim {
            b[(0, j)] = 1.0;
        }
        Self {
            input_dim,
            hidden_dim,
            return_sequences,
            w,
            b,
            grad_w: Matrix::zeros(z_dim, 4 * hidden_dim),
            grad_b: Matrix::zeros(1, 4 * hidden_dim),
            ws: Workspace::new(),
            cached_steps: 0,
            cached_batch: 0,
        }
    }

    /// Creates an LSTM initialised from a fixed seed.
    pub fn new_seeded(
        input_dim: usize,
        hidden_dim: usize,
        return_sequences: bool,
        seed: u64,
    ) -> Self {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Self::new_with_rng(input_dim, hidden_dim, return_sequences, &mut rng)
    }

    /// Re-initialises the weights from `rng`.
    pub fn reinitialize(&mut self, rng: &mut impl Rng) {
        let fresh = Lstm::new_with_rng(self.input_dim, self.hidden_dim, self.return_sequences, rng);
        self.w = fresh.w;
        self.b = fresh.b;
    }

    /// Input feature width.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden-state width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Whether the layer emits the full hidden sequence.
    pub fn return_sequences(&self) -> bool {
        self.return_sequences
    }

    /// Forward pass over a batched sequence.
    ///
    /// # Panics
    ///
    /// Panics if the input feature width differs from `input_dim`.
    pub fn forward(&mut self, input: &Seq, training: bool) -> Seq {
        let (steps, batch) = self.forward_core(input, training);
        let base = if training { 0 } else { EVAL_BASE };
        let (h_dim, bh) = (self.hidden_dim, batch * self.hidden_dim);
        // Re-take the hidden trajectory the core just put back: same length,
        // so the workspace hands the buffer back with contents intact.
        let h_all = self.ws.take(base + H_ALL, steps * bh);
        let out = if self.return_sequences {
            Seq::from_steps(
                (0..steps)
                    .map(|t| Matrix::from_vec(batch, h_dim, h_all[t * bh..(t + 1) * bh].to_vec()))
                    .collect(),
            )
        } else {
            Seq::single(Matrix::from_vec(
                batch,
                h_dim,
                h_all[(steps - 1) * bh..].to_vec(),
            ))
        };
        self.ws.put(base + H_ALL, h_all);
        out
    }

    /// Eval-mode forward that writes the output into a reusable buffer.
    ///
    /// Runs the exact fused forward ([`Lstm::forward`] with
    /// `training = false` — bitwise identical activations) but copies the
    /// hidden trajectory into `out` instead of materialising fresh step
    /// matrices, so a warm caller allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics if the input feature width differs from `input_dim`.
    pub fn forward_into(&mut self, input: &Seq, out: &mut crate::seq::SeqBuf) {
        let (steps, batch) = self.forward_core(input, false);
        let (h_dim, bh) = (self.hidden_dim, batch * self.hidden_dim);
        let h_all = self.ws.take(EVAL_BASE + H_ALL, steps * bh);
        let (o_steps, first) = if self.return_sequences {
            (steps, 0)
        } else {
            (1, steps - 1)
        };
        let seq = out.ensure(o_steps, batch, h_dim);
        for t in 0..o_steps {
            seq.step_data_mut(t)
                .copy_from_slice(&h_all[(first + t) * bh..(first + t + 1) * bh]);
        }
        self.ws.put(EVAL_BASE + H_ALL, h_all);
    }

    /// The fused forward computation: fills the workspace trajectories and
    /// caches BPTT state when `training`, leaving output materialisation to
    /// the caller. Returns `(steps, batch)`.
    fn forward_core(&mut self, input: &Seq, training: bool) -> (usize, usize) {
        assert_eq!(
            input.features(),
            self.input_dim,
            "LSTM expected {} input features, got {}",
            self.input_dim,
            input.features()
        );
        // Eval forwards run the same fused path in a disjoint slot range so
        // an in-flight training cache survives them.
        let base = if training { 0 } else { EVAL_BASE };
        let steps = input.len();
        let batch = input.batch_size();
        let (i_dim, h_dim) = (self.input_dim, self.hidden_dim);
        let (bi, bh, b4h) = (batch * i_dim, batch * h_dim, batch * 4 * h_dim);

        let mut x_all = self.ws.take(base + X_ALL, steps * bi);
        let mut pre_all = self.ws.take(base + PRE_ALL, steps * b4h);
        let mut c_all = self.ws.take(base + C_ALL, steps * bh);
        let mut tanh_all = self.ws.take(base + TANH_ALL, steps * bh);
        let mut h_all = self.ws.take(base + H_ALL, steps * bh);
        let mut zeros = self.ws.take(base + ZEROS, bh);
        zeros.fill(0.0);

        for (t, x_t) in input.iter().enumerate() {
            x_all[t * bi..(t + 1) * bi].copy_from_slice(x_t.as_slice());
        }
        // Batched input projection: accumulating the x-columns first and the
        // h-columns second reproduces the `[x|h] @ W` summation order, so
        // this is bitwise identical to the per-step concatenated product.
        kernels::matmul_into(
            MatRef::new(steps * batch, i_dim, &x_all),
            self.w.rows_view(0..i_dim),
            MatMut::new(steps * batch, 4 * h_dim, &mut pre_all),
        );
        let w_h = self.w.rows_view(i_dim..i_dim + h_dim);

        for t in 0..steps {
            let (h_done, h_rest) = h_all.split_at_mut(t * bh);
            let h_prev = if t == 0 {
                &zeros[..]
            } else {
                &h_done[(t - 1) * bh..]
            };
            let pre_t = &mut pre_all[t * b4h..(t + 1) * b4h];
            kernels::matmul_acc_into(
                MatRef::new(batch, h_dim, h_prev),
                w_h,
                MatMut::new(batch, 4 * h_dim, pre_t),
            );
            kernels::add_row_broadcast_into(MatMut::new(batch, 4 * h_dim, pre_t), self.b.view());
            // Fused gate nonlinearities + cell/hidden update, single pass.
            let (c_done, c_rest) = c_all.split_at_mut(t * bh);
            let c_prev = if t == 0 {
                &zeros[..]
            } else {
                &c_done[(t - 1) * bh..]
            };
            let c_t = &mut c_rest[..bh];
            let tanh_t = &mut tanh_all[t * bh..(t + 1) * bh];
            let h_t = &mut h_rest[..bh];
            for r in 0..batch {
                let gates = &mut pre_t[r * 4 * h_dim..(r + 1) * 4 * h_dim];
                let (gi, rest) = gates.split_at_mut(h_dim);
                let (gf, rest) = rest.split_at_mut(h_dim);
                let (gg, go) = rest.split_at_mut(h_dim);
                let row = r * h_dim..(r + 1) * h_dim;
                let it = gi
                    .iter_mut()
                    .zip(gf.iter_mut())
                    .zip(gg.iter_mut())
                    .zip(go.iter_mut())
                    .zip(&c_prev[row.clone()])
                    .zip(&mut c_t[row.clone()])
                    .zip(&mut tanh_t[row.clone()])
                    .zip(&mut h_t[row]);
                for (((((((iv, fv), gv), ov), &cp), ct), tt), ht) in it {
                    let i_v = stable_sigmoid(*iv);
                    let f_v = stable_sigmoid(*fv);
                    let g_v = gv.tanh();
                    let o_v = stable_sigmoid(*ov);
                    *iv = i_v;
                    *fv = f_v;
                    *gv = g_v;
                    *ov = o_v;
                    let c_v = (f_v * cp) + (i_v * g_v);
                    let tc = c_v.tanh();
                    *ct = c_v;
                    *tt = tc;
                    *ht = o_v * tc;
                }
            }
        }

        self.ws.put(base + X_ALL, x_all);
        self.ws.put(base + PRE_ALL, pre_all);
        self.ws.put(base + C_ALL, c_all);
        self.ws.put(base + TANH_ALL, tanh_all);
        self.ws.put(base + H_ALL, h_all);
        self.ws.put(base + ZEROS, zeros);
        if training {
            self.cached_steps = steps;
            self.cached_batch = batch;
        }
        (steps, batch)
    }

    /// Backward pass through time.
    ///
    /// `grad` must match the forward output shape: one step per input step
    /// when `return_sequences`, otherwise a single step (gradient of the
    /// final hidden state). Returns the gradient with respect to the input
    /// sequence and accumulates kernel/bias gradients.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding training-mode forward pass.
    pub fn backward(&mut self, grad: &Seq) -> Seq {
        self.backward_input(grad, true)
            .expect("input gradient requested")
    }

    /// [`Lstm::backward`] with an optional input-gradient computation.
    ///
    /// Passing `need_input_grad = false` skips the `dpre @ W_x^T` product
    /// per step (the first layer of a model discards that gradient anyway)
    /// and returns `None`. Parameter gradients are always accumulated.
    pub fn backward_input(&mut self, grad: &Seq, need_input_grad: bool) -> Option<Seq> {
        let steps = self.cached_steps;
        assert!(steps > 0, "backward requires a training forward pass");
        if self.return_sequences {
            assert_eq!(grad.len(), steps, "gradient length mismatch");
        } else {
            assert_eq!(grad.len(), 1, "single-step gradient expected");
        }
        let (i_dim, h_dim) = (self.input_dim, self.hidden_dim);
        let batch = self.cached_batch;
        let (bi, bh, b4h) = (batch * i_dim, batch * h_dim, batch * 4 * h_dim);

        let x_all = self.ws.take(X_ALL, steps * bi);
        let pre_all = self.ws.take(PRE_ALL, steps * b4h);
        let c_all = self.ws.take(C_ALL, steps * bh);
        let tanh_all = self.ws.take(TANH_ALL, steps * bh);
        let h_all = self.ws.take(H_ALL, steps * bh);
        let zeros = self.ws.take(ZEROS, bh);
        let mut dh = self.ws.take(DH, bh);
        let mut dc = self.ws.take(DC, bh);
        let mut dpre = self.ws.take(DPRE, b4h);
        let mut tw_x = self.ws.take(TW_X, i_dim * 4 * h_dim);
        let mut tw_h = self.ws.take(TW_H, h_dim * 4 * h_dim);
        let mut bsum = self.ws.take(BSUM, 4 * h_dim);
        let mut wxt = self.ws.take(WXT, 4 * h_dim * i_dim);
        let mut wht = self.ws.take(WHT, 4 * h_dim * h_dim);
        dh.fill(0.0);
        dc.fill(0.0);

        // Stage W_x^T / W_h^T once so the per-step `dpre @ W^T` products can
        // run through the streaming matmul kernel instead of the dot kernel
        // (bitwise identical: same terms in the same ascending-k order).
        let w_x = self.w.rows_view(0..i_dim);
        let w_h = self.w.rows_view(i_dim..i_dim + h_dim);
        kernels::transpose_into(w_x, MatMut::new(4 * h_dim, i_dim, &mut wxt));
        kernels::transpose_into(w_h, MatMut::new(4 * h_dim, h_dim, &mut wht));
        let wxt_ref = MatRef::new(4 * h_dim, i_dim, &wxt);
        let wht_ref = MatRef::new(4 * h_dim, h_dim, &wht);
        let mut input_grads = need_input_grad.then(|| Vec::with_capacity(steps));

        for t in (0..steps).rev() {
            if self.return_sequences {
                for (d, &g) in dh.iter_mut().zip(grad.step(t).as_slice()) {
                    *d += g;
                }
            } else if t == steps - 1 {
                for (d, &g) in dh.iter_mut().zip(grad.step(0).as_slice()) {
                    *d += g;
                }
            }
            let pre_t = &pre_all[t * b4h..(t + 1) * b4h];
            let tanh_t = &tanh_all[t * bh..(t + 1) * bh];
            let c_prev = if t == 0 {
                &zeros[..]
            } else {
                &c_all[(t - 1) * bh..t * bh]
            };
            let h_prev = if t == 0 {
                &zeros[..]
            } else {
                &h_all[(t - 1) * bh..t * bh]
            };
            // Fused gate backward: identical expression trees to the
            // allocating version (products grouped left-to-right).
            for r in 0..batch {
                let gates = &pre_t[r * 4 * h_dim..(r + 1) * 4 * h_dim];
                let (gi, rest) = gates.split_at(h_dim);
                let (gf, rest) = rest.split_at(h_dim);
                let (gg, go) = rest.split_at(h_dim);
                let dpre_row = &mut dpre[r * 4 * h_dim..(r + 1) * 4 * h_dim];
                let (di, rest) = dpre_row.split_at_mut(h_dim);
                let (df, rest) = rest.split_at_mut(h_dim);
                let (dg, dov) = rest.split_at_mut(h_dim);
                let row = r * h_dim..(r + 1) * h_dim;
                let it = di
                    .iter_mut()
                    .zip(df.iter_mut())
                    .zip(dg.iter_mut())
                    .zip(dov.iter_mut())
                    .zip(gi)
                    .zip(gf)
                    .zip(gg)
                    .zip(go)
                    .zip(&tanh_t[row.clone()])
                    .zip(&c_prev[row.clone()])
                    .zip(&dh[row.clone()])
                    .zip(&mut dc[row]);
                #[allow(clippy::type_complexity)]
                for (
                    (
                        (((((((((di_v, df_v), dg_v), do_v), &i_v), &f_v), &g_v), &o_v), &tc), &cp),
                        &dh_v,
                    ),
                    dc_el,
                ) in it
                {
                    // h = o * tanh(c);  c = f*c_prev + i*g
                    let d_o = dh_v * tc;
                    let dc_v = ((dh_v * o_v) * (1.0 - tc * tc)) + *dc_el;
                    *di_v = ((dc_v * g_v) * i_v) * (1.0 - i_v);
                    *df_v = ((dc_v * cp) * f_v) * (1.0 - f_v);
                    *dg_v = (dc_v * i_v) * (1.0 - g_v * g_v);
                    *do_v = (d_o * o_v) * (1.0 - o_v);
                    *dc_el = dc_v * f_v;
                }
            }
            // Parameter gradients: full products staged into temporaries,
            // then added — the grouping the allocating `+=` produced.
            let dpre_ref = MatRef::new(batch, 4 * h_dim, &dpre);
            kernels::transpose_matmul_into(
                MatRef::new(batch, i_dim, &x_all[t * bi..(t + 1) * bi]),
                dpre_ref,
                MatMut::new(i_dim, 4 * h_dim, &mut tw_x),
            );
            kernels::transpose_matmul_into(
                MatRef::new(batch, h_dim, h_prev),
                dpre_ref,
                MatMut::new(h_dim, 4 * h_dim, &mut tw_h),
            );
            let gw = self.grad_w.as_mut_slice();
            for (g, &v) in gw[..i_dim * 4 * h_dim].iter_mut().zip(tw_x.iter()) {
                *g += v;
            }
            for (g, &v) in gw[i_dim * 4 * h_dim..].iter_mut().zip(tw_h.iter()) {
                *g += v;
            }
            bsum.fill(0.0);
            for r in 0..batch {
                let row = &dpre[r * 4 * h_dim..(r + 1) * 4 * h_dim];
                for (o, &x) in bsum.iter_mut().zip(row.iter()) {
                    *o += x;
                }
            }
            for (g, &v) in self.grad_b.as_mut_slice().iter_mut().zip(bsum.iter()) {
                *g += v;
            }
            // Through z = [x | h_prev]: column blocks of dpre @ W^T.
            if let Some(grads) = input_grads.as_mut() {
                let mut dx = Matrix::zeros(batch, i_dim);
                kernels::matmul_into(dpre_ref, wxt_ref, dx.view_mut());
                grads.push(dx);
            }
            kernels::matmul_into(dpre_ref, wht_ref, MatMut::new(batch, h_dim, &mut dh));
        }

        self.ws.put(X_ALL, x_all);
        self.ws.put(PRE_ALL, pre_all);
        self.ws.put(C_ALL, c_all);
        self.ws.put(TANH_ALL, tanh_all);
        self.ws.put(H_ALL, h_all);
        self.ws.put(ZEROS, zeros);
        self.ws.put(DH, dh);
        self.ws.put(DC, dc);
        self.ws.put(DPRE, dpre);
        self.ws.put(TW_X, tw_x);
        self.ws.put(TW_H, tw_h);
        self.ws.put(BSUM, bsum);
        self.ws.put(WXT, wxt);
        self.ws.put(WHT, wht);

        input_grads.map(|mut grads| {
            grads.reverse();
            Seq::from_steps(grads)
        })
    }

    /// Immutable access to `(kernel, bias)`.
    pub fn params(&self) -> Vec<&Matrix> {
        vec![&self.w, &self.b]
    }

    /// Parameter/gradient pairs for the optimiser.
    pub fn params_and_grads_mut(&mut self) -> Vec<(&mut Matrix, &mut Matrix)> {
        vec![
            (&mut self.w, &mut self.grad_w),
            (&mut self.b, &mut self.grad_b),
        ]
    }

    /// Clears accumulated gradients (in place once correctly shaped).
    pub fn zero_grads(&mut self) {
        if self.grad_w.shape() == self.w.shape() {
            self.grad_w.as_mut_slice().fill(0.0);
        } else {
            self.grad_w = Matrix::zeros(self.w.rows(), self.w.cols());
        }
        if self.grad_b.shape() == self.b.shape() {
            self.grad_b.as_mut_slice().fill(0.0);
        } else {
            self.grad_b = Matrix::zeros(1, self.b.cols());
        }
    }

    /// Restores transient state dropped by serde.
    pub(crate) fn rebuild_transient(&mut self) {
        self.zero_grads();
        self.cached_steps = 0;
        self.cached_batch = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shapes_respect_return_sequences() {
        let x = Seq::from_samples(&[
            Matrix::column_vector(&[0.1, 0.2, 0.3, 0.4]),
            Matrix::column_vector(&[0.5, 0.6, 0.7, 0.8]),
        ]);
        let mut last_only = Lstm::new_seeded(1, 5, false, 1);
        let y = last_only.forward(&x, false);
        assert_eq!(y.len(), 1);
        assert_eq!(y.step(0).shape(), (2, 5));

        let mut all = Lstm::new_seeded(1, 5, true, 1);
        let y = all.forward(&x, false);
        assert_eq!(y.len(), 4);
        assert_eq!(y.step(3).shape(), (2, 5));
    }

    #[test]
    fn final_step_equal_between_modes() {
        let x = Seq::from_samples(&[Matrix::column_vector(&[0.3, -0.1, 0.7])]);
        let mut a = Lstm::new_seeded(1, 4, false, 9);
        let mut b = Lstm::new_seeded(1, 4, true, 9);
        let ya = a.forward(&x, false);
        let yb = b.forward(&x, false);
        assert_eq!(ya.step(0), yb.last_step());
    }

    #[test]
    fn hidden_state_resets_between_calls() {
        let x = Seq::from_samples(&[Matrix::column_vector(&[0.5, 0.5])]);
        let mut l = Lstm::new_seeded(1, 3, false, 2);
        let y1 = l.forward(&x, false);
        let y2 = l.forward(&x, false);
        assert_eq!(y1.step(0), y2.step(0));
    }

    #[test]
    fn forget_bias_initialised_to_one() {
        let l = Lstm::new_seeded(2, 3, false, 4);
        let b = l.params()[1];
        for j in 0..3 {
            assert_eq!(b[(0, j)], 0.0); // i
            assert_eq!(b[(0, 3 + j)], 1.0); // f
            assert_eq!(b[(0, 6 + j)], 0.0); // g
            assert_eq!(b[(0, 9 + j)], 0.0); // o
        }
    }

    #[test]
    fn outputs_bounded_by_gate_ranges() {
        // |h| <= |o| * |tanh(c)| < 1 for bounded inputs over few steps.
        let x = Seq::from_samples(&[Matrix::column_vector(&[10.0, -10.0, 10.0])]);
        let mut l = Lstm::new_seeded(1, 6, true, 7);
        let y = l.forward(&x, false);
        for step in y.iter() {
            assert!(step.max_abs() < 3.0, "hidden state out of expected range");
        }
    }

    #[test]
    fn batch_independence() {
        // Processing two samples in one batch must equal processing them alone.
        let s1 = Matrix::column_vector(&[0.2, 0.4, -0.3]);
        let s2 = Matrix::column_vector(&[-0.6, 0.1, 0.9]);
        let mut l = Lstm::new_seeded(1, 4, false, 5);
        let joint = l.forward(&Seq::from_samples(&[s1.clone(), s2.clone()]), false);
        let solo1 = l.forward(&Seq::from_samples(&[s1]), false);
        let solo2 = l.forward(&Seq::from_samples(&[s2]), false);
        for j in 0..4 {
            assert!((joint.step(0)[(0, j)] - solo1.step(0)[(0, j)]).abs() < 1e-12);
            assert!((joint.step(0)[(1, j)] - solo2.step(0)[(0, j)]).abs() < 1e-12);
        }
    }

    #[test]
    fn backward_produces_input_grad_of_right_shape() {
        let x = Seq::from_samples(&[
            Matrix::column_vector(&[0.1, 0.2, 0.3]),
            Matrix::column_vector(&[0.4, 0.5, 0.6]),
        ]);
        let mut l = Lstm::new_seeded(1, 4, false, 6);
        let y = l.forward(&x, true);
        let g = Seq::single(Matrix::ones(2, 4));
        let dx = l.backward(&g);
        assert_eq!(dx.len(), 3);
        assert_eq!(dx.step(0).shape(), (2, 1));
        assert!(dx.is_finite());
        let _ = y;
    }

    #[test]
    fn eval_forward_does_not_clobber_training_cache() {
        let x = Seq::from_samples(&[
            Matrix::column_vector(&[0.1, 0.2, 0.3]),
            Matrix::column_vector(&[0.4, 0.5, 0.6]),
        ]);
        let mut with_eval = Lstm::new_seeded(1, 4, false, 6);
        let mut plain = Lstm::new_seeded(1, 4, false, 6);
        let _ = with_eval.forward(&x, true);
        let _ = plain.forward(&x, true);
        // An eval forward (e.g. a validation pass) between forward and
        // backward must not disturb the training cache.
        let other = Seq::from_samples(&[Matrix::column_vector(&[0.9, -0.9, 0.9, -0.9])]);
        let _ = with_eval.forward(&other, false);
        let g = Seq::single(Matrix::ones(2, 4));
        let dx1 = with_eval.backward(&g);
        let dx2 = plain.backward(&g);
        for t in 0..dx1.len() {
            assert_eq!(dx1.step(t).as_slice(), dx2.step(t).as_slice());
        }
    }

    #[test]
    fn backward_without_input_grad_accumulates_same_params() {
        let x = Seq::from_samples(&[
            Matrix::column_vector(&[0.1, 0.2, 0.3]),
            Matrix::column_vector(&[0.4, 0.5, 0.6]),
        ]);
        let g = Seq::single(Matrix::ones(2, 4));
        let mut a = Lstm::new_seeded(1, 4, false, 6);
        let mut b = Lstm::new_seeded(1, 4, false, 6);
        let _ = a.forward(&x, true);
        let _ = b.forward(&x, true);
        let _ = a.backward(&g);
        assert!(b.backward_input(&g, false).is_none());
        let ga: Vec<f64> = a.params_and_grads_mut()[0].1.as_slice().to_vec();
        let gb: Vec<f64> = b.params_and_grads_mut()[0].1.as_slice().to_vec();
        assert_eq!(ga, gb);
    }

    #[test]
    fn serde_round_trip() {
        let l = Lstm::new_seeded(2, 3, true, 11);
        let json = serde_json::to_string(&l).expect("serialize");
        let mut back: Lstm = serde_json::from_str(&json).expect("deserialize");
        back.rebuild_transient();
        assert_eq!(l.params()[0], back.params()[0]);
        assert_eq!(l.params()[1], back.params()[1]);
        assert!(back.return_sequences());
    }

    #[test]
    #[should_panic(expected = "input features")]
    fn wrong_feature_width_panics() {
        let mut l = Lstm::new_seeded(2, 3, false, 1);
        let x = Seq::single(Matrix::ones(1, 5));
        let _ = l.forward(&x, false);
    }
}
