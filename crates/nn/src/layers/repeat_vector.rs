//! Keras-style `RepeatVector` layer.

use crate::seq::Seq;
use evfad_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Repeats a single-step batch `n` times along the time axis.
///
/// This is the bottleneck-to-decoder bridge of the paper's LSTM autoencoder:
/// the encoder's final hidden state is repeated `SEQUENCE_LENGTH` times so
/// the decoder LSTM can unroll over it.
///
/// # Examples
///
/// ```
/// use evfad_nn::{RepeatVector, Seq};
/// use evfad_tensor::Matrix;
///
/// let mut r = RepeatVector::new(3);
/// let x = Seq::single(Matrix::ones(2, 4));
/// let y = r.forward(&x, false);
/// assert_eq!(y.len(), 3);
/// assert_eq!(y.step(2), x.step(0));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepeatVector {
    n: usize,
}

impl RepeatVector {
    /// Creates a layer repeating its input `n` times.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "RepeatVector needs n >= 1");
        Self { n }
    }

    /// Number of repetitions.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if the input has more than one timestep.
    pub fn forward(&mut self, input: &Seq, _training: bool) -> Seq {
        assert_eq!(
            input.len(),
            1,
            "RepeatVector expects a single-step input (got {} steps)",
            input.len()
        );
        Seq::from_steps(vec![input.step(0).clone(); self.n])
    }

    /// Eval-mode forward into a reusable buffer: the repeated step is
    /// copied into `out` instead of cloned `n` times.
    ///
    /// # Panics
    ///
    /// Panics if the input has more than one timestep.
    pub fn forward_into(&mut self, input: &Seq, out: &mut crate::seq::SeqBuf) {
        assert_eq!(
            input.len(),
            1,
            "RepeatVector expects a single-step input (got {} steps)",
            input.len()
        );
        let src = input.step(0);
        let seq = out.ensure(self.n, src.rows(), src.cols());
        for t in 0..self.n {
            seq.step_data_mut(t).copy_from_slice(src.as_slice());
        }
    }

    /// Backward pass: sums the per-step gradients back into one step.
    pub fn backward(&mut self, grad: &Seq) -> Seq {
        let mut acc = Matrix::zeros(grad.step(0).rows(), grad.step(0).cols());
        for g in grad.iter() {
            acc += g;
        }
        Seq::single(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeats_content() {
        let mut r = RepeatVector::new(4);
        let x = Seq::single(Matrix::from_rows(&[vec![1.0, 2.0]]));
        let y = r.forward(&x, true);
        assert_eq!(y.len(), 4);
        for t in 0..4 {
            assert_eq!(y.step(t), x.step(0));
        }
    }

    #[test]
    fn backward_sums() {
        let mut r = RepeatVector::new(3);
        let _ = r.forward(&Seq::single(Matrix::zeros(1, 2)), true);
        let g = Seq::from_steps(vec![
            Matrix::from_rows(&[vec![1.0, 2.0]]),
            Matrix::from_rows(&[vec![3.0, 4.0]]),
            Matrix::from_rows(&[vec![5.0, 6.0]]),
        ]);
        let dx = r.backward(&g);
        assert_eq!(dx.step(0), &Matrix::from_rows(&[vec![9.0, 12.0]]));
    }

    #[test]
    #[should_panic(expected = "single-step")]
    fn multi_step_input_panics() {
        let mut r = RepeatVector::new(2);
        let x = Seq::from_steps(vec![Matrix::zeros(1, 1), Matrix::zeros(1, 1)]);
        let _ = r.forward(&x, false);
    }

    #[test]
    #[should_panic(expected = "n >= 1")]
    fn zero_n_panics() {
        let _ = RepeatVector::new(0);
    }
}
