//! Inverted-dropout regularisation layer.

use crate::seq::Seq;
use evfad_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Inverted dropout: during training each element is zeroed with
/// probability `rate` and the survivors are scaled by `1 / (1 - rate)`, so
/// inference needs no rescaling (Keras semantics — the paper uses
/// `Dropout(0.2)` in its autoencoder).
///
/// # Examples
///
/// ```
/// use evfad_nn::{Dropout, Seq};
/// use evfad_tensor::Matrix;
///
/// let mut d = Dropout::new(0.5).with_seed(1);
/// let x = Seq::single(Matrix::ones(1, 100));
/// // Inference: identity.
/// assert_eq!(d.forward(&x, false), x);
/// // Training: some elements dropped, survivors scaled to 2.0.
/// let y = d.forward(&x, true);
/// assert!(y.step(0).as_slice().iter().all(|&v| v == 0.0 || v == 2.0));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dropout {
    rate: f64,
    seed: u64,
    #[serde(default)]
    eval_only: bool,
    #[serde(skip)]
    rng_state: Option<StdRng>,
    #[serde(skip)]
    masks: Vec<Matrix>,
}

impl Dropout {
    /// Creates a dropout layer with the given drop probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= rate < 1.0`.
    pub fn new(rate: f64) -> Self {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0, 1)");
        Self {
            rate,
            seed: 0,
            eval_only: false,
            rng_state: None,
            masks: Vec::new(),
        }
    }

    /// Pins the layer to inference behaviour (identity) even when the
    /// surrounding forward pass runs in training mode — the per-module
    /// `eval()` of other frameworks. Useful to freeze regularisation during
    /// fine-tuning, and to make stacks containing dropout amenable to
    /// finite-difference gradient checking (builder style).
    pub fn eval_mode(mut self, enabled: bool) -> Self {
        self.eval_only = enabled;
        self
    }

    /// Sets the RNG seed used for mask sampling (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.rng_state = None;
        self
    }

    /// Re-seeds the mask RNG (used by [`Sequential::with`](crate::Sequential::with)).
    pub fn reseed(&mut self, seed: u64) {
        self.seed = seed;
        self.rng_state = None;
    }

    /// Drop probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Forward pass. Identity at inference; samples fresh masks per call in
    /// training mode.
    pub fn forward(&mut self, input: &Seq, training: bool) -> Seq {
        if !training || self.eval_only || self.rate == 0.0 {
            // Clear any masks from an earlier training pass: a backward
            // call after an identity forward must also be the identity,
            // not a replay of stale masks (or a shape panic).
            self.masks.clear();
            return input.clone();
        }
        let rate = self.rate;
        let keep_scale = 1.0 / (1.0 - rate);
        let rng = self
            .rng_state
            .get_or_insert_with(|| StdRng::seed_from_u64(self.seed));
        self.masks.clear();
        let mut steps = Vec::with_capacity(input.len());
        for x in input.iter() {
            let mask = Matrix::from_fn(x.rows(), x.cols(), |_, _| {
                if rng.gen::<f64>() < rate {
                    0.0
                } else {
                    keep_scale
                }
            });
            steps.push(x.hadamard(&mask));
            self.masks.push(mask);
        }
        Seq::from_steps(steps)
    }

    /// Eval-mode forward into a reusable buffer: the identity, copied.
    ///
    /// Clears any stale training masks (same contract as an inference
    /// [`Dropout::forward`]) and copies the input into `out` step by step.
    pub fn forward_into(&mut self, input: &Seq, out: &mut crate::seq::SeqBuf) {
        self.masks.clear();
        let seq = out.ensure(input.len(), input.batch_size(), input.features());
        for (t, x_t) in input.iter().enumerate() {
            seq.step_data_mut(t).copy_from_slice(x_t.as_slice());
        }
    }

    /// Backward pass: applies the cached masks to the upstream gradient.
    /// After an inference (or rate-0) forward pass there are no masks and
    /// the gradient passes through unchanged — matching the identity
    /// forward.
    ///
    /// # Panics
    ///
    /// Panics if the cached masks disagree with the gradient's length
    /// (forward and backward saw different sequences).
    pub fn backward(&mut self, grad: &Seq) -> Seq {
        if self.masks.is_empty() {
            return grad.clone();
        }
        assert_eq!(grad.len(), self.masks.len(), "dropout mask/grad mismatch");
        let steps = grad
            .iter()
            .zip(self.masks.iter())
            .map(|(g, m)| g.hadamard(m))
            .collect();
        Seq::from_steps(steps)
    }

    /// Restores transient state dropped by serde.
    pub(crate) fn rebuild_transient(&mut self) {
        self.rng_state = None;
        self.masks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_identity() {
        let mut d = Dropout::new(0.9).with_seed(3);
        let x = Seq::single(Matrix::ones(3, 3));
        assert_eq!(d.forward(&x, false), x);
    }

    #[test]
    fn zero_rate_is_identity_even_training() {
        let mut d = Dropout::new(0.0);
        let x = Seq::single(Matrix::ones(3, 3));
        assert_eq!(d.forward(&x, true), x);
    }

    #[test]
    fn expected_value_preserved() {
        let mut d = Dropout::new(0.2).with_seed(7);
        let x = Seq::single(Matrix::ones(50, 50));
        let y = d.forward(&x, true);
        // E[y] = 1; with 2500 samples the mean should be close.
        assert!((y.step(0).mean() - 1.0).abs() < 0.05);
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5).with_seed(9);
        let x = Seq::single(Matrix::ones(4, 4));
        let y = d.forward(&x, true);
        let g = d.backward(&Seq::single(Matrix::ones(4, 4)));
        // Gradient is zero exactly where the output was zero.
        for (yv, gv) in y.step(0).as_slice().iter().zip(g.step(0).as_slice()) {
            assert_eq!(*yv == 0.0, *gv == 0.0);
        }
    }

    #[test]
    fn masks_differ_across_calls() {
        let mut d = Dropout::new(0.5).with_seed(11);
        let x = Seq::single(Matrix::ones(10, 10));
        let y1 = d.forward(&x, true);
        let y2 = d.forward(&x, true);
        assert_ne!(y1, y2, "fresh masks expected per training step");
    }

    #[test]
    #[should_panic(expected = "rate must be in")]
    fn invalid_rate_panics() {
        let _ = Dropout::new(1.0);
    }

    #[test]
    fn backward_after_inference_forward_is_identity() {
        let mut d = Dropout::new(0.5).with_seed(3);
        let x = Seq::single(Matrix::ones(4, 4));
        let _ = d.forward(&x, false);
        let g = Seq::single(Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f64));
        assert_eq!(d.backward(&g), g);
    }

    #[test]
    fn backward_after_zero_rate_forward_is_identity() {
        let mut d = Dropout::new(0.0);
        let x = Seq::single(Matrix::ones(2, 3));
        let _ = d.forward(&x, true);
        let g = Seq::single(Matrix::ones(2, 3));
        assert_eq!(d.backward(&g), g);
    }

    #[test]
    fn inference_forward_clears_stale_training_masks() {
        let mut d = Dropout::new(0.5).with_seed(5);
        let train_x = Seq::single(Matrix::ones(3, 3));
        let _ = d.forward(&train_x, true);
        // Switch to eval on a *different* shape: the stale 3×3 masks must
        // not be replayed onto (or panic against) the new gradient.
        let eval_x = Seq::single(Matrix::ones(2, 5));
        let _ = d.forward(&eval_x, false);
        let g = Seq::single(Matrix::ones(2, 5));
        assert_eq!(d.backward(&g), g);
    }
}
