//! Concrete layer implementations.

mod dense;
mod dropout;
mod gru;
mod lstm;
mod repeat_vector;

pub use dense::Dense;
pub use dropout::Dropout;
pub use gru::Gru;
pub use lstm::Lstm;
pub use repeat_vector::RepeatVector;
