//! Fully connected (time-distributed) layer.

use crate::activation::Activation;
use crate::seq::Seq;
use evfad_tensor::{Initializer, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A fully connected layer `y = f(x W + b)` applied to every timestep.
///
/// Applying the kernel independently per step makes a `Dense` on a
/// multi-step [`Seq`] exactly Keras's `TimeDistributed(Dense)`, while on a
/// single-step `Seq` it is a plain `Dense` — the two usages the paper's
/// models need (forecaster head and autoencoder output projection).
///
/// # Examples
///
/// ```
/// use evfad_nn::{Activation, Dense, Seq};
/// use evfad_tensor::Matrix;
///
/// let mut layer = Dense::new(3, 2, Activation::Relu);
/// let x = Seq::single(Matrix::ones(4, 3));
/// let y = layer.forward(&x, false);
/// assert_eq!(y.step(0).shape(), (4, 2));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    w: Matrix,
    b: Matrix,
    activation: Activation,
    #[serde(skip)]
    grad_w: Matrix,
    #[serde(skip)]
    grad_b: Matrix,
    #[serde(skip)]
    cache_inputs: Vec<Matrix>,
    #[serde(skip)]
    cache_outputs: Vec<Matrix>,
}

impl Dense {
    /// Creates a layer with Glorot-uniform kernel and zero bias, seeded from
    /// the thread RNG. Prefer [`Dense::new_seeded`] for reproducible models;
    /// [`Sequential::with`](crate::Sequential::with) reseeds layers it adopts.
    pub fn new(input_dim: usize, output_dim: usize, activation: Activation) -> Self {
        Self::new_with_rng(input_dim, output_dim, activation, &mut rand::thread_rng())
    }

    /// Creates a layer using the supplied RNG for initialisation.
    pub fn new_with_rng(
        input_dim: usize,
        output_dim: usize,
        activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            w: Initializer::GlorotUniform.init(input_dim, output_dim, rng),
            b: Matrix::zeros(1, output_dim),
            activation,
            grad_w: Matrix::zeros(input_dim, output_dim),
            grad_b: Matrix::zeros(1, output_dim),
            cache_inputs: Vec::new(),
            cache_outputs: Vec::new(),
        }
    }

    /// Creates a layer initialised from a fixed seed.
    pub fn new_seeded(
        input_dim: usize,
        output_dim: usize,
        activation: Activation,
        seed: u64,
    ) -> Self {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Self::new_with_rng(input_dim, output_dim, activation, &mut rng)
    }

    /// Re-initialises the kernel from `rng`, zeroing the bias.
    pub fn reinitialize(&mut self, rng: &mut impl Rng) {
        let (i, o) = self.w.shape();
        self.w = Initializer::GlorotUniform.init(i, o, rng);
        self.b = Matrix::zeros(1, o);
    }

    /// Input feature width.
    pub fn input_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output feature width.
    pub fn output_dim(&self) -> usize {
        self.w.cols()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Forward pass. Caches activations when `training` is `true`.
    pub fn forward(&mut self, input: &Seq, training: bool) -> Seq {
        if training {
            self.cache_inputs.clear();
            self.cache_outputs.clear();
        }
        let act = self.activation;
        let steps = input
            .iter()
            .map(|x| {
                let y = x
                    .matmul(&self.w)
                    .add_row_broadcast(&self.b)
                    .map(|v| act.apply(v));
                if training {
                    self.cache_inputs.push(x.clone());
                    self.cache_outputs.push(y.clone());
                }
                y
            })
            .collect();
        Seq::from_steps(steps)
    }

    /// Backward pass: accumulates kernel/bias gradients and returns the
    /// gradient with respect to the input sequence.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding training-mode forward pass or
    /// with a gradient whose length differs from that pass.
    pub fn backward(&mut self, grad: &Seq) -> Seq {
        assert_eq!(
            grad.len(),
            self.cache_inputs.len(),
            "backward called with mismatched sequence length"
        );
        let act = self.activation;
        let mut input_grads = Vec::with_capacity(grad.len());
        for (t, g) in grad.iter().enumerate() {
            let y = &self.cache_outputs[t];
            let dpre = g.zip_map(y, |gv, yv| gv * act.derivative_from_output(yv));
            self.grad_w += &self.cache_inputs[t].transpose_matmul(&dpre);
            self.grad_b += &dpre.sum_rows();
            input_grads.push(dpre.matmul_transpose(&self.w));
        }
        Seq::from_steps(input_grads)
    }

    /// Immutable access to `(kernel, bias)`.
    pub fn params(&self) -> Vec<&Matrix> {
        vec![&self.w, &self.b]
    }

    /// Parameter/gradient pairs for the optimiser.
    pub fn params_and_grads_mut(&mut self) -> Vec<(&mut Matrix, &mut Matrix)> {
        vec![
            (&mut self.w, &mut self.grad_w),
            (&mut self.b, &mut self.grad_b),
        ]
    }

    /// Clears accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.grad_w = Matrix::zeros(self.w.rows(), self.w.cols());
        self.grad_b = Matrix::zeros(1, self.b.cols());
    }

    /// Restores transient state dropped by serde (gradients, caches).
    pub(crate) fn rebuild_transient(&mut self) {
        self.zero_grads();
        self.cache_inputs.clear();
        self.cache_outputs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_layer() -> Dense {
        let mut l = Dense::new_seeded(2, 2, Activation::Linear, 1);
        // Overwrite with known weights.
        let pg = l.params_and_grads_mut();
        drop(pg);
        l
    }

    #[test]
    fn forward_known_values() {
        let mut l = simple_layer();
        {
            let mut pg = l.params_and_grads_mut();
            *pg[0].0 = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0]]);
            *pg[1].0 = Matrix::row_vector(&[0.5, -0.5]);
        }
        let x = Seq::single(Matrix::from_rows(&[vec![1.0, 1.0]]));
        let y = l.forward(&x, false);
        assert_eq!(y.step(0), &Matrix::from_rows(&[vec![1.5, 1.5]]));
    }

    #[test]
    fn time_distributed_applies_per_step() {
        let mut l = Dense::new_seeded(1, 1, Activation::Linear, 3);
        {
            let mut pg = l.params_and_grads_mut();
            *pg[0].0 = Matrix::from_vec(1, 1, vec![2.0]);
            *pg[1].0 = Matrix::zeros(1, 1);
        }
        let x = Seq::from_steps(vec![Matrix::filled(2, 1, 1.0), Matrix::filled(2, 1, 3.0)]);
        let y = l.forward(&x, false);
        assert_eq!(y.step(0)[(0, 0)], 2.0);
        assert_eq!(y.step(1)[(1, 0)], 6.0);
    }

    #[test]
    fn relu_zeroes_negative_preactivations() {
        let mut l = Dense::new_seeded(1, 1, Activation::Relu, 3);
        {
            let mut pg = l.params_and_grads_mut();
            *pg[0].0 = Matrix::from_vec(1, 1, vec![1.0]);
            *pg[1].0 = Matrix::zeros(1, 1);
        }
        let x = Seq::single(Matrix::from_rows(&[vec![-5.0], vec![5.0]]));
        let y = l.forward(&x, false);
        assert_eq!(y.step(0)[(0, 0)], 0.0);
        assert_eq!(y.step(0)[(1, 0)], 5.0);
    }

    #[test]
    fn backward_accumulates_bias_gradient() {
        let mut l = Dense::new_seeded(2, 1, Activation::Linear, 5);
        let x = Seq::single(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
        let _ = l.forward(&x, true);
        let g = Seq::single(Matrix::from_rows(&[vec![1.0], vec![1.0]]));
        let _ = l.backward(&g);
        // dL/db = sum over batch of upstream grads = 2.
        let pg = l.params_and_grads_mut();
        assert_eq!(pg[1].1[(0, 0)], 2.0);
    }

    #[test]
    fn zero_grads_resets() {
        let mut l = Dense::new_seeded(2, 1, Activation::Linear, 5);
        let x = Seq::single(Matrix::ones(1, 2));
        let _ = l.forward(&x, true);
        let _ = l.backward(&Seq::single(Matrix::ones(1, 1)));
        l.zero_grads();
        let pg = l.params_and_grads_mut();
        assert_eq!(pg[0].1.sum(), 0.0);
        assert_eq!(pg[1].1.sum(), 0.0);
    }

    #[test]
    fn seeded_construction_is_deterministic() {
        let a = Dense::new_seeded(3, 4, Activation::Tanh, 11);
        let b = Dense::new_seeded(3, 4, Activation::Tanh, 11);
        assert_eq!(a.params()[0], b.params()[0]);
    }

    #[test]
    fn serde_round_trip_preserves_weights() {
        let l = Dense::new_seeded(3, 2, Activation::Sigmoid, 7);
        let json = serde_json::to_string(&l).expect("serialize");
        let mut back: Dense = serde_json::from_str(&json).expect("deserialize");
        back.rebuild_transient();
        assert_eq!(l.params()[0], back.params()[0]);
        assert_eq!(l.params()[1], back.params()[1]);
        assert_eq!(l.activation(), back.activation());
    }
}
