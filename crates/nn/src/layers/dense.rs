//! Fully connected (time-distributed) layer.
//!
//! The hot path is workspace-backed: the forward pass concatenates all
//! timesteps into one `(T*B) x I` buffer and runs a single GEMM (rows are
//! independent, so this is bitwise identical to the per-step products), and
//! the activations are cached in reusable arena slots instead of cloned
//! `Matrix` vectors.

use crate::activation::Activation;
use crate::seq::Seq;
use crate::workspace::Workspace;
use evfad_tensor::{kernels, Initializer, MatMut, MatRef, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

// Workspace slots; forward slots double as the backward cache, eval-mode
// forwards shift to `EVAL_BASE`.
const X_CAT: usize = 0; // (T*B) x I
const Y_CAT: usize = 1; // (T*B) x O (post-activation)
const DPRE: usize = 2; // B x O
const TW: usize = 3; // I x O
const BSUM: usize = 4; // 1 x O
const EVAL_BASE: usize = 8;

/// A fully connected layer `y = f(x W + b)` applied to every timestep.
///
/// Applying the kernel independently per step makes a `Dense` on a
/// multi-step [`Seq`] exactly Keras's `TimeDistributed(Dense)`, while on a
/// single-step `Seq` it is a plain `Dense` — the two usages the paper's
/// models need (forecaster head and autoencoder output projection).
///
/// # Examples
///
/// ```
/// use evfad_nn::{Activation, Dense, Seq};
/// use evfad_tensor::Matrix;
///
/// let mut layer = Dense::new(3, 2, Activation::Relu);
/// let x = Seq::single(Matrix::ones(4, 3));
/// let y = layer.forward(&x, false);
/// assert_eq!(y.step(0).shape(), (4, 2));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    w: Matrix,
    b: Matrix,
    activation: Activation,
    #[serde(skip)]
    grad_w: Matrix,
    #[serde(skip)]
    grad_b: Matrix,
    #[serde(skip)]
    ws: Workspace,
    #[serde(skip)]
    cached_steps: usize,
    #[serde(skip)]
    cached_batch: usize,
}

impl Dense {
    /// Creates a layer with Glorot-uniform kernel and zero bias, seeded from
    /// the thread RNG. Prefer [`Dense::new_seeded`] for reproducible models;
    /// [`Sequential::with`](crate::Sequential::with) reseeds layers it adopts.
    pub fn new(input_dim: usize, output_dim: usize, activation: Activation) -> Self {
        Self::new_with_rng(input_dim, output_dim, activation, &mut rand::thread_rng())
    }

    /// Creates a layer using the supplied RNG for initialisation.
    pub fn new_with_rng(
        input_dim: usize,
        output_dim: usize,
        activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            w: Initializer::GlorotUniform.init(input_dim, output_dim, rng),
            b: Matrix::zeros(1, output_dim),
            activation,
            grad_w: Matrix::zeros(input_dim, output_dim),
            grad_b: Matrix::zeros(1, output_dim),
            ws: Workspace::new(),
            cached_steps: 0,
            cached_batch: 0,
        }
    }

    /// Creates a layer initialised from a fixed seed.
    pub fn new_seeded(
        input_dim: usize,
        output_dim: usize,
        activation: Activation,
        seed: u64,
    ) -> Self {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Self::new_with_rng(input_dim, output_dim, activation, &mut rng)
    }

    /// Re-initialises the kernel from `rng`, zeroing the bias.
    pub fn reinitialize(&mut self, rng: &mut impl Rng) {
        let (i, o) = self.w.shape();
        self.w = Initializer::GlorotUniform.init(i, o, rng);
        self.b = Matrix::zeros(1, o);
    }

    /// Input feature width.
    pub fn input_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output feature width.
    pub fn output_dim(&self) -> usize {
        self.w.cols()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Forward pass. Caches activations when `training` is `true`.
    pub fn forward(&mut self, input: &Seq, training: bool) -> Seq {
        let (steps, batch) = self.forward_core(input, training);
        let base = if training { 0 } else { EVAL_BASE };
        let (o_dim, bo) = (self.w.cols(), batch * self.w.cols());
        // Re-take the activations the core just put back: same length, so
        // the workspace hands the buffer back with contents intact.
        let y_cat = self.ws.take(base + Y_CAT, steps * bo);
        let out = Seq::from_steps(
            (0..steps)
                .map(|t| Matrix::from_vec(batch, o_dim, y_cat[t * bo..(t + 1) * bo].to_vec()))
                .collect(),
        );
        self.ws.put(base + Y_CAT, y_cat);
        out
    }

    /// Eval-mode forward that writes the output into a reusable buffer.
    ///
    /// Runs the exact fused forward ([`Dense::forward`] with
    /// `training = false` — bitwise identical activations) but copies them
    /// into `out` instead of materialising fresh step matrices, so a warm
    /// caller allocates nothing.
    pub fn forward_into(&mut self, input: &Seq, out: &mut crate::seq::SeqBuf) {
        let (steps, batch) = self.forward_core(input, false);
        let (o_dim, bo) = (self.w.cols(), batch * self.w.cols());
        let y_cat = self.ws.take(EVAL_BASE + Y_CAT, steps * bo);
        let seq = out.ensure(steps, batch, o_dim);
        for t in 0..steps {
            seq.step_data_mut(t)
                .copy_from_slice(&y_cat[t * bo..(t + 1) * bo]);
        }
        self.ws.put(EVAL_BASE + Y_CAT, y_cat);
    }

    /// The fused forward computation: fills the workspace activation buffer
    /// and caches backward state when `training`, leaving output
    /// materialisation to the caller. Returns `(steps, batch)`.
    fn forward_core(&mut self, input: &Seq, training: bool) -> (usize, usize) {
        let base = if training { 0 } else { EVAL_BASE };
        let steps = input.len();
        let batch = input.batch_size();
        let (i_dim, o_dim) = (self.w.rows(), self.w.cols());
        let (bi, bo) = (batch * i_dim, batch * o_dim);

        let mut x_cat = self.ws.take(base + X_CAT, steps * bi);
        let mut y_cat = self.ws.take(base + Y_CAT, steps * bo);
        for (t, x_t) in input.iter().enumerate() {
            x_cat[t * bi..(t + 1) * bi].copy_from_slice(x_t.as_slice());
        }
        // One GEMM for all timesteps: each output row only depends on its
        // own input row, so this matches the per-step products bitwise.
        kernels::matmul_into(
            MatRef::new(steps * batch, i_dim, &x_cat),
            self.w.view(),
            MatMut::new(steps * batch, o_dim, &mut y_cat),
        );
        kernels::add_row_broadcast_into(
            MatMut::new(steps * batch, o_dim, &mut y_cat),
            self.b.view(),
        );
        let act = self.activation;
        for v in y_cat.iter_mut() {
            *v = act.apply(*v);
        }
        self.ws.put(base + X_CAT, x_cat);
        self.ws.put(base + Y_CAT, y_cat);
        if training {
            self.cached_steps = steps;
            self.cached_batch = batch;
        }
        (steps, batch)
    }

    /// Backward pass: accumulates kernel/bias gradients and returns the
    /// gradient with respect to the input sequence.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding training-mode forward pass or
    /// with a gradient whose length differs from that pass.
    pub fn backward(&mut self, grad: &Seq) -> Seq {
        self.backward_input(grad, true)
            .expect("input gradient requested")
    }

    /// [`Dense::backward`] with an optional input-gradient computation; see
    /// [`Lstm::backward_input`](crate::Lstm::backward_input).
    pub fn backward_input(&mut self, grad: &Seq, need_input_grad: bool) -> Option<Seq> {
        assert_eq!(
            grad.len(),
            self.cached_steps,
            "backward called with mismatched sequence length"
        );
        let steps = self.cached_steps;
        let batch = self.cached_batch;
        let (i_dim, o_dim) = (self.w.rows(), self.w.cols());
        let (bi, bo) = (batch * i_dim, batch * o_dim);

        let x_cat = self.ws.take(X_CAT, steps * bi);
        let y_cat = self.ws.take(Y_CAT, steps * bo);
        let mut dpre = self.ws.take(DPRE, bo);
        let mut tw = self.ws.take(TW, i_dim * o_dim);
        let mut bsum = self.ws.take(BSUM, o_dim);

        let act = self.activation;
        let mut input_grads = need_input_grad.then(|| Vec::with_capacity(steps));
        for (t, g) in grad.iter().enumerate() {
            let y_t = &y_cat[t * bo..(t + 1) * bo];
            for ((d, &gv), &yv) in dpre.iter_mut().zip(g.as_slice()).zip(y_t.iter()) {
                *d = gv * act.derivative_from_output(yv);
            }
            let dpre_ref = MatRef::new(batch, o_dim, &dpre);
            kernels::transpose_matmul_into(
                MatRef::new(batch, i_dim, &x_cat[t * bi..(t + 1) * bi]),
                dpre_ref,
                MatMut::new(i_dim, o_dim, &mut tw),
            );
            for (gw, &v) in self.grad_w.as_mut_slice().iter_mut().zip(tw.iter()) {
                *gw += v;
            }
            bsum.fill(0.0);
            for r in 0..batch {
                let row = &dpre[r * o_dim..(r + 1) * o_dim];
                for (o, &x) in bsum.iter_mut().zip(row.iter()) {
                    *o += x;
                }
            }
            for (gb, &v) in self.grad_b.as_mut_slice().iter_mut().zip(bsum.iter()) {
                *gb += v;
            }
            if let Some(grads) = input_grads.as_mut() {
                let mut dx = Matrix::zeros(batch, i_dim);
                kernels::matmul_transpose_into(dpre_ref, self.w.view(), dx.view_mut());
                grads.push(dx);
            }
        }

        self.ws.put(X_CAT, x_cat);
        self.ws.put(Y_CAT, y_cat);
        self.ws.put(DPRE, dpre);
        self.ws.put(TW, tw);
        self.ws.put(BSUM, bsum);
        input_grads.map(Seq::from_steps)
    }

    /// Immutable access to `(kernel, bias)`.
    pub fn params(&self) -> Vec<&Matrix> {
        vec![&self.w, &self.b]
    }

    /// Parameter/gradient pairs for the optimiser.
    pub fn params_and_grads_mut(&mut self) -> Vec<(&mut Matrix, &mut Matrix)> {
        vec![
            (&mut self.w, &mut self.grad_w),
            (&mut self.b, &mut self.grad_b),
        ]
    }

    /// Clears accumulated gradients (in place once correctly shaped).
    pub fn zero_grads(&mut self) {
        if self.grad_w.shape() == self.w.shape() {
            self.grad_w.as_mut_slice().fill(0.0);
        } else {
            self.grad_w = Matrix::zeros(self.w.rows(), self.w.cols());
        }
        if self.grad_b.shape() == self.b.shape() {
            self.grad_b.as_mut_slice().fill(0.0);
        } else {
            self.grad_b = Matrix::zeros(1, self.b.cols());
        }
    }

    /// Restores transient state dropped by serde (gradients, caches).
    pub(crate) fn rebuild_transient(&mut self) {
        self.zero_grads();
        self.cached_steps = 0;
        self.cached_batch = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_layer() -> Dense {
        let mut l = Dense::new_seeded(2, 2, Activation::Linear, 1);
        // Overwrite with known weights.
        let pg = l.params_and_grads_mut();
        drop(pg);
        l
    }

    #[test]
    fn forward_known_values() {
        let mut l = simple_layer();
        {
            let mut pg = l.params_and_grads_mut();
            *pg[0].0 = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0]]);
            *pg[1].0 = Matrix::row_vector(&[0.5, -0.5]);
        }
        let x = Seq::single(Matrix::from_rows(&[vec![1.0, 1.0]]));
        let y = l.forward(&x, false);
        assert_eq!(y.step(0), &Matrix::from_rows(&[vec![1.5, 1.5]]));
    }

    #[test]
    fn time_distributed_applies_per_step() {
        let mut l = Dense::new_seeded(1, 1, Activation::Linear, 3);
        {
            let mut pg = l.params_and_grads_mut();
            *pg[0].0 = Matrix::from_vec(1, 1, vec![2.0]);
            *pg[1].0 = Matrix::zeros(1, 1);
        }
        let x = Seq::from_steps(vec![Matrix::filled(2, 1, 1.0), Matrix::filled(2, 1, 3.0)]);
        let y = l.forward(&x, false);
        assert_eq!(y.step(0)[(0, 0)], 2.0);
        assert_eq!(y.step(1)[(1, 0)], 6.0);
    }

    #[test]
    fn relu_zeroes_negative_preactivations() {
        let mut l = Dense::new_seeded(1, 1, Activation::Relu, 3);
        {
            let mut pg = l.params_and_grads_mut();
            *pg[0].0 = Matrix::from_vec(1, 1, vec![1.0]);
            *pg[1].0 = Matrix::zeros(1, 1);
        }
        let x = Seq::single(Matrix::from_rows(&[vec![-5.0], vec![5.0]]));
        let y = l.forward(&x, false);
        assert_eq!(y.step(0)[(0, 0)], 0.0);
        assert_eq!(y.step(0)[(1, 0)], 5.0);
    }

    #[test]
    fn backward_accumulates_bias_gradient() {
        let mut l = Dense::new_seeded(2, 1, Activation::Linear, 5);
        let x = Seq::single(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
        let _ = l.forward(&x, true);
        let g = Seq::single(Matrix::from_rows(&[vec![1.0], vec![1.0]]));
        let _ = l.backward(&g);
        // dL/db = sum over batch of upstream grads = 2.
        let pg = l.params_and_grads_mut();
        assert_eq!(pg[1].1[(0, 0)], 2.0);
    }

    #[test]
    fn zero_grads_resets() {
        let mut l = Dense::new_seeded(2, 1, Activation::Linear, 5);
        let x = Seq::single(Matrix::ones(1, 2));
        let _ = l.forward(&x, true);
        let _ = l.backward(&Seq::single(Matrix::ones(1, 1)));
        l.zero_grads();
        let pg = l.params_and_grads_mut();
        assert_eq!(pg[0].1.sum(), 0.0);
        assert_eq!(pg[1].1.sum(), 0.0);
    }

    #[test]
    fn seeded_construction_is_deterministic() {
        let a = Dense::new_seeded(3, 4, Activation::Tanh, 11);
        let b = Dense::new_seeded(3, 4, Activation::Tanh, 11);
        assert_eq!(a.params()[0], b.params()[0]);
    }

    #[test]
    fn serde_round_trip_preserves_weights() {
        let l = Dense::new_seeded(3, 2, Activation::Sigmoid, 7);
        let json = serde_json::to_string(&l).expect("serialize");
        let mut back: Dense = serde_json::from_str(&json).expect("deserialize");
        back.rebuild_transient();
        assert_eq!(l.params()[0], back.params()[0]);
        assert_eq!(l.params()[1], back.params()[1]);
        assert_eq!(l.activation(), back.activation());
    }
}
