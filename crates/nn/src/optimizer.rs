//! Gradient-descent optimisers.

use evfad_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Optimiser state and update rule.
///
/// Parameters are addressed positionally: the caller passes the same ordered
/// `(param, grad)` list on every step (as produced by
/// [`Sequential::params_and_grads_mut`](crate::Sequential)); optimiser state
/// is kept per position.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Optimizer {
    /// Plain stochastic gradient descent.
    Sgd(Sgd),
    /// Adam (Kingma & Ba, 2015) — the paper's optimiser with
    /// `LEARNING_RATE = 0.001`.
    Adam(Adam),
}

impl Optimizer {
    /// Applies one update step to every `(param, grad)` pair, consuming the
    /// accumulated gradients (the caller zeroes them afterwards).
    pub fn step(&mut self, params_and_grads: &mut [(&mut Matrix, &mut Matrix)]) {
        match self {
            Optimizer::Sgd(o) => o.step(params_and_grads),
            Optimizer::Adam(o) => o.step(params_and_grads),
        }
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f64 {
        match self {
            Optimizer::Sgd(o) => o.learning_rate,
            Optimizer::Adam(o) => o.learning_rate,
        }
    }

    /// Resets any accumulated moment state (used when a federated client
    /// receives fresh global weights and should not reuse stale momenta).
    pub fn reset_state(&mut self) {
        match self {
            Optimizer::Sgd(_) => {}
            Optimizer::Adam(o) => o.reset_state(),
        }
    }
}

impl From<Sgd> for Optimizer {
    fn from(o: Sgd) -> Self {
        Optimizer::Sgd(o)
    }
}

impl From<Adam> for Optimizer {
    fn from(o: Adam) -> Self {
        Optimizer::Adam(o)
    }
}

impl Default for Optimizer {
    fn default() -> Self {
        Optimizer::Adam(Adam::new(0.001))
    }
}

/// Plain SGD: `w -= lr * g`.
///
/// # Examples
///
/// ```
/// use evfad_nn::Sgd;
/// use evfad_tensor::Matrix;
///
/// let mut opt = Sgd::new(0.1);
/// let mut w = Matrix::ones(1, 1);
/// let mut g = Matrix::filled(1, 1, 2.0);
/// opt.step(&mut [(&mut w, &mut g)]);
/// assert!((w[(0, 0)] - 0.8).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    /// Step size.
    pub learning_rate: f64,
}

impl Sgd {
    /// Creates an SGD optimiser with the given learning rate.
    pub fn new(learning_rate: f64) -> Self {
        Self { learning_rate }
    }

    /// Applies `w -= lr * g` to each pair.
    pub fn step(&mut self, params_and_grads: &mut [(&mut Matrix, &mut Matrix)]) {
        for (w, g) in params_and_grads.iter_mut() {
            w.axpy(-self.learning_rate, g);
        }
    }
}

/// Adam optimiser with bias-corrected first/second moments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Step size (paper: `0.001`).
    pub learning_rate: f64,
    /// First-moment decay (default `0.9`).
    pub beta1: f64,
    /// Second-moment decay (default `0.999`).
    pub beta2: f64,
    /// Numerical-stability constant (default `1e-8`).
    pub epsilon: f64,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Creates an Adam optimiser with Keras-default betas and epsilon.
    pub fn new(learning_rate: f64) -> Self {
        Self {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Applies one Adam update to every `(param, grad)` pair.
    ///
    /// # Panics
    ///
    /// Panics if the number of pairs changes between calls.
    pub fn step(&mut self, params_and_grads: &mut [(&mut Matrix, &mut Matrix)]) {
        if self.m.is_empty() {
            self.m = params_and_grads
                .iter()
                .map(|(w, _)| Matrix::zeros(w.rows(), w.cols()))
                .collect();
            self.v = self.m.clone();
        }
        assert_eq!(
            self.m.len(),
            params_and_grads.len(),
            "Adam was initialised for a different parameter set"
        );
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (idx, (w, g)) in params_and_grads.iter_mut().enumerate() {
            let m = &mut self.m[idx];
            let v = &mut self.v[idx];
            for ((wv, gv), (mv, vv)) in w
                .as_mut_slice()
                .iter_mut()
                .zip(g.as_slice())
                .zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice()))
            {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
                let m_hat = *mv / b1t;
                let v_hat = *vv / b2t;
                *wv -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
            }
        }
    }

    /// Clears moment estimates and the step counter.
    pub fn reset_state(&mut self) {
        self.t = 0;
        self.m.clear();
        self.v.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_descent(opt: &mut Optimizer, start: f64, iters: usize) -> f64 {
        // Minimise f(w) = (w - 3)^2; grad = 2(w - 3).
        let mut w = Matrix::filled(1, 1, start);
        for _ in 0..iters {
            let mut g = Matrix::filled(1, 1, 2.0 * (w[(0, 0)] - 3.0));
            opt.step(&mut [(&mut w, &mut g)]);
        }
        w[(0, 0)]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt: Optimizer = Sgd::new(0.1).into();
        let w = quadratic_descent(&mut opt, 0.0, 100);
        assert!((w - 3.0).abs() < 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt: Optimizer = Adam::new(0.05).into();
        let w = quadratic_descent(&mut opt, 0.0, 2000);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn adam_first_step_magnitude_is_lr() {
        // With bias correction, the very first Adam step is ~lr in magnitude.
        let mut opt = Adam::new(0.001);
        let mut w = Matrix::zeros(1, 1);
        let mut g = Matrix::filled(1, 1, 123.0);
        opt.step(&mut [(&mut w, &mut g)]);
        assert!((w[(0, 0)].abs() - 0.001).abs() < 1e-6);
    }

    #[test]
    fn adam_reset_state_clears_momenta() {
        let mut opt = Adam::new(0.01);
        let mut w = Matrix::zeros(1, 1);
        let mut g = Matrix::filled(1, 1, 1.0);
        opt.step(&mut [(&mut w, &mut g)]);
        opt.reset_state();
        assert_eq!(opt.t, 0);
        assert!(opt.m.is_empty());
    }

    #[test]
    #[should_panic(expected = "different parameter set")]
    fn adam_rejects_changed_param_count() {
        let mut opt = Adam::new(0.01);
        let mut w = Matrix::zeros(1, 1);
        let mut g = Matrix::zeros(1, 1);
        opt.step(&mut [(&mut w, &mut g)]);
        let mut w2 = Matrix::zeros(1, 1);
        let mut g2 = Matrix::zeros(1, 1);
        opt.step(&mut [(&mut w, &mut g), (&mut w2, &mut g2)]);
    }

    #[test]
    fn default_optimizer_is_paper_adam() {
        let opt = Optimizer::default();
        assert!((opt.learning_rate() - 0.001).abs() < 1e-12);
    }

    /// Deterministic pseudo-gradient stream (no RNG: reproducible bitwise).
    fn fake_grad(step: usize, rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            ((step * 131 + r * 17 + c * 7) as f64 * 0.37).sin() * 1.5
        })
    }

    /// The in-place Adam kernel must follow the exact trajectory of a
    /// naively allocating reference that evaluates the same expression tree
    /// (`w - lr * m_hat / (v_hat.sqrt() + eps)`), bit for bit, so optimiser
    /// state never drifts from the golden fixtures.
    #[test]
    fn adam_trajectory_matches_allocating_reference_bitwise() {
        let (lr, beta1, beta2, eps) = (0.001, 0.9, 0.999, 1e-8);
        let mut opt = Adam::new(lr);
        let mut w = Matrix::from_fn(4, 3, |r, c| (r as f64 - c as f64) * 0.25);
        let mut w_ref = w.clone();
        let mut m_ref = Matrix::zeros(4, 3);
        let mut v_ref = Matrix::zeros(4, 3);
        for step in 1..=50 {
            let mut g = fake_grad(step, 4, 3);
            opt.step(&mut [(&mut w, &mut g)]);

            let b1t = 1.0 - beta1_pow(beta1, step);
            let b2t = 1.0 - beta1_pow(beta2, step);
            m_ref = m_ref.zip_map(&g, |mv, gv| beta1 * mv + (1.0 - beta1) * gv);
            v_ref = v_ref.zip_map(&g, |vv, gv| beta2 * vv + (1.0 - beta2) * gv * gv);
            let num = m_ref.zip_map(&v_ref, |mv, vv| {
                let m_hat = mv / b1t;
                let v_hat = vv / b2t;
                lr * m_hat / (v_hat.sqrt() + eps)
            });
            w_ref = w_ref.zip_map(&num, |wv, u| wv - u);

            for (a, b) in w.as_slice().iter().zip(w_ref.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "diverged at step {step}");
            }
        }
    }

    fn beta1_pow(beta: f64, t: usize) -> f64 {
        beta.powi(t as i32)
    }

    /// `Sgd::step` goes through `Matrix::axpy` (`w += (-lr) * g`); pin it
    /// against the same expression evaluated through fresh allocations.
    #[test]
    fn sgd_trajectory_matches_allocating_reference_bitwise() {
        let lr = 0.05;
        let mut opt = Sgd::new(lr);
        let mut w = Matrix::from_fn(3, 5, |r, c| ((r * 5 + c) as f64).cos());
        let mut w_ref = w.clone();
        for step in 1..=50 {
            let mut g = fake_grad(step, 3, 5);
            opt.step(&mut [(&mut w, &mut g)]);
            w_ref = w_ref.zip_map(&g, |wv, gv| wv + (-lr) * gv);
            for (a, b) in w.as_slice().iter().zip(w_ref.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "diverged at step {step}");
            }
        }
    }

    #[test]
    fn sgd_multi_param_update() {
        let mut opt = Sgd::new(1.0);
        let mut w1 = Matrix::ones(1, 2);
        let mut g1 = Matrix::filled(1, 2, 0.5);
        let mut w2 = Matrix::zeros(2, 1);
        let mut g2 = Matrix::filled(2, 1, -1.0);
        opt.step(&mut [(&mut w1, &mut g1), (&mut w2, &mut g2)]);
        assert_eq!(w1, Matrix::filled(1, 2, 0.5));
        assert_eq!(w2, Matrix::filled(2, 1, 1.0));
    }
}
