//! Error type for the neural-network substrate.

use std::error::Error;
use std::fmt;

/// Errors surfaced by model construction, training, and weight exchange.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// Training was requested on an empty dataset.
    EmptyDataset,
    /// A weight vector handed to [`set_weights`](crate::Sequential::set_weights)
    /// does not match the model's parameter count or shapes.
    WeightMismatch {
        /// Expected number of parameter tensors.
        expected: usize,
        /// Provided number of parameter tensors.
        got: usize,
    },
    /// Loss or activations became non-finite during training (diverged).
    NonFiniteLoss {
        /// Epoch (0-based) at which divergence was detected.
        epoch: usize,
    },
    /// An invalid hyper-parameter was supplied.
    InvalidConfig(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::EmptyDataset => write!(f, "training dataset is empty"),
            NnError::WeightMismatch { expected, got } => write!(
                f,
                "weight vector mismatch: model has {expected} parameter tensors, got {got}"
            ),
            NnError::NonFiniteLoss { epoch } => {
                write!(f, "loss became non-finite at epoch {epoch}")
            }
            NnError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for NnError {}

/// Result alias for this crate.
pub type NnResult<T> = Result<T, NnError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(NnError::EmptyDataset.to_string().contains("empty"));
        assert!(NnError::WeightMismatch {
            expected: 4,
            got: 2
        }
        .to_string()
        .contains('4'));
        assert!(NnError::NonFiniteLoss { epoch: 3 }
            .to_string()
            .contains('3'));
        assert!(NnError::InvalidConfig("x".into()).to_string().contains('x'));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<NnError>();
    }
}
