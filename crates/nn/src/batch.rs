//! One-time epoch marshalling: time-major sample stacks consumed by gathers.

use crate::model::Sample;
use crate::seq::SeqBuf;
use evfad_tensor::{kernels, MatMut, Matrix};

/// A time-major stack of every training sample, built once per
/// [`fit`](crate::Sequential::fit).
///
/// `input_steps[t]` is an `n x features` matrix whose row `i` holds
/// timestep `t` of sample `i` (likewise for targets). A shuffled
/// mini-batch is then just an index slice consumed by
/// [`BatchPlan::gather_into`]: one
/// [`gather_rows_into`](evfad_tensor::kernels::gather_rows_into) per step
/// replaces the per-batch clone + [`Seq::from_samples`](crate::Seq)
/// marshalling.
///
/// # Bitwise contract
///
/// `from_samples` builds step `t` as
/// `from_fn(batch, feat, |b, f| batch_samples[b][(t, f)])`; the gather
/// copies row `idx[b]` of the stack, whose row `i` is exactly sample `i`'s
/// timestep `t`. Both are pure copies of the same values in the same
/// positions, so the gathered batch is byte-identical to the clone +
/// `from_samples` batch for every shuffle order.
///
/// # Examples
///
/// ```
/// use evfad_nn::{BatchPlan, Sample, Seq, SeqBuf};
/// use evfad_tensor::Matrix;
///
/// let samples: Vec<Sample> = (0..4)
///     .map(|i| Sample::autoencoding(Matrix::column_vector(&[i as f64, -(i as f64)])))
///     .collect();
/// let plan = BatchPlan::new(&samples);
/// let (mut bin, mut btg) = (SeqBuf::new(), SeqBuf::new());
/// plan.gather_into(&[3, 1], &mut bin, &mut btg);
/// let expect = Seq::from_samples(&[samples[3].input.clone(), samples[1].input.clone()]);
/// assert_eq!(bin.seq(), &expect);
/// ```
#[derive(Debug, Clone)]
pub struct BatchPlan {
    input_steps: Vec<Matrix>,
    target_steps: Vec<Matrix>,
    n: usize,
}

impl BatchPlan {
    /// Stacks `samples` time-major, once.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty, if any sample disagrees on input or
    /// target shape, or if either shape has zero timesteps.
    pub fn new(samples: &[Sample]) -> Self {
        assert!(!samples.is_empty(), "BatchPlan requires samples");
        let (ti, fi) = samples[0].input.shape();
        let (tt, ft) = samples[0].target.shape();
        assert!(ti > 0 && tt > 0, "samples need at least one timestep");
        assert!(
            samples
                .iter()
                .all(|s| s.input.shape() == (ti, fi) && s.target.shape() == (tt, ft)),
            "all samples must share the same input/target shapes"
        );
        let n = samples.len();
        let input_steps = (0..ti)
            .map(|t| Matrix::from_fn(n, fi, |b, f| samples[b].input[(t, f)]))
            .collect();
        let target_steps = (0..tt)
            .map(|t| Matrix::from_fn(n, ft, |b, f| samples[b].target[(t, f)]))
            .collect();
        Self {
            input_steps,
            target_steps,
            n,
        }
    }

    /// Number of stacked samples.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`: construction rejects empty sample sets.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Gathers the samples listed in `idx` into time-major input/target
    /// batches, reusing the buffers' storage on the warm path (zero matrix
    /// allocations once the shapes have been seen).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is empty or contains an index `>= self.len()`.
    pub fn gather_into(&self, idx: &[usize], input: &mut SeqBuf, target: &mut SeqBuf) {
        let b = idx.len();
        assert!(b > 0, "gather_into requires a non-empty batch");
        let fi = self.input_steps[0].cols();
        let seq = input.ensure(self.input_steps.len(), b, fi);
        for (t, step) in self.input_steps.iter().enumerate() {
            kernels::gather_rows_into(step.view(), idx, MatMut::new(b, fi, seq.step_data_mut(t)));
        }
        let ft = self.target_steps[0].cols();
        let seq = target.ensure(self.target_steps.len(), b, ft);
        for (t, step) in self.target_steps.iter().enumerate() {
            kernels::gather_rows_into(step.view(), idx, MatMut::new(b, ft, seq.step_data_mut(t)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::Seq;

    fn samples(n: usize) -> Vec<Sample> {
        (0..n)
            .map(|i| {
                let xs: Vec<f64> = (0..5).map(|t| ((i * 5 + t) as f64 * 0.3).sin()).collect();
                Sample::new(
                    Matrix::column_vector(&xs),
                    Matrix::from_vec(1, 1, vec![(i as f64).cos()]),
                )
            })
            .collect()
    }

    #[test]
    fn gather_matches_clone_plus_from_samples() {
        let train = samples(7);
        let plan = BatchPlan::new(&train);
        assert_eq!(plan.len(), 7);
        let idx = [6usize, 2, 2, 0, 5];
        let (mut bin, mut btg) = (SeqBuf::new(), SeqBuf::new());
        plan.gather_into(&idx, &mut bin, &mut btg);
        let inputs: Vec<Matrix> = idx.iter().map(|&i| train[i].input.clone()).collect();
        let targets: Vec<Matrix> = idx.iter().map(|&i| train[i].target.clone()).collect();
        assert_eq!(bin.seq(), &Seq::from_samples(&inputs));
        assert_eq!(btg.seq(), &Seq::from_samples(&targets));
    }

    #[test]
    fn gather_reuses_buffers_across_batches() {
        let train = samples(6);
        let plan = BatchPlan::new(&train);
        let (mut bin, mut btg) = (SeqBuf::new(), SeqBuf::new());
        plan.gather_into(&[0, 1, 2], &mut bin, &mut btg);
        plan.gather_into(&[5, 4, 3], &mut bin, &mut btg);
        let inputs: Vec<Matrix> = [5, 4, 3].iter().map(|&i| train[i].input.clone()).collect();
        assert_eq!(bin.seq(), &Seq::from_samples(&inputs));
    }

    #[test]
    #[should_panic(expected = "same input/target shapes")]
    fn mismatched_samples_panic() {
        let mut s = samples(3);
        s[1].input = Matrix::zeros(2, 1);
        let _ = BatchPlan::new(&s);
    }
}
