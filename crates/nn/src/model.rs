//! Layer container and training loop.

use crate::batch::BatchPlan;
use crate::error::{NnError, NnResult};
use crate::layer::Layer;
use crate::layers::{Dense, Dropout, Lstm};
use crate::loss::Loss;
use crate::optimizer::Optimizer;
use crate::seq::{Seq, SeqBuf};
use evfad_tensor::{kernels, MatMut, Matrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One training example: an input sequence and its target.
///
/// `input` is `time x features`; `target` is `target_time x target_features`
/// (one row for a single-step forecast, `time` rows for an autoencoder).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Input sequence, `time x features`.
    pub input: Matrix,
    /// Training target.
    pub target: Matrix,
}

impl Sample {
    /// Creates a sample from an input sequence and target.
    pub fn new(input: Matrix, target: Matrix) -> Self {
        Self { input, target }
    }

    /// Creates an autoencoder sample whose target is the input itself.
    pub fn autoencoding(input: Matrix) -> Self {
        let target = input.clone();
        Self { input, target }
    }
}

/// Hyper-parameters for [`Sequential::fit`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (paper: 32).
    pub batch_size: usize,
    /// Loss to minimise.
    pub loss: Loss,
    /// Whether to shuffle sample order each epoch.
    pub shuffle: bool,
    /// Fraction (0..1) of the *end* of the dataset held out for validation.
    pub validation_split: f64,
    /// Early-stopping patience in epochs; `None` disables early stopping.
    /// The paper uses `patience = 10` for autoencoder training.
    pub patience: Option<usize>,
    /// Minimum improvement that resets patience.
    pub min_delta: f64,
    /// Global-norm gradient clipping; `None` disables clipping.
    pub clip_norm: Option<f64>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 32,
            loss: Loss::Mse,
            shuffle: true,
            validation_split: 0.0,
            patience: None,
            min_delta: 1e-6,
            clip_norm: Some(5.0),
        }
    }
}

/// Per-epoch statistics recorded during [`Sequential::fit`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub train_loss: f64,
    /// Validation loss, when a validation split was configured.
    pub val_loss: Option<f64>,
}

/// The result of a [`Sequential::fit`] call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TrainHistory {
    /// Statistics per completed epoch.
    pub epochs: Vec<EpochStats>,
    /// Whether early stopping fired before `cfg.epochs` epochs.
    pub stopped_early: bool,
    /// Epoch with the best monitored loss.
    pub best_epoch: usize,
}

impl TrainHistory {
    /// Final training loss, if any epoch ran.
    pub fn final_train_loss(&self) -> Option<f64> {
        self.epochs.last().map(|e| e.train_loss)
    }
}

/// A Keras-style sequential stack of [`Layer`]s.
///
/// The model owns its [`Optimizer`] (default: Adam with the paper's
/// `LEARNING_RATE = 0.001`) and a master seed that deterministically
/// initialises every layer added through [`Sequential::with`].
///
/// # Examples
///
/// Build the paper's forecaster — `LSTM(50) -> Dense(10, relu) -> Dense(1)`:
///
/// ```
/// use evfad_nn::{Activation, Dense, Lstm, Sequential};
///
/// let model = Sequential::new(0)
///     .with(Lstm::new(1, 50, false))
///     .with(Dense::new(50, 10, Activation::Relu))
///     .with(Dense::new(10, 1, Activation::Linear));
/// assert_eq!(model.layer_count(), 3);
/// assert!(model.scalar_param_count() > 10_000);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sequential {
    layers: Vec<Layer>,
    optimizer: Optimizer,
    seed: u64,
    layers_added: u64,
    /// Persistent staging + per-layer output buffers for full
    /// (`EVAL_CHUNK`-sized) inference batches.
    #[serde(skip)]
    eval_full: EvalBufs,
    /// Same, for the ragged tail chunk. Keeping the two shapes in separate
    /// buffers means warm `predict`/`evaluate` calls never reshape (and so
    /// never reallocate) as they alternate between full chunks and the
    /// tail.
    #[serde(skip)]
    eval_tail: EvalBufs,
    /// Row-index scratch for scattering batched outputs into flat buffers.
    #[serde(skip)]
    scatter_idx: Vec<usize>,
}

/// Chunk size for staged inference batches.
const EVAL_CHUNK: usize = 256;

/// One shape's worth of persistent inference buffers: the staged input
/// batch, the staged target batch (evaluation only), and one output buffer
/// per layer for the eval forward chain.
#[derive(Debug, Clone, Default)]
struct EvalBufs {
    arena: Vec<SeqBuf>,
    input: SeqBuf,
    target: SeqBuf,
}

impl Sequential {
    /// Creates an empty model whose layers will be re-initialised
    /// deterministically from `seed` as they are added.
    pub fn new(seed: u64) -> Self {
        Self {
            layers: Vec::new(),
            optimizer: Optimizer::default(),
            seed,
            layers_added: 0,
            eval_full: EvalBufs::default(),
            eval_tail: EvalBufs::default(),
            scatter_idx: Vec::new(),
        }
    }

    /// Adds a layer (builder style), re-initialising its weights from the
    /// model seed so identically-built models start identical regardless of
    /// how the layers themselves were constructed.
    pub fn with(mut self, layer: impl Into<Layer>) -> Self {
        self.push(layer);
        self
    }

    /// Adds a layer in place; see [`Sequential::with`].
    pub fn push(&mut self, layer: impl Into<Layer>) {
        let mut layer = layer.into();
        let layer_seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.layers_added);
        let mut rng = StdRng::seed_from_u64(layer_seed);
        match &mut layer {
            Layer::Dense(l) => l.reinitialize(&mut rng),
            Layer::Lstm(l) => l.reinitialize(&mut rng),
            Layer::Gru(l) => l.reinitialize(&mut rng),
            Layer::Dropout(l) => l.reseed(rng.gen()),
            Layer::RepeatVector(_) => {}
        }
        self.layers_added += 1;
        self.layers.push(layer);
    }

    /// Replaces the optimiser (builder style).
    pub fn with_optimizer(mut self, optimizer: impl Into<Optimizer>) -> Self {
        self.optimizer = optimizer.into();
        self
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Borrow of the layer stack.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// The model's master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total number of scalar trainable parameters.
    pub fn scalar_param_count(&self) -> usize {
        self.layers
            .iter()
            .flat_map(|l| l.params())
            .map(Matrix::len)
            .sum()
    }

    /// Forward pass through every layer.
    pub fn forward(&mut self, input: &Seq, training: bool) -> Seq {
        let mut layers = self.layers.iter_mut();
        let mut x = match layers.next() {
            Some(first) => first.forward(input, training),
            None => return input.clone(),
        };
        for layer in layers {
            x = layer.forward(&x, training);
        }
        x
    }

    /// Backward pass through every layer (reverse order), accumulating
    /// parameter gradients. The first layer skips its input-gradient
    /// product — nothing consumes it.
    pub fn backward(&mut self, grad: &Seq) {
        let mut g: Option<Seq> = None;
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            let upstream = g.as_ref().unwrap_or(grad);
            g = layer.backward_input(upstream, i > 0);
        }
    }

    /// Clears all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Eval-mode forward chain over the persistent arena: layer `i` reads
    /// its input from `arena[i - 1]` (or `input`) and writes into
    /// `arena[i]`, so a warm call allocates no step matrices. Associated
    /// function (not a method) so callers can borrow other `self` fields —
    /// e.g. the staging buffers — alongside the arena.
    ///
    /// Bitwise identical to `forward(input, false)`: each layer's
    /// `forward_into` runs the exact same fused computation and only
    /// changes where the output lands.
    fn forward_eval<'a>(
        layers: &'a mut [Layer],
        arena: &'a mut Vec<SeqBuf>,
        input: &'a Seq,
    ) -> &'a Seq {
        if layers.is_empty() {
            return input;
        }
        if arena.len() != layers.len() {
            arena.resize_with(layers.len(), SeqBuf::new);
        }
        for (i, layer) in layers.iter_mut().enumerate() {
            let (done, rest) = arena.split_at_mut(i);
            let x: &Seq = if i == 0 { input } else { done[i - 1].seq() };
            layer.forward_into(x, &mut rest[0]);
        }
        arena[layers.len() - 1].seq()
    }

    /// Eval forward + sample-major flat write: the batched output lands in
    /// `out[offset..]` as `out[offset + (b * T + t) * F + f]`, growing
    /// `out` if needed. Returns `(out_time, out_features)`.
    fn eval_into_vec(
        layers: &mut [Layer],
        arena: &mut Vec<SeqBuf>,
        idx: &mut Vec<usize>,
        input: &Seq,
        out: &mut Vec<f64>,
        offset: usize,
    ) -> (usize, usize) {
        let res = Self::forward_eval(layers, arena, input);
        let (t_out, batch, f_out) = (res.len(), res.batch_size(), res.features());
        let need = offset + batch * t_out * f_out;
        if out.len() < need {
            out.resize(need, 0.0);
        }
        let dst = &mut out[offset..need];
        // Each time step scatters its rows to the per-sample positions:
        // viewing `dst` as a (batch * T) x F matrix, sample b's step t is
        // row b * T + t.
        for t in 0..t_out {
            idx.clear();
            idx.extend((0..batch).map(|b| b * t_out + t));
            kernels::scatter_rows_into(
                res.step(t).view(),
                idx,
                MatMut::new(batch * t_out, f_out, dst),
            );
        }
        (t_out, f_out)
    }

    /// Runs inference on a set of samples, returning one output matrix
    /// (`target_time x target_features`) per sample. Samples are processed
    /// in batches of 256, staged and evaluated through persistent buffers
    /// (bitwise identical outputs to the allocating path; only the
    /// returned matrices are freshly allocated).
    pub fn predict(&mut self, inputs: &[Matrix]) -> Vec<Matrix> {
        let mut outputs = Vec::with_capacity(inputs.len());
        for chunk in inputs.chunks(EVAL_CHUNK) {
            let (time, feat) = chunk[0].shape();
            let bufs = if chunk.len() == EVAL_CHUNK {
                &mut self.eval_full
            } else {
                &mut self.eval_tail
            };
            let batch = bufs.input.ensure(time, chunk.len(), feat);
            for (b, sample) in chunk.iter().enumerate() {
                batch.load_sample(b, sample);
            }
            let out = Self::forward_eval(&mut self.layers, &mut bufs.arena, bufs.input.seq());
            outputs.extend(out.to_samples());
        }
        outputs
    }

    /// [`Sequential::predict`] without the `to_samples` round-trip: every
    /// sample's output is written into `out` sample-major
    /// (`out[(i * T + t) * F + f]` for sample `i`), which is resized to
    /// exactly `inputs.len() * T * F`. Returns `(out_time, out_features)`.
    ///
    /// Bitwise identical values to `predict`; a warm call makes zero
    /// matrix allocations.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or the samples disagree on shape.
    pub fn predict_into(&mut self, inputs: &[Matrix], out: &mut Vec<f64>) -> (usize, usize) {
        assert!(!inputs.is_empty(), "predict_into requires inputs");
        let mut shape = (0usize, 0usize);
        let mut written = 0usize;
        for chunk in inputs.chunks(EVAL_CHUNK) {
            let (time, feat) = chunk[0].shape();
            let bufs = if chunk.len() == EVAL_CHUNK {
                &mut self.eval_full
            } else {
                &mut self.eval_tail
            };
            let batch = bufs.input.ensure(time, chunk.len(), feat);
            for (b, sample) in chunk.iter().enumerate() {
                batch.load_sample(b, sample);
            }
            shape = Self::eval_into_vec(
                &mut self.layers,
                &mut bufs.arena,
                &mut self.scatter_idx,
                bufs.input.seq(),
                out,
                written,
            );
            written += chunk.len() * shape.0 * shape.1;
        }
        out.truncate(written);
        shape
    }

    /// Eval-mode forward over one caller-prepared batch, writing the
    /// output into `out` starting at `offset`, sample-major
    /// (`out[offset + (b * T + t) * F + f]`). `out` grows if needed.
    /// Returns `(out_time, out_features)`.
    ///
    /// This is the streaming entry point for callers that marshal their
    /// own batches into a [`SeqBuf`] (e.g. windowed anomaly scoring) and
    /// want reconstructions in a flat reusable buffer.
    pub fn predict_seq_into(
        &mut self,
        input: &Seq,
        out: &mut Vec<f64>,
        offset: usize,
    ) -> (usize, usize) {
        // Route by batch size the same way the chunked entries do, so a
        // caller alternating full chunks with a ragged tail keeps both
        // arenas warm.
        let arena = if input.batch_size() == EVAL_CHUNK {
            &mut self.eval_full.arena
        } else {
            &mut self.eval_tail.arena
        };
        Self::eval_into_vec(
            &mut self.layers,
            arena,
            &mut self.scatter_idx,
            input,
            out,
            offset,
        )
    }

    /// Mean loss of the model on `samples` (inference mode).
    ///
    /// Inputs and targets are staged into persistent batch buffers (no
    /// per-chunk clones) and the loss is computed from views; the values
    /// are bitwise identical to the old clone + `from_samples` path.
    pub fn evaluate(&mut self, samples: &[Sample], loss: Loss) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        let mut count = 0usize;
        for chunk in samples.chunks(EVAL_CHUNK) {
            let (ti, fi) = chunk[0].input.shape();
            let bufs = if chunk.len() == EVAL_CHUNK {
                &mut self.eval_full
            } else {
                &mut self.eval_tail
            };
            let batch = bufs.input.ensure(ti, chunk.len(), fi);
            for (b, s) in chunk.iter().enumerate() {
                batch.load_sample(b, &s.input);
            }
            let (tt, ft) = chunk[0].target.shape();
            let tgt = bufs.target.ensure(tt, chunk.len(), ft);
            for (b, s) in chunk.iter().enumerate() {
                tgt.load_sample(b, &s.target);
            }
            let pred = Self::forward_eval(&mut self.layers, &mut bufs.arena, bufs.input.seq());
            total += loss.value(pred, bufs.target.seq()) * chunk.len() as f64;
            count += chunk.len();
        }
        total / count as f64
    }

    /// Runs one mini-batch gradient step — forward, loss, backward,
    /// optional gradient clipping, optimiser update, gradient reset — and
    /// returns the batch loss. This is the training hot path
    /// [`Sequential::fit`] iterates; it is public so benchmarks and custom
    /// training loops can drive single steps.
    pub fn train_batch(
        &mut self,
        input: &Seq,
        target: &Seq,
        loss: Loss,
        clip_norm: Option<f64>,
    ) -> f64 {
        let pred = self.forward(input, true);
        let (loss_value, grad) = loss.evaluate(&pred, target);
        self.backward(&grad);
        if let Some(max_norm) = clip_norm {
            self.clip_gradients(max_norm);
        }
        let mut pg: Vec<(&mut Matrix, &mut Matrix)> = self
            .layers
            .iter_mut()
            .flat_map(|l| l.params_and_grads_mut())
            .collect();
        self.optimizer.step(&mut pg);
        drop(pg);
        self.zero_grads();
        loss_value
    }

    /// Trains the model with mini-batch gradient descent.
    ///
    /// Mirrors `model.fit` in Keras: optional shuffling, a tail validation
    /// split, and early stopping with best-weight restoration.
    ///
    /// Batches are marshalled through a [`BatchPlan`] built once per call:
    /// the shuffle produces an index permutation that gathers rows out of a
    /// time-major sample stack straight into reusable batch buffers, and
    /// each batch runs through [`Sequential::train_batch`]. Both are
    /// bitwise identical to the historical per-batch clone +
    /// `from_samples` + inline-step loop.
    ///
    /// # Errors
    ///
    /// * [`NnError::EmptyDataset`] if `samples` is empty (or empty after the
    ///   validation split).
    /// * [`NnError::InvalidConfig`] for a zero batch size or a validation
    ///   split outside `[0, 1)`.
    /// * [`NnError::NonFiniteLoss`] if training diverges. The divergence
    ///   check runs after the optimiser step that consumed the non-finite
    ///   loss (the step itself is unconditional inside `train_batch`), so
    ///   on this error path the model weights reflect one more update than
    ///   they historically did — observable only by callers that keep
    ///   using a model whose `fit` returned `Err`.
    pub fn fit(&mut self, samples: &[Sample], cfg: &TrainConfig) -> NnResult<TrainHistory> {
        if cfg.batch_size == 0 {
            return Err(NnError::InvalidConfig("batch_size must be >= 1".into()));
        }
        if !(0.0..1.0).contains(&cfg.validation_split) {
            return Err(NnError::InvalidConfig(
                "validation_split must be in [0, 1)".into(),
            ));
        }
        if samples.is_empty() {
            return Err(NnError::EmptyDataset);
        }
        let val_len = (samples.len() as f64 * cfg.validation_split).round() as usize;
        let train_len = samples.len() - val_len;
        if train_len == 0 {
            return Err(NnError::EmptyDataset);
        }
        let (train, val) = samples.split_at(train_len);

        let mut history = TrainHistory::default();
        let mut best_loss = f64::INFINITY;
        let mut best_weights: Option<Vec<Matrix>> = None;
        let mut epochs_without_improvement = 0usize;
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut shuffle_rng = StdRng::seed_from_u64(self.seed ^ 0xD1B5_4A32_D192_ED03);
        // Stack the training set time-major once; every batch of every
        // epoch is then a row gather. Full batches and the ragged tail
        // (if any) keep separate buffers so warm epochs never reshape.
        let plan = BatchPlan::new(train);
        let (mut batch_in, mut batch_tgt) = (SeqBuf::new(), SeqBuf::new());
        let (mut tail_in, mut tail_tgt) = (SeqBuf::new(), SeqBuf::new());

        for epoch in 0..cfg.epochs {
            if cfg.shuffle {
                order.shuffle(&mut shuffle_rng);
            }
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for batch_idx in order.chunks(cfg.batch_size) {
                let (bin, btg) = if batch_idx.len() == cfg.batch_size {
                    (&mut batch_in, &mut batch_tgt)
                } else {
                    (&mut tail_in, &mut tail_tgt)
                };
                plan.gather_into(batch_idx, bin, btg);
                let loss_value = self.train_batch(bin.seq(), btg.seq(), cfg.loss, cfg.clip_norm);
                if !loss_value.is_finite() {
                    return Err(NnError::NonFiniteLoss { epoch });
                }
                epoch_loss += loss_value;
                batches += 1;
            }
            let train_loss = epoch_loss / batches.max(1) as f64;
            let val_loss = if val.is_empty() {
                None
            } else {
                Some(self.evaluate(val, cfg.loss))
            };
            history.epochs.push(EpochStats {
                epoch,
                train_loss,
                val_loss,
            });

            let monitored = val_loss.unwrap_or(train_loss);
            if monitored + cfg.min_delta < best_loss {
                best_loss = monitored;
                history.best_epoch = epoch;
                epochs_without_improvement = 0;
                if cfg.patience.is_some() {
                    best_weights = Some(self.weights());
                }
            } else {
                epochs_without_improvement += 1;
                if let Some(patience) = cfg.patience {
                    if epochs_without_improvement >= patience {
                        history.stopped_early = true;
                        break;
                    }
                }
            }
        }
        if let Some(w) = best_weights {
            if history.stopped_early {
                self.set_weights(&w)?;
            }
        }
        Ok(history)
    }

    /// Exports every trainable parameter tensor (the federated-averaging
    /// payload), in layer order.
    pub fn weights(&self) -> Vec<Matrix> {
        self.layers
            .iter()
            .flat_map(|l| l.params().into_iter().cloned())
            .collect()
    }

    /// Imports parameter tensors previously produced by
    /// [`Sequential::weights`] on an identically-shaped model.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::WeightMismatch`] if the tensor count or any shape
    /// differs.
    pub fn set_weights(&mut self, weights: &[Matrix]) -> NnResult<()> {
        let expected = self.weights().len();
        if weights.len() != expected {
            return Err(NnError::WeightMismatch {
                expected,
                got: weights.len(),
            });
        }
        // Validate shapes first so we never apply a partial update.
        {
            let current = self.weights();
            for (c, n) in current.iter().zip(weights.iter()) {
                if c.shape() != n.shape() {
                    return Err(NnError::WeightMismatch {
                        expected,
                        got: weights.len(),
                    });
                }
            }
        }
        let mut it = weights.iter();
        for layer in &mut self.layers {
            for (param, _) in layer.params_and_grads_mut() {
                *param = it.next().expect("count validated above").clone();
            }
        }
        Ok(())
    }

    /// Serialises the model (weights + architecture) to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serialisation cannot fail")
    }

    /// Restores a model serialised with [`Sequential::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the JSON is not a valid model.
    pub fn from_json(json: &str) -> NnResult<Self> {
        let mut model: Sequential = serde_json::from_str(json)
            .map_err(|e| NnError::InvalidConfig(format!("bad model JSON: {e}")))?;
        for layer in &mut model.layers {
            layer.rebuild_transient();
        }
        Ok(model)
    }

    /// Human-readable architecture summary.
    pub fn summary(&self) -> String {
        let mut out = String::from("Sequential [\n");
        for layer in &self.layers {
            let params: usize = layer.params().iter().map(|m| m.len()).sum();
            out.push_str(&format!("  {} ({} params)\n", layer.kind(), params));
        }
        out.push_str(&format!("] total {} params", self.scalar_param_count()));
        out
    }

    pub(crate) fn layers_mut_internal(&mut self) -> impl Iterator<Item = &mut Layer> {
        self.layers.iter_mut()
    }

    fn clip_gradients(&mut self, max_norm: f64) {
        let mut total = 0.0;
        for layer in &mut self.layers {
            for (_, g) in layer.params_and_grads_mut() {
                total += g.as_slice().iter().map(|x| x * x).sum::<f64>();
            }
        }
        let norm = total.sqrt();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for layer in &mut self.layers {
                for (_, g) in layer.params_and_grads_mut() {
                    g.map_inplace(|x| x * scale);
                }
            }
        }
    }
}

/// Builds the paper's forecaster architecture:
/// `LSTM(units) -> Dense(10, relu) -> Dense(1)` over univariate input.
///
/// # Examples
///
/// ```
/// let model = evfad_nn::forecaster_model(50, 7);
/// assert_eq!(model.layer_count(), 3);
/// ```
pub fn forecaster_model(lstm_units: usize, seed: u64) -> Sequential {
    Sequential::new(seed)
        .with(Lstm::new(1, lstm_units, false))
        .with(Dense::new(lstm_units, 10, crate::Activation::Relu))
        .with(Dense::new(10, 1, crate::Activation::Linear))
}

/// Builds the paper's LSTM autoencoder:
/// encoder `LSTM(50, seq) -> LSTM(25)` and decoder
/// `RepeatVector(seq_len) -> LSTM(25, seq) -> LSTM(50, seq) ->
/// TimeDistributed(Dense(1))`, with `Dropout(0.2)` after each encoder LSTM.
///
/// # Examples
///
/// ```
/// let model = evfad_nn::autoencoder_model(24, 7);
/// assert_eq!(model.layer_count(), 8);
/// ```
pub fn autoencoder_model(seq_len: usize, seed: u64) -> Sequential {
    Sequential::new(seed)
        .with(Lstm::new(1, 50, true))
        .with(Dropout::new(0.2))
        .with(Lstm::new(50, 25, false))
        .with(Dropout::new(0.2))
        .with(crate::RepeatVector::new(seq_len))
        .with(Lstm::new(25, 25, true))
        .with(Lstm::new(25, 50, true))
        .with(Dense::new(50, 1, crate::Activation::Linear))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;

    fn toy_samples(n: usize) -> Vec<Sample> {
        (0..n)
            .map(|i| {
                let xs: Vec<f64> = (0..6).map(|t| ((i + t) as f64 * 0.4).sin() * 0.5).collect();
                let y = ((i + 6) as f64 * 0.4).sin() * 0.5;
                Sample::new(Matrix::column_vector(&xs), Matrix::from_vec(1, 1, vec![y]))
            })
            .collect()
    }

    fn tiny_model(seed: u64) -> Sequential {
        Sequential::new(seed)
            .with(Lstm::new(1, 6, false))
            .with(Dense::new(6, 1, Activation::Linear))
    }

    #[test]
    fn same_seed_same_initial_weights() {
        let a = tiny_model(3);
        let b = tiny_model(3);
        assert_eq!(a.weights(), b.weights());
        let c = tiny_model(4);
        assert_ne!(a.weights(), c.weights());
    }

    #[test]
    fn fit_reduces_loss_on_learnable_signal() {
        let samples = toy_samples(64);
        let mut model = tiny_model(1).with_optimizer(crate::Adam::new(0.01));
        let cfg = TrainConfig {
            epochs: 40,
            batch_size: 16,
            ..TrainConfig::default()
        };
        let before = model.evaluate(&samples, Loss::Mse);
        let history = model.fit(&samples, &cfg).expect("fit");
        let after = model.evaluate(&samples, Loss::Mse);
        assert!(after < before * 0.25, "before={before} after={after}");
        assert_eq!(history.epochs.len(), 40);
    }

    #[test]
    fn fit_rejects_empty_dataset() {
        let mut model = tiny_model(1);
        assert_eq!(
            model.fit(&[], &TrainConfig::default()),
            Err(NnError::EmptyDataset)
        );
    }

    #[test]
    fn fit_rejects_zero_batch() {
        let mut model = tiny_model(1);
        let cfg = TrainConfig {
            batch_size: 0,
            ..TrainConfig::default()
        };
        assert!(matches!(
            model.fit(&toy_samples(4), &cfg),
            Err(NnError::InvalidConfig(_))
        ));
    }

    #[test]
    fn early_stopping_fires_and_truncates() {
        let samples = toy_samples(32);
        let mut model = tiny_model(2);
        let cfg = TrainConfig {
            epochs: 200,
            batch_size: 8,
            validation_split: 0.25,
            patience: Some(3),
            ..TrainConfig::default()
        };
        let history = model.fit(&samples, &cfg).expect("fit");
        assert!(history.epochs.len() <= 200);
        if history.stopped_early {
            assert!(history.best_epoch < history.epochs.len());
        }
    }

    #[test]
    fn weights_round_trip_through_set_weights() {
        let mut a = tiny_model(5);
        let b = tiny_model(9);
        a.set_weights(&b.weights()).expect("compatible");
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn set_weights_rejects_wrong_count() {
        let mut a = tiny_model(5);
        let err = a.set_weights(&[Matrix::zeros(1, 1)]).unwrap_err();
        assert!(matches!(err, NnError::WeightMismatch { .. }));
    }

    #[test]
    fn set_weights_rejects_wrong_shape() {
        let mut a = tiny_model(5);
        let mut w = a.weights();
        w[0] = Matrix::zeros(1, 1);
        assert!(a.set_weights(&w).is_err());
    }

    #[test]
    fn json_round_trip_preserves_predictions() {
        let mut model = tiny_model(8);
        let input = vec![Matrix::column_vector(&[0.1, 0.2, 0.3])];
        let before = model.predict(&input);
        let mut restored = Sequential::from_json(&model.to_json()).expect("round trip");
        let after = restored.predict(&input);
        assert_eq!(before, after);
    }

    #[test]
    fn predict_matches_forward() {
        let mut model = tiny_model(8);
        let inputs = vec![
            Matrix::column_vector(&[0.1, 0.2]),
            Matrix::column_vector(&[0.3, 0.4]),
        ];
        let preds = model.predict(&inputs);
        let batch = model.forward(&Seq::from_samples(&inputs), false);
        assert_eq!(preds[0][(0, 0)], batch.step(0)[(0, 0)]);
        assert_eq!(preds[1][(0, 0)], batch.step(0)[(1, 0)]);
    }

    #[test]
    fn paper_architectures_have_expected_shapes() {
        let f = forecaster_model(50, 0);
        // LSTM(1->50): (51*200 + 200) ; Dense(50->10): 510 ; Dense(10->1): 11.
        assert_eq!(f.scalar_param_count(), 51 * 200 + 200 + 510 + 11);
        let mut ae = autoencoder_model(4, 0);
        let x = Seq::from_samples(&[Matrix::column_vector(&[0.1, 0.2, 0.3, 0.4])]);
        let y = ae.forward(&x, false);
        assert_eq!(y.len(), 4);
        assert_eq!(y.step(0).shape(), (1, 1));
    }

    #[test]
    fn summary_mentions_layers() {
        let model = tiny_model(0);
        let s = model.summary();
        assert!(s.contains("lstm"));
        assert!(s.contains("dense"));
        assert!(s.contains("total"));
    }

    #[test]
    fn gradient_clipping_bounds_update() {
        let samples = toy_samples(8);
        let mut model = tiny_model(1);
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 8,
            clip_norm: Some(1e-9),
            ..TrainConfig::default()
        };
        let w_before = model.weights();
        model.fit(&samples, &cfg).expect("fit");
        let w_after = model.weights();
        // With a minuscule clip norm the weights barely move.
        let max_delta: f64 = w_before
            .iter()
            .zip(&w_after)
            .map(|(a, b)| (a.as_slice(), b.as_slice()))
            .flat_map(|(a, b)| a.iter().zip(b).map(|(x, y)| (x - y).abs()))
            .fold(0.0, f64::max);
        assert!(max_delta < 0.01, "max_delta={max_delta}");
    }
}
