//! Time-major batched sequences.

use evfad_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// A batch of equally long sequences in time-major layout.
///
/// `steps[t]` is a `batch x features` matrix holding timestep `t` of every
/// sequence in the batch. A non-sequential activation (e.g. the output of an
/// `Lstm` with `return_sequences = false`) is a `Seq` with exactly one step.
///
/// # Examples
///
/// ```
/// use evfad_nn::Seq;
/// use evfad_tensor::Matrix;
///
/// // Two samples, three timesteps, one feature each.
/// let samples = [
///     Matrix::column_vector(&[1.0, 2.0, 3.0]),
///     Matrix::column_vector(&[4.0, 5.0, 6.0]),
/// ];
/// let seq = Seq::from_samples(&samples);
/// assert_eq!(seq.len(), 3);
/// assert_eq!(seq.batch_size(), 2);
/// assert_eq!(seq.step(1)[(1, 0)], 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Seq {
    steps: Vec<Matrix>,
}

impl Seq {
    /// Creates a sequence batch from pre-built time-major steps.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty or the step shapes are inconsistent.
    pub fn from_steps(steps: Vec<Matrix>) -> Self {
        assert!(!steps.is_empty(), "a Seq needs at least one step");
        let shape = steps[0].shape();
        assert!(
            steps.iter().all(|s| s.shape() == shape),
            "all steps must share the same batch x features shape"
        );
        Self { steps }
    }

    /// Creates a single-step sequence (a plain batch of feature vectors).
    pub fn single(step: Matrix) -> Self {
        Self { steps: vec![step] }
    }

    /// Builds a time-major batch from per-sample `time x features` matrices.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or the samples disagree on shape.
    pub fn from_samples(samples: &[Matrix]) -> Self {
        assert!(!samples.is_empty(), "from_samples requires samples");
        let (time, feat) = samples[0].shape();
        assert!(
            samples.iter().all(|s| s.shape() == (time, feat)),
            "all samples must share the same time x features shape"
        );
        let batch = samples.len();
        let steps = (0..time)
            .map(|t| Matrix::from_fn(batch, feat, |b, f| samples[b][(t, f)]))
            .collect();
        Self { steps }
    }

    /// Splits the batch back into per-sample `time x features` matrices.
    pub fn to_samples(&self) -> Vec<Matrix> {
        let (batch, feat) = self.steps[0].shape();
        (0..batch)
            .map(|b| Matrix::from_fn(self.len(), feat, |t, f| self.steps[t][(b, f)]))
            .collect()
    }

    /// Number of timesteps.
    #[allow(clippy::len_without_is_empty)] // a Seq is never empty by construction
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Batch size (rows of every step).
    pub fn batch_size(&self) -> usize {
        self.steps[0].rows()
    }

    /// Feature width (columns of every step).
    pub fn features(&self) -> usize {
        self.steps[0].cols()
    }

    /// Borrow of the step at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.len()`.
    pub fn step(&self, t: usize) -> &Matrix {
        &self.steps[t]
    }

    /// Borrow of the final step.
    pub fn last_step(&self) -> &Matrix {
        self.steps.last().expect("Seq is never empty")
    }

    /// Mutable flat row-major contents of the step at time `t`.
    ///
    /// This is the fill-side of the zero-copy batch pipeline: gather and
    /// strided-copy kernels write marshalled rows straight into the step
    /// storage instead of building fresh matrices.
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.len()`.
    pub fn step_data_mut(&mut self, t: usize) -> &mut [f64] {
        self.steps[t].as_mut_slice()
    }

    /// Copies one `time x features` sample into batch row `b` of every step.
    ///
    /// Pure data movement: once every batch row has been loaded, the batch
    /// is bitwise identical to [`Seq::from_samples`] over the same samples
    /// in the same order.
    ///
    /// # Panics
    ///
    /// Panics if `b >= self.batch_size()` or `sample` is not
    /// `self.len() x self.features()`.
    pub fn load_sample(&mut self, b: usize, sample: &Matrix) {
        let (time, feat) = (self.len(), self.features());
        assert!(b < self.batch_size(), "batch row {b} out of bounds");
        assert_eq!(
            sample.shape(),
            (time, feat),
            "sample shape does not match the batch"
        );
        let src = sample.as_slice();
        for (t, step) in self.steps.iter_mut().enumerate() {
            step.as_mut_slice()[b * feat..(b + 1) * feat]
                .copy_from_slice(&src[t * feat..(t + 1) * feat]);
        }
    }

    /// Iterator over the steps in time order.
    pub fn iter(&self) -> std::slice::Iter<'_, Matrix> {
        self.steps.iter()
    }

    /// Consumes the batch and returns the time-major steps.
    pub fn into_steps(self) -> Vec<Matrix> {
        self.steps
    }

    /// Total number of scalar elements (`time * batch * features`).
    pub fn element_count(&self) -> usize {
        self.len() * self.batch_size() * self.features()
    }

    /// Elementwise map over every step.
    pub fn map(&self, f: impl Fn(f64) -> f64 + Copy + Sync) -> Seq {
        Seq {
            steps: self.steps.iter().map(|s| s.map(f)).collect(),
        }
    }

    /// Elementwise combination of two equally-shaped sequences.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, rhs: &Seq, f: impl Fn(f64, f64) -> f64 + Copy + Sync) -> Seq {
        assert_eq!(self.len(), rhs.len(), "Seq length mismatch");
        Seq {
            steps: self
                .steps
                .iter()
                .zip(rhs.steps.iter())
                .map(|(a, b)| a.zip_map(b, f))
                .collect(),
        }
    }

    /// Returns `true` if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.steps.iter().all(Matrix::is_finite)
    }
}

impl<'a> IntoIterator for &'a Seq {
    type Item = &'a Matrix;
    type IntoIter = std::slice::Iter<'a, Matrix>;

    fn into_iter(self) -> Self::IntoIter {
        self.steps.iter()
    }
}

/// A reusable [`Seq`] buffer that only reallocates on shape changes.
///
/// Persistent inference/marshalling workspaces hold their staging batches
/// in `SeqBuf`s: [`SeqBuf::ensure`] hands back a mutable `Seq` of the
/// requested shape, reusing the existing step matrices whenever the shape
/// already matches (zero matrix allocations on the warm path).
///
/// # Examples
///
/// ```
/// use evfad_nn::SeqBuf;
///
/// let mut buf = SeqBuf::new();
/// let seq = buf.ensure(3, 2, 1);
/// seq.step_data_mut(0).fill(1.0);
/// assert_eq!(buf.seq().step(0)[(1, 0)], 1.0);
/// // Same shape: storage (and contents) are reused, nothing is allocated.
/// buf.ensure(3, 2, 1);
/// assert_eq!(buf.seq().step(0)[(1, 0)], 1.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SeqBuf {
    seq: Option<Seq>,
}

impl SeqBuf {
    /// Creates an empty buffer (no storage until the first `ensure`).
    pub fn new() -> Self {
        Self { seq: None }
    }

    /// Returns a mutable `time`-step batch of `batch x feat` matrices.
    ///
    /// If the held sequence already has exactly this shape it is returned
    /// as-is — contents preserved, no allocation; callers overwrite the
    /// rows they marshal. Otherwise the buffer is rebuilt with zeroed
    /// steps.
    ///
    /// # Panics
    ///
    /// Panics if `time == 0` (a [`Seq`] is never empty).
    pub fn ensure(&mut self, time: usize, batch: usize, feat: usize) -> &mut Seq {
        assert!(time > 0, "a Seq needs at least one step");
        let matches = self
            .seq
            .as_ref()
            .is_some_and(|s| s.len() == time && s.batch_size() == batch && s.features() == feat);
        if !matches {
            self.seq = Some(Seq {
                steps: (0..time).map(|_| Matrix::zeros(batch, feat)).collect(),
            });
        }
        self.seq.as_mut().expect("ensure just filled the buffer")
    }

    /// Borrow of the last ensured sequence.
    ///
    /// # Panics
    ///
    /// Panics if [`SeqBuf::ensure`] has never been called.
    pub fn seq(&self) -> &Seq {
        self.seq
            .as_ref()
            .expect("SeqBuf::seq called before SeqBuf::ensure")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_samples_round_trips() {
        let samples = vec![
            Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]),
            Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]),
            Matrix::from_rows(&[vec![9.0, 10.0], vec![11.0, 12.0]]),
        ];
        let seq = Seq::from_samples(&samples);
        assert_eq!(seq.len(), 2);
        assert_eq!(seq.batch_size(), 3);
        assert_eq!(seq.features(), 2);
        assert_eq!(seq.to_samples(), samples);
    }

    #[test]
    fn time_major_layout() {
        let samples = vec![
            Matrix::column_vector(&[1.0, 2.0]),
            Matrix::column_vector(&[3.0, 4.0]),
        ];
        let seq = Seq::from_samples(&samples);
        // step 0 holds t=0 of both samples.
        assert_eq!(seq.step(0).column(0), vec![1.0, 3.0]);
        assert_eq!(seq.step(1).column(0), vec![2.0, 4.0]);
    }

    #[test]
    fn single_has_one_step() {
        let s = Seq::single(Matrix::zeros(4, 2));
        assert_eq!(s.len(), 1);
        assert_eq!(s.batch_size(), 4);
        assert_eq!(s.element_count(), 8);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Seq::single(Matrix::filled(1, 2, 2.0));
        let b = Seq::single(Matrix::filled(1, 2, 3.0));
        assert_eq!(a.map(|x| x * 2.0).step(0)[(0, 0)], 4.0);
        assert_eq!(a.zip_map(&b, |x, y| x * y).step(0)[(0, 1)], 6.0);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_steps_panic() {
        let _ = Seq::from_steps(vec![]);
    }

    #[test]
    #[should_panic(expected = "same time x features")]
    fn mismatched_samples_panic() {
        let _ = Seq::from_samples(&[Matrix::zeros(2, 1), Matrix::zeros(3, 1)]);
    }

    #[test]
    fn is_finite_propagates() {
        let mut m = Matrix::ones(1, 1);
        m[(0, 0)] = f64::INFINITY;
        assert!(!Seq::single(m).is_finite());
    }

    #[test]
    fn iterates_in_time_order() {
        let seq = Seq::from_steps(vec![Matrix::filled(1, 1, 0.0), Matrix::filled(1, 1, 1.0)]);
        let vals: Vec<f64> = seq.iter().map(|m| m[(0, 0)]).collect();
        assert_eq!(vals, vec![0.0, 1.0]);
    }
}
