//! Pointwise activation functions.

use serde::{Deserialize, Serialize};

/// Pointwise activation applied by [`Dense`](crate::Dense) layers.
///
/// The derivative is expressed in terms of the *output* value, which is what
/// the layer caches (matching the usual sigmoid/tanh backprop identities).
///
/// # Examples
///
/// ```
/// use evfad_nn::Activation;
///
/// assert_eq!(Activation::Relu.apply(-2.0), 0.0);
/// assert_eq!(Activation::Relu.apply(2.0), 2.0);
/// let y = Activation::Sigmoid.apply(0.0);
/// assert!((y - 0.5).abs() < 1e-12);
/// assert!((Activation::Sigmoid.derivative_from_output(y) - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Activation {
    /// Identity.
    #[default]
    Linear,
    /// Rectified linear unit `max(0, x)`.
    Relu,
    /// Logistic sigmoid `1 / (1 + e^{-x})` (numerically stable form).
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation to a scalar.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Linear => x,
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => stable_sigmoid(x),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Derivative of the activation expressed via its output `y = f(x)`.
    ///
    /// For ReLU the subgradient at zero is taken as `0`.
    pub fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Linear => 1.0,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
        }
    }

    /// Stable human-readable name (used in model summaries).
    pub fn name(self) -> &'static str {
        match self {
            Activation::Linear => "linear",
            Activation::Relu => "relu",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
        }
    }
}

/// Numerically stable sigmoid that avoids overflow for large `|x|`.
pub(crate) fn stable_sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert_eq!(Activation::Sigmoid.apply(1e4), 1.0);
        assert_eq!(Activation::Sigmoid.apply(-1e4), 0.0);
        assert!(Activation::Sigmoid.apply(-745.0).is_finite());
    }

    #[test]
    fn sigmoid_symmetry() {
        for &x in &[0.1, 0.5, 2.0, 10.0] {
            let p = Activation::Sigmoid.apply(x);
            let n = Activation::Sigmoid.apply(-x);
            assert!((p + n - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for act in [
            Activation::Linear,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Relu,
        ] {
            for &x in &[-1.5, -0.3, 0.4, 2.0] {
                let y = act.apply(x);
                let num = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let ana = act.derivative_from_output(y);
                assert!(
                    (num - ana).abs() < 1e-5,
                    "{}: x={x} num={num} ana={ana}",
                    act.name()
                );
            }
        }
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.derivative_from_output(0.0), 0.0);
        assert_eq!(Activation::Relu.derivative_from_output(3.0), 1.0);
    }

    #[test]
    fn tanh_range() {
        assert!(Activation::Tanh.apply(100.0) <= 1.0);
        assert!(Activation::Tanh.apply(-100.0) >= -1.0);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Activation::Relu.name(), "relu");
        assert_eq!(Activation::default(), Activation::Linear);
    }
}
