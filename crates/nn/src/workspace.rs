//! Reusable per-layer scratch arena for the fused recurrent hot path.
//!
//! Every recurrent/dense layer owns a [`Workspace`]: a small vector of
//! `Vec<f64>` buffers addressed by slot index. A buffer is allocated the
//! first time its slot is requested at a given size and then reused across
//! timesteps, batches, epochs, and federated rounds — the warm-path cost of
//! `take` is a `mem::take` plus a length check, no allocator traffic.
//!
//! The take/put protocol (rather than handing out `&mut` slices) exists so a
//! layer can hold several buffers from the *same* workspace simultaneously
//! without fighting the borrow checker: each buffer is moved out, used, and
//! moved back.
//!
//! Buffers double as the forward cache: a forward pass leaves activations in
//! its slots and the backward pass takes them back out. `take` therefore
//! **preserves contents** when the requested length already matches — callers
//! that need a zeroed buffer must `fill(0.0)` explicitly.

/// Per-layer scratch arena of reusable `f64` buffers.
///
/// Cloning a `Workspace` deep-copies its buffers; layer caches live in these
/// slots, so a cloned layer keeps a usable cache exactly as it did when
/// caches were owned `Matrix` fields.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    bufs: Vec<Vec<f64>>,
}

impl Workspace {
    /// Creates an empty workspace; buffers materialise on first `take`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves the buffer in `slot` out of the arena, sized to exactly `len`.
    ///
    /// If the stored buffer already has length `len`, its contents are
    /// preserved (this is how forward-pass caches survive until backward).
    /// Otherwise it is cleared and resized to `len` zeros. Pair every `take`
    /// with a [`Workspace::put`] to return the buffer for reuse.
    pub fn take(&mut self, slot: usize, len: usize) -> Vec<f64> {
        if slot >= self.bufs.len() {
            self.bufs.resize_with(slot + 1, Vec::new);
        }
        let mut buf = std::mem::take(&mut self.bufs[slot]);
        if buf.len() != len {
            buf.clear();
            buf.resize(len, 0.0);
        }
        buf
    }

    /// Returns a buffer previously obtained from [`Workspace::take`].
    pub fn put(&mut self, slot: usize, buf: Vec<f64>) {
        if slot >= self.bufs.len() {
            self.bufs.resize_with(slot + 1, Vec::new);
        }
        self.bufs[slot] = buf;
    }

    /// Total bytes of `f64` payload currently parked in the arena.
    pub fn allocated_bytes(&self) -> usize {
        self.bufs.iter().map(|b| 8 * b.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_preserves_contents_at_same_len() {
        let mut ws = Workspace::new();
        let mut b = ws.take(0, 4);
        b.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        ws.put(0, b);
        let again = ws.take(0, 4);
        assert_eq!(again, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn take_rezeroes_on_resize() {
        let mut ws = Workspace::new();
        let mut b = ws.take(0, 2);
        b.copy_from_slice(&[9.0, 9.0]);
        ws.put(0, b);
        assert_eq!(ws.take(0, 3), vec![0.0; 3]);
    }

    #[test]
    fn slots_are_independent_and_bytes_tracked() {
        let mut ws = Workspace::new();
        let a = ws.take(0, 8);
        let b = ws.take(5, 2);
        ws.put(0, a);
        ws.put(5, b);
        assert_eq!(ws.allocated_bytes(), 8 * 10);
        let clone = ws.clone();
        assert_eq!(clone.allocated_bytes(), 8 * 10);
    }
}
