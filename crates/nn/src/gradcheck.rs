//! Finite-difference gradient checking.
//!
//! Used by this crate's tests to validate every layer's backward pass, and
//! exported so downstream crates can verify composed architectures (e.g. the
//! full autoencoder stack in `evfad-anomaly`).

use crate::loss::Loss;
use crate::model::{Sample, Sequential};
use crate::seq::Seq;
use evfad_tensor::Matrix;

/// Outcome of a gradient check.
#[derive(Debug, Clone, PartialEq)]
pub struct GradCheckReport {
    /// Largest relative error across all checked coordinates.
    pub max_rel_error: f64,
    /// Number of scalar parameters compared.
    pub checked: usize,
}

impl GradCheckReport {
    /// `true` when the analytic gradients match finite differences within `tol`.
    pub fn passes(&self, tol: f64) -> bool {
        self.max_rel_error < tol
    }
}

/// Compares the model's analytic parameter gradients against central finite
/// differences of the loss on a single batch.
///
/// `stride` subsamples the parameters (check every `stride`-th coordinate)
/// to keep the O(params) re-evaluations affordable on larger stacks.
///
/// # Panics
///
/// Panics if `samples` is empty or `stride == 0`.
pub fn check_model_gradients(
    model: &mut Sequential,
    samples: &[Sample],
    loss: Loss,
    epsilon: f64,
    stride: usize,
) -> GradCheckReport {
    assert!(!samples.is_empty(), "gradient check needs samples");
    assert!(stride > 0, "stride must be >= 1");
    let inputs: Vec<Matrix> = samples.iter().map(|s| s.input.clone()).collect();
    let targets: Vec<Matrix> = samples.iter().map(|s| s.target.clone()).collect();
    let input_seq = Seq::from_samples(&inputs);
    let target_seq = Seq::from_samples(&targets);

    // Analytic gradients.
    model.zero_grads();
    let pred = model.forward(&input_seq, true);
    let (_, grad) = loss.evaluate(&pred, &target_seq);
    model.backward(&grad);
    let analytic = snapshot_grads(model);
    model.zero_grads();

    // Finite differences on the weight vector.
    let base_weights = model.weights();
    let mut max_rel_error: f64 = 0.0;
    let mut checked = 0usize;
    for (tensor_idx, tensor) in base_weights.iter().enumerate() {
        for flat in (0..tensor.len()).step_by(stride) {
            let mut plus = base_weights.clone();
            plus[tensor_idx].as_mut_slice()[flat] += epsilon;
            model.set_weights(&plus).expect("same shapes");
            let lp = loss.value(&model.forward(&input_seq, false), &target_seq);

            let mut minus = base_weights.clone();
            minus[tensor_idx].as_mut_slice()[flat] -= epsilon;
            model.set_weights(&minus).expect("same shapes");
            let lm = loss.value(&model.forward(&input_seq, false), &target_seq);

            let numeric = (lp - lm) / (2.0 * epsilon);
            let exact = analytic[tensor_idx].as_slice()[flat];
            let denom = numeric.abs().max(exact.abs()).max(1e-8);
            max_rel_error = max_rel_error.max((numeric - exact).abs() / denom);
            checked += 1;
        }
    }
    model.set_weights(&base_weights).expect("same shapes");
    GradCheckReport {
        max_rel_error,
        checked,
    }
}

fn snapshot_grads(model: &mut Sequential) -> Vec<Matrix> {
    // `weights()` order matches params_and_grads order by construction.
    let mut grads = Vec::new();
    for layer in model_layers_mut(model) {
        for (_, g) in layer.params_and_grads_mut() {
            grads.push(g.clone());
        }
    }
    grads
}

// Internal accessor: Sequential does not publicly expose mutable layers, so
// gradcheck reaches them through a crate-private hook.
fn model_layers_mut(model: &mut Sequential) -> impl Iterator<Item = &mut crate::layer::Layer> {
    model.layers_mut_for_gradcheck()
}

impl Sequential {
    pub(crate) fn layers_mut_for_gradcheck(
        &mut self,
    ) -> impl Iterator<Item = &mut crate::layer::Layer> {
        self.layers_mut_internal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::layers::{Dense, Lstm, RepeatVector};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_samples(n: usize, time: usize, seed: u64) -> Vec<Sample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let xs: Vec<f64> = (0..time).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let y = rng.gen_range(-1.0..1.0);
                Sample::new(Matrix::column_vector(&xs), Matrix::from_vec(1, 1, vec![y]))
            })
            .collect()
    }

    #[test]
    fn dense_gradients_match() {
        let mut model = Sequential::new(1)
            .with(Dense::new(1, 3, Activation::Tanh))
            .with(Dense::new(3, 1, Activation::Linear));
        let samples: Vec<Sample> = random_samples(4, 1, 2);
        let report = check_model_gradients(&mut model, &samples, Loss::Mse, 1e-5, 1);
        assert!(report.passes(1e-4), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn lstm_gradients_match() {
        let mut model = Sequential::new(3)
            .with(Lstm::new(1, 4, false))
            .with(Dense::new(4, 1, Activation::Linear));
        let samples = random_samples(3, 5, 4);
        let report = check_model_gradients(&mut model, &samples, Loss::Mse, 1e-5, 1);
        assert!(report.passes(1e-4), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn stacked_lstm_return_sequences_gradients_match() {
        let mut model = Sequential::new(5)
            .with(Lstm::new(1, 3, true))
            .with(Lstm::new(3, 2, false))
            .with(Dense::new(2, 1, Activation::Linear));
        let samples = random_samples(2, 4, 6);
        let report = check_model_gradients(&mut model, &samples, Loss::Mse, 1e-5, 1);
        assert!(report.passes(1e-4), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn autoencoder_stack_gradients_match() {
        // Miniature version of the paper's autoencoder (no dropout: masks
        // resample between the analytic and numeric passes).
        let seq_len = 3;
        let mut model = Sequential::new(7)
            .with(Lstm::new(1, 4, true))
            .with(Lstm::new(4, 2, false))
            .with(RepeatVector::new(seq_len))
            .with(Lstm::new(2, 2, true))
            .with(Lstm::new(2, 4, true))
            .with(Dense::new(4, 1, Activation::Linear));
        let mut rng = StdRng::seed_from_u64(8);
        let samples: Vec<Sample> = (0..2)
            .map(|_| {
                let xs: Vec<f64> = (0..seq_len).map(|_| rng.gen_range(-1.0..1.0)).collect();
                Sample::autoencoding(Matrix::column_vector(&xs))
            })
            .collect();
        let report = check_model_gradients(&mut model, &samples, Loss::Mse, 1e-5, 3);
        // Deep recurrent stacks accumulate more finite-difference noise.
        assert!(report.passes(1e-3), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn gru_gradients_match() {
        let mut model = Sequential::new(13)
            .with(crate::layers::Gru::new(1, 4, false))
            .with(Dense::new(4, 1, Activation::Linear));
        let samples = random_samples(3, 5, 14);
        let report = check_model_gradients(&mut model, &samples, Loss::Mse, 1e-5, 1);
        assert!(report.passes(1e-4), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn stacked_gru_return_sequences_gradients_match() {
        let mut model = Sequential::new(15)
            .with(crate::layers::Gru::new(1, 3, true))
            .with(crate::layers::Gru::new(3, 2, false))
            .with(Dense::new(2, 1, Activation::Linear));
        let samples = random_samples(2, 4, 16);
        let report = check_model_gradients(&mut model, &samples, Loss::Mse, 1e-5, 1);
        assert!(report.passes(1e-4), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn mae_gradients_match_away_from_kinks() {
        let mut model = Sequential::new(9)
            .with(Lstm::new(1, 3, false))
            .with(Dense::new(3, 1, Activation::Linear));
        let samples = random_samples(3, 4, 10);
        let report = check_model_gradients(&mut model, &samples, Loss::Mae, 1e-5, 2);
        // MAE has kinks at zero residual; random targets keep us away with
        // high probability, but use a slightly looser tolerance.
        assert!(report.passes(1e-3), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn dropout_in_eval_mode_passes_gradients_through() {
        // A dropout layer pinned to eval behaviour must be gradient-exact
        // inside a recurrent stack: identity forward, pass-through backward.
        let mut model = Sequential::new(17)
            .with(Lstm::new(1, 3, false))
            .with(crate::layers::Dropout::new(0.4).eval_mode(true))
            .with(Dense::new(3, 1, Activation::Linear));
        let samples = random_samples(3, 4, 18);
        let report = check_model_gradients(&mut model, &samples, Loss::Mse, 1e-5, 1);
        assert!(report.passes(1e-4), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn zero_rate_dropout_is_gradient_exact_in_training() {
        // rate = 0 takes the same identity path as eval mode, inside a
        // full training-mode forward/backward.
        let mut model = Sequential::new(19)
            .with(Dense::new(1, 4, Activation::Tanh))
            .with(crate::layers::Dropout::new(0.0))
            .with(Dense::new(4, 1, Activation::Linear));
        let samples = random_samples(4, 1, 20);
        let report = check_model_gradients(&mut model, &samples, Loss::Mse, 1e-5, 1);
        assert!(report.passes(1e-4), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn gru_autoencoder_with_eval_dropout_gradients_match() {
        // GRU counterpart of the paper's dropout-regularised autoencoder:
        // encoder → bottleneck → decoder, with the Dropout(0.2) layer
        // pinned to eval so finite differences see the same function.
        let seq_len = 3;
        let mut model = Sequential::new(21)
            .with(crate::layers::Gru::new(1, 4, true))
            .with(crate::layers::Dropout::new(0.2).eval_mode(true))
            .with(crate::layers::Gru::new(4, 2, false))
            .with(RepeatVector::new(seq_len))
            .with(crate::layers::Gru::new(2, 4, true))
            .with(Dense::new(4, 1, Activation::Linear));
        let mut rng = StdRng::seed_from_u64(22);
        let samples: Vec<Sample> = (0..2)
            .map(|_| {
                let xs: Vec<f64> = (0..seq_len).map(|_| rng.gen_range(-1.0..1.0)).collect();
                Sample::autoencoding(Matrix::column_vector(&xs))
            })
            .collect();
        let report = check_model_gradients(&mut model, &samples, Loss::Mse, 1e-5, 3);
        // Deep recurrent stacks accumulate more finite-difference noise.
        assert!(report.passes(1e-3), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn relu_head_gradients_match() {
        let mut model = Sequential::new(11)
            .with(Lstm::new(1, 3, false))
            .with(Dense::new(3, 5, Activation::Relu))
            .with(Dense::new(5, 1, Activation::Linear));
        let samples = random_samples(4, 3, 12);
        let report = check_model_gradients(&mut model, &samples, Loss::Mse, 1e-5, 1);
        assert!(report.passes(1e-3), "max rel err {}", report.max_rel_error);
    }
}
