//! Frozen, packed inference snapshots of a [`Sequential`] model.
//!
//! Training mutates a model in place and must stay bitwise-pinned; serving
//! wants the opposite trade — freeze the weights once, pack them for the
//! kernels' preferred layout, and push as many windows per GEMM as the
//! admission queue can batch. An [`InferenceModel`] is that snapshot:
//!
//! - Every GEMM operand is pre-packed at freeze time
//!   ([`PackedB`]), and every tensor is *also* quantized to int8 with the
//!   shared EVQ8 fold ([`QuantizedPanel`]) so one snapshot carries both
//!   numeric lanes. [`Precision`] picks the lane per snapshot.
//! - [`InferenceModel::forward_batch_into`] runs **many windows per
//!   GEMM**: the whole batch shares one input-projection product per
//!   recurrent layer and one product per dense layer, instead of the
//!   one-window-at-a-time cadence of the online path.
//! - There is no dropout at inference (identity), so dropout layers are
//!   dropped entirely at freeze time — the snapshot never pays their
//!   sequence copies.
//!
//! # Exactness contract
//!
//! The `F64` lane routes through [`fastpath`]'s blocked kernels, which
//! without the `fastmath` cargo feature delegate to the exact
//! [`kernels`](evfad_tensor::kernels) — and every elementwise expression
//! here replays the training-path forward (`stable_sigmoid` gate order,
//! cell update association, bias broadcast) verbatim. Each output row of
//! every kernel depends only on its own input row, so batching windows
//! together cannot change any window's bits: **a default build's
//! `forward_batch_into` is bitwise-identical to per-window
//! [`Sequential::predict`]** (pinned by proptests and the tier-1 scoring
//! gate). With `fastmath` enabled the same code reassociates GEMM sums
//! for throughput and is *close*, not identical.
//!
//! The `Int8` lane is always approximate: weights carry at most half a
//! quantization step of error each (see
//! [`quant`](evfad_tensor::quant)), activations and accumulation are
//! `f32`. For the sigmoid/tanh-saturated stacks served here the
//! end-to-end reconstruction deltas stay small; the serving bench
//! measures and asserts the score-level bound (`BENCH_inference.json`).

#[cfg(not(feature = "fastmath"))]
use crate::activation::stable_sigmoid;
use crate::activation::Activation;
use crate::layer::Layer;
use crate::model::Sequential;
use crate::{NnError, NnResult};
use evfad_tensor::fastpath::{self, PackedB, QuantizedPanel};
use evfad_tensor::{kernels, vmath, MatMut, MatRef, Matrix};

/// Numeric lane of a frozen snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// f64 activations and accumulation; bitwise-exact versus the
    /// training-path forward when `fastmath` is disabled.
    #[default]
    F64,
    /// int8 weights (shared EVQ8 fold) with f32 activations and f32
    /// accumulation; always approximate, always opt-in.
    Int8,
}

/// `f32` twin of the training path's numerically stable sigmoid.
#[inline]
fn stable_sigmoid_f32(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[inline]
fn apply_act_f32(act: Activation, x: f32) -> f32 {
    match act {
        Activation::Linear => x,
        Activation::Relu => x.max(0.0),
        Activation::Sigmoid => stable_sigmoid_f32(x),
        Activation::Tanh => vmath::tanh1_f32(x),
    }
}

/// A dense layer frozen for serving: packed f64 weights plus the int8
/// twin.
#[derive(Debug, Clone)]
struct DenseSnap {
    i_dim: usize,
    o_dim: usize,
    act: Activation,
    w: PackedB,
    b: Matrix,
    qw: QuantizedPanel,
    qb: Vec<f32>,
}

/// An LSTM layer frozen for serving. The combined training kernel
/// `(I+H) × 4H` is split into its `W_x`/`W_h` halves so the batched input
/// projection and the per-step recurrence each get a packed operand.
#[derive(Debug, Clone)]
struct LstmSnap {
    i_dim: usize,
    h_dim: usize,
    return_sequences: bool,
    wx: PackedB,
    wh: PackedB,
    b: Matrix,
    qwx: QuantizedPanel,
    qwh: QuantizedPanel,
    qb: Vec<f32>,
    // Reused scratch (f64 lane / f32 lane).
    pre: Vec<f64>,
    c: Vec<f64>,
    h: Vec<f64>,
    pre32: Vec<f32>,
    c32: Vec<f32>,
    h32: Vec<f32>,
}

/// A GRU layer frozen for serving (gate kernel split like the LSTM's,
/// candidate kernel split the same way).
#[derive(Debug, Clone)]
struct GruSnap {
    i_dim: usize,
    h_dim: usize,
    return_sequences: bool,
    wgx: PackedB,
    wgh: PackedB,
    bg: Matrix,
    wcx: PackedB,
    wch: PackedB,
    bc: Matrix,
    qwgx: QuantizedPanel,
    qwgh: QuantizedPanel,
    qbg: Vec<f32>,
    qwcx: QuantizedPanel,
    qwch: QuantizedPanel,
    qbc: Vec<f32>,
    preg: Vec<f64>,
    cand: Vec<f64>,
    rh: Vec<f64>,
    h: Vec<f64>,
    preg32: Vec<f32>,
    cand32: Vec<f32>,
    rh32: Vec<f32>,
    h32: Vec<f32>,
}

#[derive(Debug, Clone)]
enum InferLayer {
    Dense(Box<DenseSnap>),
    Lstm(Box<LstmSnap>),
    Gru(Box<GruSnap>),
    /// RepeatVector: broadcast a single collapsed step `n` times.
    Repeat(usize),
}

/// A frozen, packed snapshot of a [`Sequential`] for batched scoring.
///
/// Freeze once, serve forever: the snapshot holds no optimiser state, no
/// training caches, and never mutates its weights — only its scratch
/// buffers, which stay warm across calls (a shape-stable caller allocates
/// nothing after the first batch). Cloning a snapshot gives an
/// independent serving replica (the multi-tenant scoring front end clones
/// one per worker thread).
///
/// # Examples
///
/// ```
/// use evfad_nn::infer::{InferenceModel, Precision};
/// use evfad_nn::{Activation, Dense, Lstm, Sequential};
/// use evfad_tensor::Matrix;
///
/// let mut model = Sequential::new(5)
///     .with(Lstm::new(1, 6, false))
///     .with(Dense::new(6, 1, Activation::Linear));
/// let mut frozen = InferenceModel::freeze(&model, Precision::F64).unwrap();
/// // Three 4-step windows in one batched forward.
/// let windows = [0.1, 0.2, 0.3, 0.4, 0.0, 0.1, 0.0, 0.1, 0.9, 0.8, 0.7, 0.6];
/// let mut out = Vec::new();
/// let (steps, feat) = frozen.forward_batch_into(&windows, 3, &mut out);
/// assert_eq!((steps, feat), (1, 1));
/// assert_eq!(out.len(), 3);
/// // Bitwise-identical to the per-window exact path (default build).
/// let exact = model.predict(&[Matrix::column_vector(&[0.1, 0.2, 0.3, 0.4])]);
/// assert_eq!(out[0].to_bits(), exact[0][(0, 0)].to_bits());
/// ```
#[derive(Debug, Clone)]
pub struct InferenceModel {
    layers: Vec<InferLayer>,
    precision: Precision,
    in_features: usize,
    out_features: usize,
    // Ping-pong activation arenas, time-major `[t][row][feature]`.
    buf_a: Vec<f64>,
    buf_b: Vec<f64>,
    buf_a32: Vec<f32>,
    buf_b32: Vec<f32>,
}

impl InferenceModel {
    /// Freezes a built model into a packed snapshot.
    ///
    /// Dropout layers vanish (inference identity); dense, LSTM, GRU, and
    /// repeat-vector layers are packed and quantized.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the model has no layers that
    /// produce output (nothing to serve).
    pub fn freeze(model: &Sequential, precision: Precision) -> NnResult<Self> {
        let mut layers = Vec::new();
        let mut in_features = None;
        let mut features = 0usize;
        for layer in model.layers() {
            match layer {
                Layer::Dropout(_) => {}
                Layer::Dense(d) => {
                    let params = d.params();
                    let (w, b) = (params[0], params[1]);
                    in_features.get_or_insert(d.input_dim());
                    features = d.output_dim();
                    layers.push(InferLayer::Dense(Box::new(DenseSnap {
                        i_dim: d.input_dim(),
                        o_dim: d.output_dim(),
                        act: d.activation(),
                        w: PackedB::pack(w.view()),
                        b: b.clone(),
                        qw: QuantizedPanel::quantize(w.view()),
                        qb: b.as_slice().iter().map(|&v| v as f32).collect(),
                    })));
                }
                Layer::Lstm(l) => {
                    let params = l.params();
                    let (w, b) = (params[0], params[1]);
                    let (i_dim, h_dim) = (l.input_dim(), l.hidden_dim());
                    in_features.get_or_insert(i_dim);
                    features = h_dim;
                    let wx = w.rows_view(0..i_dim);
                    let wh = w.rows_view(i_dim..i_dim + h_dim);
                    layers.push(InferLayer::Lstm(Box::new(LstmSnap {
                        i_dim,
                        h_dim,
                        return_sequences: l.return_sequences(),
                        wx: PackedB::pack(wx),
                        wh: PackedB::pack(wh),
                        b: b.clone(),
                        qwx: QuantizedPanel::quantize(wx),
                        qwh: QuantizedPanel::quantize(wh),
                        qb: b.as_slice().iter().map(|&v| v as f32).collect(),
                        pre: Vec::new(),
                        c: Vec::new(),
                        h: Vec::new(),
                        pre32: Vec::new(),
                        c32: Vec::new(),
                        h32: Vec::new(),
                    })));
                }
                Layer::Gru(g) => {
                    let params = g.params();
                    let (wg, bg, wc, bc) = (params[0], params[1], params[2], params[3]);
                    let (i_dim, h_dim) = (g.input_dim(), g.hidden_dim());
                    in_features.get_or_insert(i_dim);
                    features = h_dim;
                    let wgx = wg.rows_view(0..i_dim);
                    let wgh = wg.rows_view(i_dim..i_dim + h_dim);
                    let wcx = wc.rows_view(0..i_dim);
                    let wch = wc.rows_view(i_dim..i_dim + h_dim);
                    layers.push(InferLayer::Gru(Box::new(GruSnap {
                        i_dim,
                        h_dim,
                        return_sequences: g.return_sequences(),
                        wgx: PackedB::pack(wgx),
                        wgh: PackedB::pack(wgh),
                        bg: bg.clone(),
                        wcx: PackedB::pack(wcx),
                        wch: PackedB::pack(wch),
                        bc: bc.clone(),
                        qwgx: QuantizedPanel::quantize(wgx),
                        qwgh: QuantizedPanel::quantize(wgh),
                        qbg: bg.as_slice().iter().map(|&v| v as f32).collect(),
                        qwcx: QuantizedPanel::quantize(wcx),
                        qwch: QuantizedPanel::quantize(wch),
                        qbc: bc.as_slice().iter().map(|&v| v as f32).collect(),
                        preg: Vec::new(),
                        cand: Vec::new(),
                        rh: Vec::new(),
                        h: Vec::new(),
                        preg32: Vec::new(),
                        cand32: Vec::new(),
                        rh32: Vec::new(),
                        h32: Vec::new(),
                    })));
                }
                Layer::RepeatVector(r) => {
                    layers.push(InferLayer::Repeat(r.n()));
                }
            }
        }
        let in_features = in_features.ok_or_else(|| {
            NnError::InvalidConfig("cannot freeze a model with no parameterised layers".into())
        })?;
        Ok(Self {
            layers,
            precision,
            in_features,
            out_features: features,
            buf_a: Vec::new(),
            buf_b: Vec::new(),
            buf_a32: Vec::new(),
            buf_b32: Vec::new(),
        })
    }

    /// The numeric lane this snapshot serves with.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Input feature width per timestep.
    pub fn input_features(&self) -> usize {
        self.in_features
    }

    /// Output feature width per timestep.
    pub fn output_features(&self) -> usize {
        self.out_features
    }

    /// Total packed int8 weight bytes of the snapshot's quantized lane.
    pub fn quantized_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                InferLayer::Dense(d) => d.qw.byte_size(),
                InferLayer::Lstm(l) => l.qwx.byte_size() + l.qwh.byte_size(),
                InferLayer::Gru(g) => {
                    g.qwgx.byte_size()
                        + g.qwgh.byte_size()
                        + g.qwcx.byte_size()
                        + g.qwch.byte_size()
                }
                InferLayer::Repeat(_) => 0,
            })
            .sum()
    }

    /// Batched forward pass: `windows` holds `batch` samples,
    /// sample-major (`batch × steps × features` with each sample's steps
    /// contiguous), exactly the layout [`Sequential::predict_into`]
    /// produces. Writes the outputs sample-major into `out`
    /// (cleared first) and returns `(out_steps, out_features)` per sample.
    ///
    /// Every window of the batch shares each layer's GEMMs; per-row
    /// independence of the kernels keeps each window's result identical
    /// to a batch of one (bitwise on the default-build `F64` lane).
    ///
    /// # Panics
    ///
    /// Panics if `windows.len()` is not a positive multiple of
    /// `batch * input_features()`.
    pub fn forward_batch_into(
        &mut self,
        windows: &[f64],
        batch: usize,
        out: &mut Vec<f64>,
    ) -> (usize, usize) {
        assert!(batch > 0, "forward_batch_into needs at least one window");
        let stride = batch * self.in_features;
        assert!(
            !windows.is_empty() && windows.len().is_multiple_of(stride),
            "window buffer of {} values is not a multiple of batch {} × features {}",
            windows.len(),
            batch,
            self.in_features
        );
        let steps = windows.len() / stride;
        match self.precision {
            Precision::F64 => self.forward_f64(windows, steps, batch, out),
            Precision::Int8 => self.forward_q8(windows, steps, batch, out),
        }
    }

    fn forward_f64(
        &mut self,
        windows: &[f64],
        mut steps: usize,
        batch: usize,
        out: &mut Vec<f64>,
    ) -> (usize, usize) {
        let feat = self.in_features;
        // Stage sample-major windows into the time-major arena.
        let cur = &mut self.buf_a;
        cur.clear();
        cur.resize(steps * batch * feat, 0.0);
        for r in 0..batch {
            for t in 0..steps {
                let src = r * steps * feat + t * feat;
                let dst = (t * batch + r) * feat;
                cur[dst..dst + feat].copy_from_slice(&windows[src..src + feat]);
            }
        }
        let mut feat = feat;
        let (mut cur, mut next) = (&mut self.buf_a, &mut self.buf_b);
        for layer in &mut self.layers {
            let out_steps = match layer {
                InferLayer::Dense(d) => d.forward_f64(cur, steps, batch, next),
                InferLayer::Lstm(l) => l.forward_f64(cur, steps, batch, next),
                InferLayer::Gru(g) => g.forward_f64(cur, steps, batch, next),
                InferLayer::Repeat(n) => {
                    assert_eq!(steps, 1, "RepeatVector input must be a single step");
                    next.clear();
                    for _ in 0..*n {
                        next.extend_from_slice(&cur[..batch * feat]);
                    }
                    *n
                }
            };
            feat = match layer {
                InferLayer::Dense(d) => d.o_dim,
                InferLayer::Lstm(l) => l.h_dim,
                InferLayer::Gru(g) => g.h_dim,
                InferLayer::Repeat(_) => feat,
            };
            steps = out_steps;
            std::mem::swap(&mut cur, &mut next);
        }
        // De-stage: time-major arena back to sample-major output.
        out.clear();
        out.resize(batch * steps * feat, 0.0);
        for r in 0..batch {
            for t in 0..steps {
                let src = (t * batch + r) * feat;
                let dst = r * steps * feat + t * feat;
                out[dst..dst + feat].copy_from_slice(&cur[src..src + feat]);
            }
        }
        (steps, feat)
    }

    fn forward_q8(
        &mut self,
        windows: &[f64],
        mut steps: usize,
        batch: usize,
        out: &mut Vec<f64>,
    ) -> (usize, usize) {
        let feat = self.in_features;
        let cur = &mut self.buf_a32;
        cur.clear();
        cur.resize(steps * batch * feat, 0.0);
        for r in 0..batch {
            for t in 0..steps {
                let src = r * steps * feat + t * feat;
                let dst = (t * batch + r) * feat;
                for f in 0..feat {
                    cur[dst + f] = windows[src + f] as f32;
                }
            }
        }
        let mut feat = feat;
        let (mut cur, mut next) = (&mut self.buf_a32, &mut self.buf_b32);
        for layer in &mut self.layers {
            let out_steps = match layer {
                InferLayer::Dense(d) => d.forward_q8(cur, steps, batch, next),
                InferLayer::Lstm(l) => l.forward_q8(cur, steps, batch, next),
                InferLayer::Gru(g) => g.forward_q8(cur, steps, batch, next),
                InferLayer::Repeat(n) => {
                    assert_eq!(steps, 1, "RepeatVector input must be a single step");
                    next.clear();
                    for _ in 0..*n {
                        next.extend_from_slice(&cur[..batch * feat]);
                    }
                    *n
                }
            };
            feat = match layer {
                InferLayer::Dense(d) => d.o_dim,
                InferLayer::Lstm(l) => l.h_dim,
                InferLayer::Gru(g) => g.h_dim,
                InferLayer::Repeat(_) => feat,
            };
            steps = out_steps;
            std::mem::swap(&mut cur, &mut next);
        }
        out.clear();
        out.resize(batch * steps * feat, 0.0);
        for r in 0..batch {
            for t in 0..steps {
                let src = (t * batch + r) * feat;
                let dst = r * steps * feat + t * feat;
                for f in 0..feat {
                    out[dst + f] = cur[src + f] as f64;
                }
            }
        }
        (steps, feat)
    }
}

impl DenseSnap {
    /// One fused GEMM for every timestep of every window in the batch —
    /// replays the training dense layer's kernel sequence exactly on the
    /// delegating (non-`fastmath`) build.
    fn forward_f64(&self, input: &[f64], steps: usize, batch: usize, out: &mut Vec<f64>) -> usize {
        let rows = steps * batch;
        out.clear();
        out.resize(rows * self.o_dim, 0.0);
        let act = self.act;
        fastpath::matmul_bias_act_into_blocked(
            MatRef::new(rows, self.i_dim, input),
            &self.w,
            self.b.view(),
            |x| act.apply(x),
            MatMut::new(rows, self.o_dim, out),
        );
        steps
    }

    fn forward_q8(&self, input: &[f32], steps: usize, batch: usize, out: &mut Vec<f32>) -> usize {
        let rows = steps * batch;
        out.clear();
        out.resize(rows * self.o_dim, 0.0);
        let act = self.act;
        fastpath::matmul_q8_bias_act_into(
            input,
            rows,
            &self.qw,
            &self.qb,
            |x| apply_act_f32(act, x),
            out,
        );
        steps
    }
}

impl LstmSnap {
    /// Batched input projection + per-step recurrence, replaying the
    /// training LSTM's fused forward expression-for-expression.
    fn forward_f64(
        &mut self,
        input: &[f64],
        steps: usize,
        batch: usize,
        out: &mut Vec<f64>,
    ) -> usize {
        let (i_dim, h_dim) = (self.i_dim, self.h_dim);
        let (bh, b4h) = (batch * h_dim, batch * 4 * h_dim);
        self.pre.clear();
        self.pre.resize(steps * b4h, 0.0);
        self.c.clear();
        self.c.resize(steps * bh, 0.0);
        self.h.clear();
        self.h.resize(steps * bh, 0.0);
        // Batched input projection for every timestep at once.
        fastpath::matmul_into_blocked(
            MatRef::new(steps * batch, i_dim, input),
            &self.wx,
            MatMut::new(steps * batch, 4 * h_dim, &mut self.pre),
        );
        let zeros = vec![0.0; bh];
        for t in 0..steps {
            let (h_done, h_rest) = self.h.split_at_mut(t * bh);
            let h_prev = if t == 0 {
                &zeros[..]
            } else {
                &h_done[(t - 1) * bh..]
            };
            let pre_t = &mut self.pre[t * b4h..(t + 1) * b4h];
            fastpath::matmul_acc_into_blocked(
                MatRef::new(batch, h_dim, h_prev),
                &self.wh,
                MatMut::new(batch, 4 * h_dim, pre_t),
            );
            kernels::add_row_broadcast_into(MatMut::new(batch, 4 * h_dim, pre_t), self.b.view());
            let (c_done, c_rest) = self.c.split_at_mut(t * bh);
            let c_prev = if t == 0 {
                &zeros[..]
            } else {
                &c_done[(t - 1) * bh..]
            };
            let c_t = &mut c_rest[..bh];
            let h_t = &mut h_rest[..bh];
            #[cfg(not(feature = "fastmath"))]
            for r in 0..batch {
                let gates = &mut pre_t[r * 4 * h_dim..(r + 1) * 4 * h_dim];
                let (gi, rest) = gates.split_at_mut(h_dim);
                let (gf, rest) = rest.split_at_mut(h_dim);
                let (gg, go) = rest.split_at_mut(h_dim);
                let row = r * h_dim..(r + 1) * h_dim;
                let it = gi
                    .iter()
                    .zip(gf.iter())
                    .zip(gg.iter_mut())
                    .zip(go.iter())
                    .zip(&c_prev[row.clone()])
                    .zip(&mut c_t[row.clone()])
                    .zip(&mut h_t[row]);
                for ((((((iv, fv), gv), ov), &cp), ct), ht) in it {
                    let i_v = stable_sigmoid(*iv);
                    let f_v = stable_sigmoid(*fv);
                    let g_v = gv.tanh();
                    let o_v = stable_sigmoid(*ov);
                    let c_v = (f_v * cp) + (i_v * g_v);
                    let tc = c_v.tanh();
                    *ct = c_v;
                    *ht = o_v * tc;
                }
            }
            // Fastmath: activate whole gate bands with the vectorized
            // polynomial kernels, then do the (branch-free) cell update as
            // three slice passes. Same math, reordered and FMA-contracted.
            #[cfg(feature = "fastmath")]
            for r in 0..batch {
                let gates = &mut pre_t[r * 4 * h_dim..(r + 1) * 4 * h_dim];
                vmath::sigmoid_f64(&mut gates[..2 * h_dim]);
                vmath::tanh_f64(&mut gates[2 * h_dim..3 * h_dim]);
                vmath::sigmoid_f64(&mut gates[3 * h_dim..]);
                let (gi, rest) = gates.split_at(h_dim);
                let (gf, rest) = rest.split_at(h_dim);
                let (gg, go) = rest.split_at(h_dim);
                let row = r * h_dim..(r + 1) * h_dim;
                let cp = &c_prev[row.clone()];
                let ct = &mut c_t[row.clone()];
                let ht = &mut h_t[row];
                for ((((c, &iv), &fv), &gv), &cpv) in ct.iter_mut().zip(gi).zip(gf).zip(gg).zip(cp)
                {
                    *c = fv.mul_add(cpv, iv * gv);
                }
                ht.copy_from_slice(ct);
                vmath::tanh_f64(ht);
                for (h, &ov) in ht.iter_mut().zip(go) {
                    *h *= ov;
                }
            }
        }
        self.emit_f64(out, steps, bh)
    }

    fn emit_f64(&self, out: &mut Vec<f64>, steps: usize, bh: usize) -> usize {
        out.clear();
        if self.return_sequences {
            out.extend_from_slice(&self.h);
            steps
        } else {
            out.extend_from_slice(&self.h[(steps - 1) * bh..]);
            1
        }
    }

    fn forward_q8(
        &mut self,
        input: &[f32],
        steps: usize,
        batch: usize,
        out: &mut Vec<f32>,
    ) -> usize {
        let (i_dim, h_dim) = (self.i_dim, self.h_dim);
        let (bh, b4h) = (batch * h_dim, batch * 4 * h_dim);
        self.pre32.clear();
        self.pre32.resize(steps * b4h, 0.0);
        self.c32.clear();
        self.c32.resize(bh, 0.0);
        self.h32.clear();
        self.h32.resize(steps * bh, 0.0);
        debug_assert_eq!(input.len(), steps * batch * i_dim);
        fastpath::matmul_q8_into(input, steps * batch, &self.qwx, &mut self.pre32);
        let zeros = vec![0.0f32; bh];
        for t in 0..steps {
            let (h_done, h_rest) = self.h32.split_at_mut(t * bh);
            let h_prev = if t == 0 {
                &zeros[..]
            } else {
                &h_done[(t - 1) * bh..]
            };
            let pre_t = &mut self.pre32[t * b4h..(t + 1) * b4h];
            fastpath::matmul_q8_acc_into(h_prev, batch, &self.qwh, pre_t);
            let h_t = &mut h_rest[..bh];
            for r in 0..batch {
                let gates = &mut pre_t[r * 4 * h_dim..(r + 1) * 4 * h_dim];
                for (g, &b) in gates.iter_mut().zip(&self.qb) {
                    *g += b;
                }
                vmath::sigmoid_f32(&mut gates[..2 * h_dim]);
                vmath::tanh_f32(&mut gates[2 * h_dim..3 * h_dim]);
                vmath::sigmoid_f32(&mut gates[3 * h_dim..]);
                let (gi, rest) = gates.split_at(h_dim);
                let (gf, rest) = rest.split_at(h_dim);
                let (gg, go) = rest.split_at(h_dim);
                let row = r * h_dim..(r + 1) * h_dim;
                let cs = &mut self.c32[row.clone()];
                for (((c, &iv), &fv), &gv) in cs.iter_mut().zip(gi).zip(gf).zip(gg) {
                    *c = (fv * *c) + (iv * gv);
                }
                let ht = &mut h_t[row];
                ht.copy_from_slice(cs);
                vmath::tanh_f32(ht);
                for (h, &ov) in ht.iter_mut().zip(go) {
                    *h *= ov;
                }
            }
        }
        out.clear();
        if self.return_sequences {
            out.extend_from_slice(&self.h32);
            steps
        } else {
            out.extend_from_slice(&self.h32[(steps - 1) * bh..]);
            1
        }
    }
}

impl GruSnap {
    /// Batched projections + per-step recurrence, replaying the training
    /// GRU forward expression-for-expression.
    fn forward_f64(
        &mut self,
        input: &[f64],
        steps: usize,
        batch: usize,
        out: &mut Vec<f64>,
    ) -> usize {
        let (i_dim, h_dim) = (self.i_dim, self.h_dim);
        let (bh, b2h) = (batch * h_dim, batch * 2 * h_dim);
        self.preg.clear();
        self.preg.resize(steps * b2h, 0.0);
        self.cand.clear();
        self.cand.resize(steps * bh, 0.0);
        self.rh.clear();
        self.rh.resize(bh, 0.0);
        self.h.clear();
        self.h.resize(steps * bh, 0.0);
        let x_ref = MatRef::new(steps * batch, i_dim, input);
        fastpath::matmul_into_blocked(
            x_ref,
            &self.wgx,
            MatMut::new(steps * batch, 2 * h_dim, &mut self.preg),
        );
        fastpath::matmul_into_blocked(
            x_ref,
            &self.wcx,
            MatMut::new(steps * batch, h_dim, &mut self.cand),
        );
        let zeros = vec![0.0; bh];
        for t in 0..steps {
            let (h_done, h_rest) = self.h.split_at_mut(t * bh);
            let h_prev = if t == 0 {
                &zeros[..]
            } else {
                &h_done[(t - 1) * bh..]
            };
            let preg_t = &mut self.preg[t * b2h..(t + 1) * b2h];
            fastpath::matmul_acc_into_blocked(
                MatRef::new(batch, h_dim, h_prev),
                &self.wgh,
                MatMut::new(batch, 2 * h_dim, preg_t),
            );
            kernels::add_row_broadcast_into(MatMut::new(batch, 2 * h_dim, preg_t), self.bg.view());
            #[cfg(not(feature = "fastmath"))]
            for r in 0..batch {
                let gates = &mut preg_t[r * 2 * h_dim..(r + 1) * 2 * h_dim];
                for j in 0..h_dim {
                    let idx = r * h_dim + j;
                    let z_v = stable_sigmoid(gates[j]);
                    let r_v = stable_sigmoid(gates[h_dim + j]);
                    gates[j] = z_v;
                    gates[h_dim + j] = r_v;
                    self.rh[idx] = r_v * h_prev[idx];
                }
            }
            #[cfg(feature = "fastmath")]
            for r in 0..batch {
                let gates = &mut preg_t[r * 2 * h_dim..(r + 1) * 2 * h_dim];
                vmath::sigmoid_f64(gates);
                let gr = &gates[h_dim..];
                let row = r * h_dim..(r + 1) * h_dim;
                for ((rh, &rv), &hp) in self.rh[row.clone()].iter_mut().zip(gr).zip(&h_prev[row]) {
                    *rh = rv * hp;
                }
            }
            let cand_t = &mut self.cand[t * bh..(t + 1) * bh];
            fastpath::matmul_acc_into_blocked(
                MatRef::new(batch, h_dim, &self.rh),
                &self.wch,
                MatMut::new(batch, h_dim, cand_t),
            );
            kernels::add_row_broadcast_into(MatMut::new(batch, h_dim, cand_t), self.bc.view());
            let preg_t = &self.preg[t * b2h..(t + 1) * b2h];
            let h_t = &mut h_rest[..bh];
            #[cfg(not(feature = "fastmath"))]
            for r in 0..batch {
                let gates = &preg_t[r * 2 * h_dim..(r + 1) * 2 * h_dim];
                let row = r * h_dim..(r + 1) * h_dim;
                let it = gates[..h_dim]
                    .iter()
                    .zip(&mut cand_t[row.clone()])
                    .zip(&h_prev[row.clone()])
                    .zip(&mut h_t[row]);
                for (((&z_v, ct), &hp), ht) in it {
                    let ht_v = ct.tanh();
                    *ct = ht_v;
                    *ht = (hp * (1.0 - z_v)) + (ht_v * z_v);
                }
            }
            #[cfg(feature = "fastmath")]
            for r in 0..batch {
                let gz = &preg_t[r * 2 * h_dim..r * 2 * h_dim + h_dim];
                let row = r * h_dim..(r + 1) * h_dim;
                let ct = &mut cand_t[row.clone()];
                vmath::tanh_f64(ct);
                let it = gz
                    .iter()
                    .zip(ct.iter())
                    .zip(&h_prev[row.clone()])
                    .zip(&mut h_t[row]);
                for (((&z_v, &ht_v), &hp), ht) in it {
                    *ht = (hp * (1.0 - z_v)) + (ht_v * z_v);
                }
            }
        }
        out.clear();
        if self.return_sequences {
            out.extend_from_slice(&self.h);
            steps
        } else {
            out.extend_from_slice(&self.h[(steps - 1) * bh..]);
            1
        }
    }

    fn forward_q8(
        &mut self,
        input: &[f32],
        steps: usize,
        batch: usize,
        out: &mut Vec<f32>,
    ) -> usize {
        let (i_dim, h_dim) = (self.i_dim, self.h_dim);
        let (bh, b2h) = (batch * h_dim, batch * 2 * h_dim);
        self.preg32.clear();
        self.preg32.resize(steps * b2h, 0.0);
        self.cand32.clear();
        self.cand32.resize(steps * bh, 0.0);
        self.rh32.clear();
        self.rh32.resize(bh, 0.0);
        self.h32.clear();
        self.h32.resize(steps * bh, 0.0);
        debug_assert_eq!(input.len(), steps * batch * i_dim);
        fastpath::matmul_q8_into(input, steps * batch, &self.qwgx, &mut self.preg32);
        fastpath::matmul_q8_into(input, steps * batch, &self.qwcx, &mut self.cand32);
        let zeros = vec![0.0f32; bh];
        for t in 0..steps {
            let (h_done, h_rest) = self.h32.split_at_mut(t * bh);
            let h_prev = if t == 0 {
                &zeros[..]
            } else {
                &h_done[(t - 1) * bh..]
            };
            let preg_t = &mut self.preg32[t * b2h..(t + 1) * b2h];
            fastpath::matmul_q8_acc_into(h_prev, batch, &self.qwgh, preg_t);
            for r in 0..batch {
                let gates = &mut preg_t[r * 2 * h_dim..(r + 1) * 2 * h_dim];
                for (g, &b) in gates.iter_mut().zip(&self.qbg) {
                    *g += b;
                }
                vmath::sigmoid_f32(gates);
                let gr = &gates[h_dim..];
                let row = r * h_dim..(r + 1) * h_dim;
                for ((rh, &rv), &hp) in self.rh32[row.clone()].iter_mut().zip(gr).zip(&h_prev[row])
                {
                    *rh = rv * hp;
                }
            }
            let cand_t = &mut self.cand32[t * bh..(t + 1) * bh];
            fastpath::matmul_q8_acc_into(&self.rh32, batch, &self.qwch, cand_t);
            let preg_t = &self.preg32[t * b2h..(t + 1) * b2h];
            let h_t = &mut h_rest[..bh];
            for r in 0..batch {
                let gz = &preg_t[r * 2 * h_dim..r * 2 * h_dim + h_dim];
                let row = r * h_dim..(r + 1) * h_dim;
                let ct = &mut cand_t[row.clone()];
                for (c, &b) in ct.iter_mut().zip(&self.qbc) {
                    *c += b;
                }
                vmath::tanh_f32(ct);
                let it = gz
                    .iter()
                    .zip(ct.iter())
                    .zip(&h_prev[row.clone()])
                    .zip(&mut h_t[row]);
                for (((&z_v, &ht_v), &hp), ht) in it {
                    *ht = (hp * (1.0 - z_v)) + (ht_v * z_v);
                }
            }
        }
        out.clear();
        if self.return_sequences {
            out.extend_from_slice(&self.h32);
            steps
        } else {
            out.extend_from_slice(&self.h32[(steps - 1) * bh..]);
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, Dropout, Gru, Lstm, RepeatVector};

    fn window(seed: usize, steps: usize) -> Matrix {
        Matrix::from_fn(steps, 1, |t, _| {
            0.5 + 0.4 * ((seed * 7 + t * 3) as f64 * 0.37).sin()
        })
    }

    fn autoencoder() -> Sequential {
        Sequential::new(3)
            .with(Lstm::new(1, 8, true))
            .with(Dropout::new(0.2))
            .with(Lstm::new(8, 4, false))
            .with(RepeatVector::new(6))
            .with(Lstm::new(4, 4, true))
            .with(Dense::new(4, 1, Activation::Linear))
    }

    fn flat(samples: &[Matrix]) -> Vec<f64> {
        samples.iter().flat_map(|m| m.as_slice().to_vec()).collect()
    }

    #[test]
    fn f64_lane_matches_predict_bitwise_on_default_build() {
        let mut model = autoencoder();
        let mut frozen = InferenceModel::freeze(&model, Precision::F64).unwrap();
        let samples: Vec<Matrix> = (0..5).map(|s| window(s, 6)).collect();
        let exact = model.predict(&samples);
        let mut out = Vec::new();
        let (steps, feat) = frozen.forward_batch_into(&flat(&samples), 5, &mut out);
        assert_eq!((steps, feat), (6, 1));
        let exact_flat = flat(&exact);
        assert_eq!(out.len(), exact_flat.len());
        for (a, b) in out.iter().zip(&exact_flat) {
            if cfg!(feature = "fastmath") {
                assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            } else {
                assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn batching_does_not_change_any_window() {
        let model = autoencoder();
        let mut frozen = InferenceModel::freeze(&model, Precision::F64).unwrap();
        let samples: Vec<Matrix> = (0..7).map(|s| window(s + 11, 6)).collect();
        let mut batched = Vec::new();
        frozen.forward_batch_into(&flat(&samples), 7, &mut batched);
        for (s, sample) in samples.iter().enumerate() {
            let mut single = Vec::new();
            frozen.forward_batch_into(sample.as_slice(), 1, &mut single);
            let chunk = &batched[s * single.len()..(s + 1) * single.len()];
            for (a, b) in single.iter().zip(chunk) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn gru_stack_matches_predict() {
        let mut model = Sequential::new(9)
            .with(Gru::new(1, 6, true))
            .with(Gru::new(6, 3, false))
            .with(Dense::new(3, 2, Activation::Tanh));
        let mut frozen = InferenceModel::freeze(&model, Precision::F64).unwrap();
        let samples: Vec<Matrix> = (0..4).map(|s| window(s, 5)).collect();
        let exact = model.predict(&samples);
        let mut out = Vec::new();
        let (steps, feat) = frozen.forward_batch_into(&flat(&samples), 4, &mut out);
        assert_eq!((steps, feat), (1, 2));
        for (a, b) in out.iter().zip(flat(&exact).iter()) {
            if cfg!(feature = "fastmath") {
                assert!((a - b).abs() < 1e-9);
            } else {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn int8_lane_stays_close_to_exact() {
        let mut model = autoencoder();
        let mut frozen = InferenceModel::freeze(&model, Precision::Int8).unwrap();
        assert_eq!(frozen.precision(), Precision::Int8);
        assert!(frozen.quantized_bytes() > 0);
        let samples: Vec<Matrix> = (0..6).map(|s| window(s, 6)).collect();
        let exact = flat(&model.predict(&samples));
        let mut out = Vec::new();
        frozen.forward_batch_into(&flat(&samples), 6, &mut out);
        for (a, b) in out.iter().zip(&exact) {
            assert!(
                (a - b).abs() < 0.1,
                "int8 drifted too far from exact: {a} vs {b}"
            );
        }
    }

    #[test]
    fn freeze_rejects_parameterless_models() {
        let model = Sequential::new(1).with(Dropout::new(0.1));
        assert!(InferenceModel::freeze(&model, Precision::F64).is_err());
    }

    #[test]
    fn warm_forward_reallocates_nothing() {
        let model = autoencoder();
        let mut frozen = InferenceModel::freeze(&model, Precision::F64).unwrap();
        let samples: Vec<Matrix> = (0..5).map(|s| window(s, 6)).collect();
        let windows = flat(&samples);
        let mut out = Vec::new();
        for _ in 0..2 {
            frozen.forward_batch_into(&windows, 5, &mut out);
        }
        let before = evfad_tensor::alloc_stats();
        frozen.forward_batch_into(&windows, 5, &mut out);
        let after = evfad_tensor::alloc_stats().since(&before);
        assert_eq!(
            after.matrices, 0,
            "warm batched forward allocated: {after:?}"
        );
    }
}
