//! Loss functions.

use crate::seq::Seq;
use serde::{Deserialize, Serialize};

/// Training loss evaluated over an entire output sequence batch.
///
/// The value is the mean over all `time x batch x feature` elements, so a
/// one-step forecaster and a 24-step autoencoder use the same code path
/// (matching Keras's `mse`/`mae` on 3-D tensors).
///
/// # Examples
///
/// ```
/// use evfad_nn::{Loss, Seq};
/// use evfad_tensor::Matrix;
///
/// let pred = Seq::single(Matrix::from_rows(&[vec![1.0], vec![3.0]]));
/// let target = Seq::single(Matrix::from_rows(&[vec![0.0], vec![1.0]]));
/// let (value, _grad) = Loss::Mse.evaluate(&pred, &target);
/// assert!((value - 2.5).abs() < 1e-12); // (1 + 4) / 2
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Loss {
    /// Mean squared error.
    #[default]
    Mse,
    /// Mean absolute error.
    Mae,
}

impl Loss {
    /// Returns `(loss value, gradient w.r.t. predictions)`.
    ///
    /// # Panics
    ///
    /// Panics if `pred` and `target` have different shapes.
    pub fn evaluate(self, pred: &Seq, target: &Seq) -> (f64, Seq) {
        assert_eq!(pred.len(), target.len(), "loss sequence length mismatch");
        let n = pred.element_count() as f64;
        match self {
            Loss::Mse => {
                let diff = pred.zip_map(target, |p, t| p - t);
                let value = diff
                    .iter()
                    .map(|m| m.as_slice().iter().map(|d| d * d).sum::<f64>())
                    .sum::<f64>()
                    / n;
                let grad = diff.map(move |d| 2.0 * d / n);
                (value, grad)
            }
            Loss::Mae => {
                let diff = pred.zip_map(target, |p, t| p - t);
                let value = diff
                    .iter()
                    .map(|m| m.as_slice().iter().map(|d| d.abs()).sum::<f64>())
                    .sum::<f64>()
                    / n;
                let grad = diff.map(move |d| d.signum() / n);
                (value, grad)
            }
        }
    }

    /// Loss value only (no gradient allocation).
    pub fn value(self, pred: &Seq, target: &Seq) -> f64 {
        assert_eq!(pred.len(), target.len(), "loss sequence length mismatch");
        let n = pred.element_count() as f64;
        let mut acc = 0.0;
        for (p, t) in pred.iter().zip(target.iter()) {
            for (pv, tv) in p.as_slice().iter().zip(t.as_slice()) {
                let d = pv - tv;
                acc += match self {
                    Loss::Mse => d * d,
                    Loss::Mae => d.abs(),
                };
            }
        }
        acc / n
    }

    /// Stable identifier (`"mse"` / `"mae"`).
    pub fn name(self) -> &'static str {
        match self {
            Loss::Mse => "mse",
            Loss::Mae => "mae",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evfad_tensor::Matrix;

    #[test]
    fn mse_zero_at_perfect_prediction() {
        let p = Seq::single(Matrix::ones(2, 2));
        let (v, g) = Loss::Mse.evaluate(&p, &p.clone());
        assert_eq!(v, 0.0);
        assert_eq!(g.step(0).sum(), 0.0);
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let p = Seq::single(Matrix::from_rows(&[vec![1.0, -2.0], vec![0.5, 3.0]]));
        let t = Seq::single(Matrix::from_rows(&[vec![0.0, 1.0], vec![-1.0, 2.0]]));
        let (_, g) = Loss::Mse.evaluate(&p, &t);
        let eps = 1e-6;
        for i in 0..2 {
            for j in 0..2 {
                let mut plus = p.step(0).clone();
                plus[(i, j)] += eps;
                let mut minus = p.step(0).clone();
                minus[(i, j)] -= eps;
                let num = (Loss::Mse.value(&Seq::single(plus), &t)
                    - Loss::Mse.value(&Seq::single(minus), &t))
                    / (2.0 * eps);
                assert!((num - g.step(0)[(i, j)]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn mae_value_known() {
        let p = Seq::single(Matrix::from_rows(&[vec![1.0, -1.0]]));
        let t = Seq::single(Matrix::from_rows(&[vec![0.0, 1.0]]));
        assert!((Loss::Mae.value(&p, &t) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn multi_step_mean_over_all_elements() {
        let p = Seq::from_steps(vec![Matrix::filled(1, 1, 2.0), Matrix::filled(1, 1, 4.0)]);
        let t = Seq::from_steps(vec![Matrix::zeros(1, 1), Matrix::zeros(1, 1)]);
        // (4 + 16) / 2
        assert!((Loss::Mse.value(&p, &t) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn value_agrees_with_evaluate() {
        let p = Seq::single(Matrix::from_rows(&[vec![0.3, 0.7], vec![1.1, -0.2]]));
        let t = Seq::single(Matrix::from_rows(&[vec![0.1, 0.2], vec![0.9, 0.1]]));
        for loss in [Loss::Mse, Loss::Mae] {
            let (v, _) = loss.evaluate(&p, &t);
            assert!((v - loss.value(&p, &t)).abs() < 1e-12);
        }
    }

    #[test]
    fn names() {
        assert_eq!(Loss::Mse.name(), "mse");
        assert_eq!(Loss::Mae.name(), "mae");
        assert_eq!(Loss::default(), Loss::Mse);
    }
}
