//! Allocation-regression gate for the fused recurrent hot path.
//!
//! These tests read the process-global matrix-allocation counters from
//! `evfad_tensor::alloc_stats()`, so they live in their own integration-test
//! binary (own process) and serialise on a local mutex to keep the deltas
//! attributable.

use evfad_nn::{forecaster_model, Loss, Seq, Sequential};
use evfad_tensor::{alloc_stats, AllocStats, Matrix};
use std::sync::Mutex;

static GUARD: Mutex<()> = Mutex::new(());

fn toy_batch(seq_len: usize, batch: usize) -> (Seq, Seq) {
    let inputs: Vec<Matrix> = (0..batch)
        .map(|i| Matrix::from_fn(seq_len, 1, |t, _| ((i * 7 + t) as f64 * 0.31).sin()))
        .collect();
    let targets: Vec<Matrix> = (0..batch)
        .map(|i| Matrix::from_fn(1, 1, |_, _| ((i * 7 + seq_len) as f64 * 0.31).sin()))
        .collect();
    (Seq::from_samples(&inputs), Seq::from_samples(&targets))
}

/// One forward/backward pass (the training hot path; the optimiser update is
/// fully in place and allocates nothing).
fn train_step(model: &mut Sequential, x: &Seq, y: &Seq) {
    let pred = model.forward(x, true);
    let (_, grad) = Loss::Mse.evaluate(&pred, y);
    model.backward(&grad);
    model.zero_grads();
}

/// Matrix allocations of a *warm* train step (workspaces already sized).
fn warm_step_allocs(seq_len: usize) -> AllocStats {
    let mut model = forecaster_model(16, 7);
    let (x, y) = toy_batch(seq_len, 8);
    for _ in 0..2 {
        train_step(&mut model, &x, &y);
    }
    let before = alloc_stats();
    train_step(&mut model, &x, &y);
    alloc_stats().since(&before)
}

/// The forecaster's warm train step must allocate a number of matrices that
/// is independent of the sequence length: all per-timestep scratch lives in
/// the layer workspaces. Doubling (and tripling) T must not change the count.
#[test]
fn warm_train_step_matrix_allocs_are_o1_in_sequence_length() {
    let _guard = GUARD.lock().unwrap();
    let short = warm_step_allocs(8);
    let double = warm_step_allocs(16);
    let triple = warm_step_allocs(24);
    assert_eq!(
        short.matrices, double.matrices,
        "per-step matrix allocations grew with T: {short:?} vs {double:?}"
    );
    assert_eq!(
        double.matrices, triple.matrices,
        "per-step matrix allocations grew with T: {double:?} vs {triple:?}"
    );
    // Pin an absolute ceiling too, so per-step clones cannot creep back in
    // behind a coincidentally T-independent count.
    assert!(
        short.matrices <= 32,
        "warm train step allocated {} matrices",
        short.matrices
    );
}

/// A warm step must also not allocate more *bytes* when only T grows; all
/// T-proportional buffers belong to the reusable workspaces.
#[test]
fn warm_train_step_bytes_are_o1_in_sequence_length() {
    let _guard = GUARD.lock().unwrap();
    let short = warm_step_allocs(8);
    let double = warm_step_allocs(16);
    assert_eq!(
        short.bytes, double.bytes,
        "per-step allocated bytes grew with T"
    );
}
