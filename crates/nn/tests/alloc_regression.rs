//! Allocation-regression gate for the fused recurrent hot path.
//!
//! These tests read the process-global matrix-allocation counters from
//! `evfad_tensor::alloc_stats()`, so they live in their own integration-test
//! binary (own process) and serialise on a local mutex to keep the deltas
//! attributable.

use evfad_nn::{forecaster_model, Loss, Seq, Sequential};
use evfad_tensor::{alloc_stats, AllocStats, Matrix};
use std::sync::Mutex;

static GUARD: Mutex<()> = Mutex::new(());

fn toy_batch(seq_len: usize, batch: usize) -> (Seq, Seq) {
    let inputs: Vec<Matrix> = (0..batch)
        .map(|i| Matrix::from_fn(seq_len, 1, |t, _| ((i * 7 + t) as f64 * 0.31).sin()))
        .collect();
    let targets: Vec<Matrix> = (0..batch)
        .map(|i| Matrix::from_fn(1, 1, |_, _| ((i * 7 + seq_len) as f64 * 0.31).sin()))
        .collect();
    (Seq::from_samples(&inputs), Seq::from_samples(&targets))
}

/// One forward/backward pass (the training hot path; the optimiser update is
/// fully in place and allocates nothing).
fn train_step(model: &mut Sequential, x: &Seq, y: &Seq) {
    let pred = model.forward(x, true);
    let (_, grad) = Loss::Mse.evaluate(&pred, y);
    model.backward(&grad);
    model.zero_grads();
}

/// Matrix allocations of a *warm* train step (workspaces already sized).
fn warm_step_allocs(seq_len: usize) -> AllocStats {
    let mut model = forecaster_model(16, 7);
    let (x, y) = toy_batch(seq_len, 8);
    for _ in 0..2 {
        train_step(&mut model, &x, &y);
    }
    let before = alloc_stats();
    train_step(&mut model, &x, &y);
    alloc_stats().since(&before)
}

/// The forecaster's warm train step must allocate a number of matrices that
/// is independent of the sequence length: all per-timestep scratch lives in
/// the layer workspaces. Doubling (and tripling) T must not change the count.
#[test]
fn warm_train_step_matrix_allocs_are_o1_in_sequence_length() {
    let _guard = GUARD.lock().unwrap();
    let short = warm_step_allocs(8);
    let double = warm_step_allocs(16);
    let triple = warm_step_allocs(24);
    assert_eq!(
        short.matrices, double.matrices,
        "per-step matrix allocations grew with T: {short:?} vs {double:?}"
    );
    assert_eq!(
        double.matrices, triple.matrices,
        "per-step matrix allocations grew with T: {double:?} vs {triple:?}"
    );
    // Pin an absolute ceiling too, so per-step clones cannot creep back in
    // behind a coincidentally T-independent count.
    assert!(
        short.matrices <= 32,
        "warm train step allocated {} matrices",
        short.matrices
    );
}

/// A warm step must also not allocate more *bytes* when only T grows; all
/// T-proportional buffers belong to the reusable workspaces.
#[test]
fn warm_train_step_bytes_are_o1_in_sequence_length() {
    let _guard = GUARD.lock().unwrap();
    let short = warm_step_allocs(8);
    let double = warm_step_allocs(16);
    assert_eq!(
        short.bytes, double.bytes,
        "per-step allocated bytes grew with T"
    );
}

/// Matrix allocations of a *warm* `predict_into` call over `n` sequences
/// (staging buffers and the eval arena already shaped by two prior calls).
fn warm_predict_allocs(n: usize) -> AllocStats {
    let mut model = forecaster_model(16, 7);
    let inputs: Vec<Matrix> = (0..n)
        .map(|i| Matrix::from_fn(12, 1, |t, _| ((i * 5 + t) as f64 * 0.17).sin()))
        .collect();
    let mut out = Vec::new();
    for _ in 0..2 {
        let _ = model.predict_into(&inputs, &mut out);
    }
    let before = alloc_stats();
    let _ = model.predict_into(&inputs, &mut out);
    alloc_stats().since(&before)
}

/// A warm `predict_into` stages inputs into a reusable `SeqBuf`, runs the
/// layers through the persistent eval arena, and scatters straight into the
/// caller's flat buffer — so its matrix-allocation count must not grow with
/// the number of sequences scored (within one 256-sequence chunk).
#[test]
fn warm_predict_into_matrix_allocs_are_o1_in_batch_size() {
    let _guard = GUARD.lock().unwrap();
    let small = warm_predict_allocs(8);
    let double = warm_predict_allocs(16);
    let triple = warm_predict_allocs(24);
    assert_eq!(
        small.matrices, double.matrices,
        "warm predict_into matrix allocations grew with n: {small:?} vs {double:?}"
    );
    assert_eq!(
        double.matrices, triple.matrices,
        "warm predict_into matrix allocations grew with n: {double:?} vs {triple:?}"
    );
    assert!(
        small.matrices <= 8,
        "warm predict_into allocated {} matrices",
        small.matrices
    );
}

/// The allocating `predict` clones one output matrix per sequence; the flat
/// `predict_into` must beat it by at least the issue's 5x floor even at a
/// modest batch size.
#[test]
fn predict_into_allocates_5x_fewer_matrices_than_predict() {
    let _guard = GUARD.lock().unwrap();
    let mut model = forecaster_model(16, 7);
    let inputs: Vec<Matrix> = (0..64)
        .map(|i| Matrix::from_fn(12, 1, |t, _| ((i * 5 + t) as f64 * 0.17).sin()))
        .collect();
    let mut out = Vec::new();
    // Warm both paths so neither pays one-time workspace sizing.
    let _ = model.predict(&inputs);
    let _ = model.predict_into(&inputs, &mut out);
    let before = alloc_stats();
    let _ = model.predict(&inputs);
    let old = alloc_stats().since(&before);
    let before = alloc_stats();
    let _ = model.predict_into(&inputs, &mut out);
    let new = alloc_stats().since(&before);
    assert!(
        new.matrices * 5 <= old.matrices,
        "predict_into is not 5x leaner: old {old:?} vs new {new:?}"
    );
}
