//! Property-based tests for the neural-network substrate.

use evfad_nn::infer::{InferenceModel, Precision};
use evfad_nn::{Activation, Dense, Dropout, Gru, Loss, Lstm, RepeatVector, Seq, Sequential};
use evfad_tensor::Matrix;
use proptest::prelude::*;

fn sequence_strategy(time: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, time).prop_map(|v| Matrix::column_vector(&v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The forward pass is a pure function of weights and input.
    #[test]
    fn forward_is_deterministic(x in sequence_strategy(6), seed in 0u64..1000) {
        let mut model = Sequential::new(seed)
            .with(Lstm::new(1, 4, false))
            .with(Dense::new(4, 1, Activation::Linear));
        let a = model.predict(std::slice::from_ref(&x));
        let b = model.predict(&[x]);
        prop_assert_eq!(a, b);
    }

    /// Weight export/import is lossless: a cloned-by-weights model predicts
    /// identically.
    #[test]
    fn weight_transfer_preserves_predictions(x in sequence_strategy(5), seed in 0u64..1000) {
        let mut donor = Sequential::new(seed)
            .with(Lstm::new(1, 3, false))
            .with(Dense::new(3, 1, Activation::Linear));
        let mut receiver = Sequential::new(seed + 1)
            .with(Lstm::new(1, 3, false))
            .with(Dense::new(3, 1, Activation::Linear));
        receiver.set_weights(&donor.weights()).expect("same architecture");
        prop_assert_eq!(donor.predict(std::slice::from_ref(&x)), receiver.predict(&[x]));
    }

    /// LSTM outputs stay bounded (|h| < 1 elementwise by construction).
    #[test]
    fn lstm_output_bounded(x in prop::collection::vec(-100.0f64..100.0, 1..12)) {
        let mut lstm = Lstm::new_seeded(1, 8, true, 1);
        let y = lstm.forward(&Seq::from_samples(&[Matrix::column_vector(&x)]), false);
        for step in y.iter() {
            prop_assert!(step.max_abs() <= 1.0 + 1e-12);
        }
    }

    /// Batch evaluation equals per-sample evaluation (no cross-batch leakage).
    #[test]
    fn batching_does_not_change_outputs(
        a in sequence_strategy(4),
        b in sequence_strategy(4),
        seed in 0u64..100,
    ) {
        let mut model = Sequential::new(seed)
            .with(Lstm::new(1, 3, false))
            .with(Dense::new(3, 1, Activation::Tanh));
        let joint = model.predict(&[a.clone(), b.clone()]);
        let solo_a = model.predict(&[a]);
        let solo_b = model.predict(&[b]);
        prop_assert!((joint[0][(0, 0)] - solo_a[0][(0, 0)]).abs() < 1e-12);
        prop_assert!((joint[1][(0, 0)] - solo_b[0][(0, 0)]).abs() < 1e-12);
    }

    /// MSE is non-negative and zero iff prediction equals target.
    #[test]
    fn mse_nonnegative(p in prop::collection::vec(-10.0f64..10.0, 1..20)) {
        let pred = Seq::single(Matrix::row_vector(&p));
        let target = Seq::single(Matrix::zeros(1, p.len()));
        let v = Loss::Mse.value(&pred, &target);
        prop_assert!(v >= 0.0);
        prop_assert_eq!(Loss::Mse.value(&pred, &pred), 0.0);
    }

    /// MAE <= sqrt(MSE)·const relationship: mean |e| <= sqrt(mean e^2).
    #[test]
    fn mae_bounded_by_rmse(p in prop::collection::vec(-10.0f64..10.0, 1..20)) {
        let pred = Seq::single(Matrix::row_vector(&p));
        let target = Seq::single(Matrix::zeros(1, p.len()));
        let mae = Loss::Mae.value(&pred, &target);
        let rmse = Loss::Mse.value(&pred, &target).sqrt();
        prop_assert!(mae <= rmse + 1e-12);
    }

    /// JSON round trip preserves the model exactly.
    #[test]
    fn json_round_trip(x in sequence_strategy(4), seed in 0u64..100) {
        let mut model = Sequential::new(seed)
            .with(Lstm::new(1, 3, true))
            .with(Dense::new(3, 1, Activation::Sigmoid));
        let mut restored = Sequential::from_json(&model.to_json()).expect("round trip");
        prop_assert_eq!(model.predict(std::slice::from_ref(&x)), restored.predict(&[x]));
    }
}

// ---------------------------------------------------------------------------
// Zero-copy batch pipeline: a planned gather of any shuffle order must be
// bitwise identical to the allocating clone + `Seq::from_samples` marshal it
// replaces — this is what keeps `fit` deterministic across the refactor.
// ---------------------------------------------------------------------------

use evfad_nn::{BatchPlan, Sample, SeqBuf};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn batch_plan_gather_matches_clone_and_from_samples(
        raw in prop::collection::vec(-10.0f64..10.0, 9 * (5 + 2)),
        idx in prop::collection::vec(0usize..9, 1..12),
    ) {
        let samples: Vec<Sample> = (0..9)
            .map(|i| {
                let base = i * 7;
                Sample::new(
                    Matrix::column_vector(&raw[base..base + 5]),
                    Matrix::column_vector(&raw[base + 5..base + 7]),
                )
            })
            .collect();
        // Old path: clone the picked samples, then marshal time-major.
        let picked_in: Vec<Matrix> = idx.iter().map(|&i| samples[i].input.clone()).collect();
        let picked_tgt: Vec<Matrix> = idx.iter().map(|&i| samples[i].target.clone()).collect();
        let ref_in = Seq::from_samples(&picked_in);
        let ref_tgt = Seq::from_samples(&picked_tgt);
        // New path: gather the same indices through the prebuilt plan.
        let plan = BatchPlan::new(&samples);
        let (mut bin, mut btg) = (SeqBuf::new(), SeqBuf::new());
        plan.gather_into(&idx, &mut bin, &mut btg);
        prop_assert_eq!(bin.seq().len(), ref_in.len());
        for t in 0..ref_in.len() {
            prop_assert_eq!(bin.seq().step(t).as_slice(), ref_in.step(t).as_slice());
        }
        for t in 0..ref_tgt.len() {
            prop_assert_eq!(btg.seq().step(t).as_slice(), ref_tgt.step(t).as_slice());
        }
    }

    /// Gathering through a reused buffer pair after a differently-shaped
    /// batch still matches the fresh marshal (stale contents cannot leak).
    #[test]
    fn batch_plan_gather_is_stable_across_reuse(
        raw in prop::collection::vec(-10.0f64..10.0, 6 * 4),
        first in prop::collection::vec(0usize..6, 5),
        second in prop::collection::vec(0usize..6, 2),
    ) {
        let samples: Vec<Sample> = (0..6)
            .map(|i| {
                let base = i * 4;
                Sample::new(
                    Matrix::column_vector(&raw[base..base + 3]),
                    Matrix::column_vector(&raw[base + 3..base + 4]),
                )
            })
            .collect();
        let plan = BatchPlan::new(&samples);
        let (mut bin, mut btg) = (SeqBuf::new(), SeqBuf::new());
        plan.gather_into(&first, &mut bin, &mut btg);
        plan.gather_into(&second, &mut bin, &mut btg);
        let picked: Vec<Matrix> = second.iter().map(|&i| samples[i].input.clone()).collect();
        let reference = Seq::from_samples(&picked);
        for t in 0..reference.len() {
            prop_assert_eq!(bin.seq().step(t).as_slice(), reference.step(t).as_slice());
        }
    }
}

/// Builds one of four serving-relevant layer stacks (dense-only,
/// LSTM head, GRU stack, full LSTM autoencoder) with randomised dims.
fn stack(arch: usize, h1: usize, h2: usize, time: usize, seed: u64) -> Sequential {
    match arch {
        0 => Sequential::new(seed)
            .with(Dense::new(1, h1, Activation::Relu))
            .with(Dense::new(h1, 1, Activation::Linear)),
        1 => Sequential::new(seed)
            .with(Lstm::new(1, h1, false))
            .with(Dense::new(h1, 2, Activation::Tanh)),
        2 => Sequential::new(seed)
            .with(Gru::new(1, h1, true))
            .with(Gru::new(h1, h2, false))
            .with(Dense::new(h2, 1, Activation::Sigmoid)),
        _ => Sequential::new(seed)
            .with(Lstm::new(1, h1, true))
            .with(Dropout::new(0.2))
            .with(Lstm::new(h1, h2, false))
            .with(RepeatVector::new(time))
            .with(Lstm::new(h2, h1, true))
            .with(Dense::new(h1, 1, Activation::Linear)),
    }
}

fn batch_of_windows(data: &[f64], batch: usize, time: usize) -> Vec<Matrix> {
    (0..batch)
        .map(|b| Matrix::column_vector(&data[b * time..(b + 1) * time]))
        .collect()
}

fn flat(samples: &[Matrix]) -> Vec<f64> {
    samples.iter().flat_map(|m| m.as_slice().to_vec()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The frozen f64 serving lane replays the exact forward: over random
    /// stacks and window shapes, one batched `forward_batch_into` equals N
    /// independent `predict` calls — bitwise on the default build, within
    /// reassociation tolerance under `fastmath`.
    #[test]
    fn frozen_f64_lane_matches_per_window_predict(
        arch in 0usize..4,
        h1 in 2usize..6,
        h2 in 1usize..4,
        time in 3usize..7,
        batch in 1usize..5,
        seed in 0u64..500,
        data in prop::collection::vec(-1.0f64..1.0, 4 * 6),
    ) {
        let mut model = stack(arch, h1, h2, time, seed);
        let samples = batch_of_windows(&data, batch, time);
        let exact: Vec<f64> = model
            .predict(&samples)
            .iter()
            .flat_map(|m| m.as_slice().to_vec())
            .collect();
        let mut frozen = InferenceModel::freeze(&model, Precision::F64).expect("freeze");
        let mut got = Vec::new();
        let (steps, feat) = frozen.forward_batch_into(&flat(&samples), batch, &mut got);
        prop_assert_eq!(got.len(), batch * steps * feat);
        prop_assert_eq!(got.len(), exact.len());
        for (g, e) in got.iter().zip(&exact) {
            if cfg!(feature = "fastmath") {
                prop_assert!((g - e).abs() < 1e-9, "fastmath drift: {} vs {}", g, e);
            } else {
                prop_assert_eq!(g.to_bits(), e.to_bits(), "bitwise break: {} vs {}", g, e);
            }
        }
    }

    /// The int8 lane stays within a loose absolute bound of the exact
    /// forward over the same random stacks (unit-scale inputs; the serving
    /// bench asserts the tight score-level bound end to end).
    #[test]
    fn frozen_int8_lane_stays_bounded(
        arch in 0usize..4,
        h1 in 2usize..6,
        h2 in 1usize..4,
        time in 3usize..7,
        batch in 1usize..5,
        seed in 0u64..500,
        data in prop::collection::vec(-1.0f64..1.0, 4 * 6),
    ) {
        let mut model = stack(arch, h1, h2, time, seed);
        let samples = batch_of_windows(&data, batch, time);
        let exact: Vec<f64> = model
            .predict(&samples)
            .iter()
            .flat_map(|m| m.as_slice().to_vec())
            .collect();
        let mut frozen = InferenceModel::freeze(&model, Precision::Int8).expect("freeze");
        let mut got = Vec::new();
        frozen.forward_batch_into(&flat(&samples), batch, &mut got);
        prop_assert_eq!(got.len(), exact.len());
        for (g, e) in got.iter().zip(&exact) {
            prop_assert!(
                (g - e).abs() < 0.3,
                "int8 drifted out of bound: {} vs {}",
                g,
                e
            );
        }
    }
}
