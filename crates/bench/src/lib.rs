//! Shared CLI plumbing for the bench binaries.
//!
//! Every table/figure binary accepts `--scale small|mid|paper` (default
//! `small`) and `--seed <u64>` (default 42), so the paper's experiments can
//! be regenerated at CI speed or at full fidelity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use evfad_core::forecast::{Scale, StudyConfig};

/// Parsed command-line options common to all bench binaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchOpts {
    /// Study scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Row cap for series dumps (fig2).
    pub rows: usize,
}

impl Default for BenchOpts {
    fn default() -> Self {
        Self {
            scale: Scale::Small,
            seed: 42,
            rows: 48,
        }
    }
}

impl BenchOpts {
    /// Parses `--scale`, `--seed` and `--rows` from an argument iterator.
    /// Unknown arguments are ignored (forward compatibility); malformed
    /// values fall back to defaults with a warning on stderr.
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut opts = Self::default();
        let args: Vec<String> = args.collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    if let Some(v) = args.get(i + 1) {
                        match Scale::parse(v) {
                            Some(s) => opts.scale = s,
                            None => eprintln!("warning: unknown scale {v:?}, using small"),
                        }
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1) {
                        match v.parse() {
                            Ok(s) => opts.seed = s,
                            Err(_) => eprintln!("warning: bad seed {v:?}, using default"),
                        }
                        i += 1;
                    }
                }
                "--rows" => {
                    if let Some(v) = args.get(i + 1) {
                        if let Ok(r) = v.parse() {
                            opts.rows = r;
                        }
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        opts
    }

    /// Parses from the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// The study configuration these options select.
    pub fn study_config(&self) -> StudyConfig {
        StudyConfig::at_scale(self.scale, self.seed)
    }

    /// Banner line describing the run.
    pub fn banner(&self, what: &str) -> String {
        format!(
            "# {what} | scale={:?} seed={} (reproduction of Babayomi & Kim)",
            self.scale, self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> BenchOpts {
        BenchOpts::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_apply() {
        let o = parse(&[]);
        assert_eq!(o.scale, Scale::Small);
        assert_eq!(o.seed, 42);
    }

    #[test]
    fn flags_parse() {
        let o = parse(&["--scale", "paper", "--seed", "7", "--rows", "10"]);
        assert_eq!(o.scale, Scale::Paper);
        assert_eq!(o.seed, 7);
        assert_eq!(o.rows, 10);
    }

    #[test]
    fn bad_values_fall_back() {
        let o = parse(&["--scale", "galactic", "--seed", "NaN"]);
        assert_eq!(o.scale, Scale::Small);
        assert_eq!(o.seed, 42);
    }

    #[test]
    fn unknown_flags_ignored() {
        let o = parse(&["--whatever", "--seed", "3"]);
        assert_eq!(o.seed, 3);
    }

    #[test]
    fn config_matches_scale() {
        let o = parse(&["--scale", "paper"]);
        assert_eq!(o.study_config().dataset.timestamps, 4344);
    }

    #[test]
    fn banner_mentions_scale_and_seed() {
        let b = parse(&["--seed", "9"]).banner("table1");
        assert!(b.contains("table1"));
        assert!(b.contains("seed=9"));
    }
}
