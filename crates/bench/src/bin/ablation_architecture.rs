//! Ablation: LSTM vs GRU forecaster backbones.
//!
//! The paper fixes on LSTM(50); GRUs are the standard lighter alternative
//! in the federated-forecasting literature it cites. Same head, same
//! training budget, per-zone comparison.

use evfad_bench::BenchOpts;
use evfad_core::data::ShenzhenGenerator;
use evfad_core::forecast::pipeline::PreparedClient;
use evfad_core::nn::{Activation, Adam, Dense, Gru, Lstm, Sequential, TrainConfig};

fn main() {
    let opts = BenchOpts::from_env();
    println!("{}", opts.banner("Ablation: recurrent backbone"));
    let cfg = opts.study_config();
    let clients = ShenzhenGenerator::new(cfg.dataset.clone()).generate_all();
    let train_cfg = TrainConfig {
        epochs: cfg.rounds * cfg.epochs_per_round,
        batch_size: cfg.batch_size,
        ..TrainConfig::default()
    };

    println!(
        "{:<8} {:<10} {:>10} {:>8} {:>8} {:>8}",
        "zone", "backbone", "params", "MAE", "RMSE", "R2"
    );
    for c in &clients {
        let p = PreparedClient::prepare(c.zone.label(), &c.demand, cfg.seq_len, cfg.train_fraction)
            .expect("prepare");
        let backbones: Vec<(&str, Sequential)> = vec![
            (
                "lstm",
                Sequential::new(cfg.seed)
                    .with(Lstm::new(1, cfg.lstm_units, false))
                    .with(Dense::new(cfg.lstm_units, 10, Activation::Relu))
                    .with(Dense::new(10, 1, Activation::Linear))
                    .with_optimizer(Adam::new(cfg.learning_rate)),
            ),
            (
                "gru",
                Sequential::new(cfg.seed)
                    .with(Gru::new(1, cfg.lstm_units, false))
                    .with(Dense::new(cfg.lstm_units, 10, Activation::Relu))
                    .with(Dense::new(10, 1, Activation::Linear))
                    .with_optimizer(Adam::new(cfg.learning_rate)),
            ),
        ];
        for (name, mut model) in backbones {
            let params = model.scalar_param_count();
            model.fit(&p.train, &train_cfg).expect("fit");
            let eval = p.evaluate_raw(&mut model).expect("eval");
            println!(
                "{:<8} {:<10} {:>10} {:>8.4} {:>8.4} {:>8.4}",
                c.zone.label(),
                name,
                params,
                eval.mae,
                eval.rmse,
                eval.r2
            );
        }
    }
}
