//! Benchmarks the deterministic parallel compute layer and emits
//! `BENCH_parallel.json`.
//!
//! For each GEMM-family kernel and size, the serial path (`threads = 1`)
//! and the pool path (`threads = EVFAD_BENCH_THREADS`, default
//! `max(4, cpus)`) are timed back to back on identical inputs, and the
//! outputs are compared bitwise — the layer's core guarantee. The JSON
//! schema is documented in `EXPERIMENTS.md`.
//!
//! Usage: `cargo run --release --bin bench_parallel [output-path]`

use evfad_core::tensor::{parallel, Matrix};
use std::time::Instant;

struct KernelResult {
    kernel: &'static str,
    m: usize,
    k: usize,
    n: usize,
    serial_ms: f64,
    parallel_ms: f64,
    bitwise_identical: bool,
}

fn median_ms(reps: usize, mut f: impl FnMut() -> Matrix) -> (f64, Matrix) {
    let mut times: Vec<f64> = Vec::with_capacity(reps);
    let mut last = f(); // warm-up (also starts the pool on the parallel pass)
    for _ in 0..reps {
        let start = Instant::now();
        last = f();
        times.push(start.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    (times[times.len() / 2], last)
}

fn bench_kernel(
    kernel: &'static str,
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    reps: usize,
    f: impl Fn(&Matrix, &Matrix) -> Matrix,
) -> KernelResult {
    let a = Matrix::from_fn(m, k, |i, j| ((i * 31 + j * 7) as f64 * 0.013).sin());
    let b = Matrix::from_fn(k, n, |i, j| ((i * 13 + j * 3) as f64 * 0.017).cos());
    parallel::set_threads(1);
    let (serial_ms, serial_out) = median_ms(reps, || f(&a, &b));
    parallel::set_threads(threads);
    let (parallel_ms, parallel_out) = median_ms(reps, || f(&a, &b));
    parallel::set_threads(0);
    KernelResult {
        kernel,
        m,
        k,
        n,
        serial_ms,
        parallel_ms,
        bitwise_identical: serial_out.as_slice() == parallel_out.as_slice(),
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_parallel.json".to_string());
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let threads = std::env::var("EVFAD_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| host_cpus.max(4));
    let reps = 9;

    println!("parallel compute layer bench: host_cpus={host_cpus} threads={threads}");
    let mut results = Vec::new();
    for size in [64usize, 128, 256] {
        results.push(bench_kernel(
            "matmul",
            size,
            size,
            size,
            threads,
            reps,
            |a, b| a.matmul(b),
        ));
    }
    results.push(bench_kernel(
        "transpose_matmul",
        256,
        256,
        256,
        threads,
        reps,
        |a, b| a.transpose_matmul(b),
    ));
    results.push(bench_kernel(
        "matmul_transpose",
        256,
        256,
        256,
        threads,
        reps,
        |a, b| a.matmul_transpose(b),
    ));

    let mut kernels_json = Vec::new();
    for r in &results {
        let speedup = if r.parallel_ms > 0.0 {
            r.serial_ms / r.parallel_ms
        } else {
            0.0
        };
        println!(
            "{:<18} {:>4}x{:<4}x{:<4} serial {:>9.3} ms  parallel {:>9.3} ms  speedup {:>5.2}x  bitwise={}",
            r.kernel, r.m, r.k, r.n, r.serial_ms, r.parallel_ms, speedup, r.bitwise_identical
        );
        kernels_json.push(format!(
            concat!(
                "    {{\n",
                "      \"kernel\": \"{}\",\n",
                "      \"m\": {},\n",
                "      \"k\": {},\n",
                "      \"n\": {},\n",
                "      \"serial_ms\": {:.4},\n",
                "      \"parallel_ms\": {:.4},\n",
                "      \"speedup\": {:.3},\n",
                "      \"bitwise_identical\": {}\n",
                "    }}"
            ),
            r.kernel, r.m, r.k, r.n, r.serial_ms, r.parallel_ms, speedup, r.bitwise_identical
        ));
    }

    let all_bitwise = results.iter().all(|r| r.bitwise_identical);
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"parallel_compute_layer\",\n",
            "  \"host_cpus\": {},\n",
            "  \"threads\": {},\n",
            "  \"reps\": {},\n",
            "  \"serial_flop_threshold\": {},\n",
            "  \"all_bitwise_identical\": {},\n",
            "  \"kernels\": [\n{}\n  ]\n",
            "}}\n"
        ),
        host_cpus,
        threads,
        reps,
        parallel::serial_flop_threshold(),
        all_bitwise,
        kernels_json.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write BENCH_parallel.json");
    println!("wrote {out_path}");
    assert!(all_bitwise, "parallel output diverged from serial");
}
