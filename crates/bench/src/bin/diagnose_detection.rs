//! Diagnostic: where do the detector's false positives come from?
//!
//! Prints, per zone: the flag counts, the distance from each false positive
//! to the nearest attack episode, and whether FPs cluster in the train or
//! test region. Used to calibrate the detector against the paper's
//! operating point; not part of the reproduction tables.

use evfad_bench::BenchOpts;
use evfad_core::anomaly::AnomalyFilter;
use evfad_core::attack::DdosInjector;
use evfad_core::data::ShenzhenGenerator;
use evfad_core::timeseries::MinMaxScaler;

fn main() {
    let opts = BenchOpts::from_env();
    println!("{}", opts.banner("Detection diagnostics"));
    let cfg = opts.study_config();
    let clients = ShenzhenGenerator::new(cfg.dataset.clone()).generate_all();
    let injector = DdosInjector::new(cfg.attack.clone());

    for (i, c) in clients.iter().enumerate() {
        let outcome = injector.inject(&c.demand, cfg.seed + i as u64);
        let scaler = MinMaxScaler::fit(&outcome.series).expect("scaler");
        let mut filter_cfg = cfg.filter.clone();
        filter_cfg.seed = cfg.seed + i as u64;
        let mut filter = AnomalyFilter::new(filter_cfg);
        filter.fit(&scaler.transform(&c.demand)).expect("fit");
        let det = filter
            .try_detect(&scaler.transform(&outcome.series))
            .expect("detect");

        let n = outcome.labels.len();
        let boundary = (n as f64 * cfg.train_fraction) as usize;
        let mut fp_train = 0;
        let mut fp_test = 0;
        let mut dist_hist = [0usize; 6]; // 1,2,3,4-8,9-24,>24
        for t in 0..n {
            if det.flags[t] && !outcome.labels[t] {
                if t < boundary {
                    fp_train += 1;
                } else {
                    fp_test += 1;
                }
                let dist = outcome
                    .episodes
                    .iter()
                    .map(|e| {
                        if t < e.start {
                            e.start - t
                        } else {
                            t.saturating_sub(e.end - 1)
                        }
                    })
                    .min()
                    .unwrap_or(usize::MAX);
                let bucket = match dist {
                    0..=1 => 0,
                    2 => 1,
                    3 => 2,
                    4..=8 => 3,
                    9..=24 => 4,
                    _ => 5,
                };
                dist_hist[bucket] += 1;
            }
        }
        let fp_total = fp_train + fp_test;
        let tp = det
            .flags
            .iter()
            .zip(&outcome.labels)
            .filter(|(&f, &l)| f && l)
            .count();
        println!(
            "zone {} | threshold {:.6} | flagged {} (tp {}, fp {}) | fp train/test {}/{}",
            c.zone.label(),
            det.threshold,
            det.flagged_count(),
            tp,
            fp_total,
            fp_train,
            fp_test
        );
        println!(
            "  fp distance to nearest episode: <=1: {}  2: {}  3: {}  4-8: {}  9-24: {}  >24: {}",
            dist_hist[0], dist_hist[1], dist_hist[2], dist_hist[3], dist_hist[4], dist_hist[5]
        );
    }
}
